"""Synthetic-system builders shared by the test suite and benchmarks.

These construct well-conditioned instances of the operator families
the solver stack works on: diagonally dominant diffusion-like stencil
systems (the structure of the V2D radiation matrix) and banded driver
systems (the Table-II kernel driver's form).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.stencil import StencilCoefficients

Array = np.ndarray


def diffusion_coeffs(
    ns: int = 2,
    n1: int = 7,
    n2: int = 6,
    coupled: bool = True,
    seed: int = 3,
) -> StencilCoefficients:
    """A diagonally dominant diffusion-like stencil system.

    Off-diagonals are negative (an M-matrix, like the backward-Euler
    diffusion operator) and the diagonal strictly dominates, so every
    Krylov solver in the package converges on it.
    """
    r = np.random.default_rng(seed)
    west = -np.abs(r.uniform(0.5, 1.5, (ns, n1, n2)))
    east = -np.abs(r.uniform(0.5, 1.5, (ns, n1, n2)))
    south = -np.abs(r.uniform(0.5, 1.5, (ns, n1, n2)))
    north = -np.abs(r.uniform(0.5, 1.5, (ns, n1, n2)))
    coupling = None
    extra = 0.0
    if coupled and ns > 1:
        coupling = np.zeros((ns, ns, n1, n2))
        for s in range(ns):
            for sp in range(ns):
                if s != sp:
                    coupling[s, sp] = -np.abs(r.uniform(0.05, 0.15, (n1, n2)))
        extra = np.abs(coupling).sum(axis=1)
    diag = 1.0 + np.abs(west) + np.abs(east) + np.abs(south) + np.abs(north) + extra
    return StencilCoefficients(
        diag=diag, west=west, east=east, south=south, north=north, coupling=coupling
    )


def banded_system(
    n: int = 100,
    band_offset: int = 10,
    seed: int = 7,
) -> tuple[list[int], list[Array], Array]:
    """A diagonally dominant five-banded system ``(offsets, bands, rhs)``."""
    r = np.random.default_rng(seed)
    offsets = [0, -1, 1, -band_offset, band_offset]
    bands = [r.standard_normal(n) * 0.4 for _ in offsets]
    bands[0] = np.abs(r.standard_normal(n)) + 3.0
    rhs = r.standard_normal(n)
    return offsets, bands, rhs
