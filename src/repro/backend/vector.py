"""Vectorized backend: the SVE proxy.

Every primitive executes as whole-array NumPy operations, in place
where an ``out`` buffer is supplied -- the analogue of the compiler
turning the same loops into packed-SIMD SVE code.  The configurable
``vector_bits`` models the Armv8-A vector-length-agnostic range
(128-2048 bits; the A64FX implements 512): it does not change results,
only the SIMD-instruction accounting exposed via
:meth:`~repro.backend.base.Backend.vector_op_count`, which the machine
model in :mod:`repro.perfmodel` consumes.

Reductions accumulate lane-wise (NumPy pairwise/BLAS order), as a real
SVE horizontal reduction does, so they agree with the scalar backend to
within floating-point reassociation error, not necessarily bitwise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend.base import Array, Backend


class VectorBackend(Backend):
    """Whole-array (packed SIMD) execution."""

    name = "vector"
    vectorized = True

    def __init__(self, vector_bits: int = 512) -> None:
        if vector_bits % 128 != 0 or not 128 <= vector_bits <= 2048:
            raise ValueError(
                "SVE vector length must be a multiple of 128 in [128, 2048], "
                f"got {vector_bits}"
            )
        super().__init__(vector_bits=vector_bits)

    # -- reductions -----------------------------------------------------
    def dot(self, x: Array, y: Array) -> float:
        self._check_same_shape(x, y)
        return float(np.dot(x.ravel(), y.ravel()))

    def multi_dot(self, pairs: Sequence[tuple[Array, Array]]) -> Array:
        if not pairs:
            return np.zeros(0)
        n = pairs[0][0].size
        out = np.empty(len(pairs))
        for k, (x, y) in enumerate(pairs):
            self._check_same_shape(x, y)
            if x.size != n:
                raise ValueError("ganged dot products require equal-length operands")
            out[k] = np.dot(x.ravel(), y.ravel())
        return out

    def norm2(self, x: Array) -> float:
        return float(np.linalg.norm(x.ravel()))

    # -- BLAS-1 updates --------------------------------------------------
    # A caller-supplied ``work`` buffer replaces the temporaries the
    # aliased-``out`` paths would otherwise allocate, making the solver
    # inner loop allocation-free.  Every work path performs the same
    # operations in the same order as the allocating path it replaces,
    # so results are bit-identical with and without ``work``.
    def axpy(
        self,
        a: float,
        x: Array,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        if out is y:
            # out aliases y: scale x into a temporary, then accumulate.
            tmp = work if work is not None else np.empty_like(out)
            np.multiply(x, a, out=tmp)
            np.add(tmp, y, out=out)
        else:
            np.multiply(x, a, out=out)  # safe when out aliases x
            np.add(out, y, out=out)
        return out

    def dscal(
        self,
        c: Array,
        d: float,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(c, y)
        out = self._out_like(c, out)
        if out is c:
            tmp = work if work is not None else np.empty_like(out)
            np.multiply(y, d, out=tmp)
            np.subtract(c, tmp, out=out)
        else:
            np.multiply(y, d, out=out)  # safe when out aliases y
            np.subtract(c, out, out=out)
        return out

    def ddaxpy(
        self,
        a: float,
        x: Array,
        b: float,
        y: Array,
        z: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(x, y, z)
        out = self._out_like(x, out)
        if out is y or out is z:
            if work is not None:
                # b*y + (a*x + z), allocation-free: z is read into the
                # work buffer and y is read by the multiply before out
                # overwrites either.  This association equals the
                # two-DAXPY composition axpy(b, y, axpy(a, x, z)), so
                # the solver's fused x-update is bit-identical to the
                # unfused one.
                np.multiply(x, a, out=work)
                np.add(work, z, out=work)
                np.multiply(y, b, out=out)
                np.add(out, work, out=out)
            else:
                tmp = np.multiply(x, a)
                tmp += np.multiply(y, b)
                tmp += z
                np.copyto(out, tmp)
        else:
            np.multiply(x, a, out=out)  # safe when out aliases x
            if work is not None:
                np.multiply(y, b, out=work)
                out += work
            else:
                out += np.multiply(y, b)
            out += z
        return out

    def scale(self, alpha: float, x: Array, out: Array | None = None) -> Array:
        out = self._out_like(x, out)
        np.multiply(x, alpha, out=out)
        return out

    def copy(self, x: Array, out: Array | None = None) -> Array:
        out = self._out_like(x, out)
        np.copyto(out, x)
        return out

    def fill(self, x: Array, value: float) -> Array:
        x.fill(value)
        return x

    def add(self, x: Array, y: Array, out: Array | None = None) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        np.add(x, y, out=out)
        return out

    def sub(self, x: Array, y: Array, out: Array | None = None) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        np.subtract(x, y, out=out)
        return out

    def mul(self, x: Array, y: Array, out: Array | None = None) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        np.multiply(x, y, out=out)
        return out

    # -- matrix-free operators --------------------------------------------
    def stencil_apply(
        self,
        diag: Array,
        west: Array,
        east: Array,
        south: Array,
        north: Array,
        x: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(diag, west, east, south, north)
        n1, n2 = diag.shape
        if x.shape != (n1 + 2, n2 + 2):
            raise ValueError(
                f"ghost-padded field must be {(n1 + 2, n2 + 2)}, got {x.shape}"
            )
        out = self._out_like(diag, out)
        # Shifted views of the padded field -- no copies (guide: "use
        # views, and not copies"); five fused multiply-adds.  Each
        # ``band * view`` product lands in ``work`` when supplied
        # (identical values and association, no per-call temporaries).
        c = x[1:-1, 1:-1]
        w = x[:-2, 1:-1]
        e = x[2:, 1:-1]
        s = x[1:-1, :-2]
        n = x[1:-1, 2:]
        np.multiply(diag, c, out=out)
        if work is not None:
            for band, view in ((west, w), (east, e), (south, s), (north, n)):
                np.multiply(band, view, out=work)
                out += work
        else:
            out += west * w
            out += east * e
            out += south * s
            out += north * n
        return out

    def banded_matvec(
        self,
        offsets: Sequence[int],
        bands: Sequence[Array],
        x: Array,
        out: Array | None = None,
    ) -> Array:
        if len(offsets) != len(bands):
            raise ValueError("offsets and bands must pair up")
        if out is x:
            raise ValueError("banded_matvec cannot write its result over x")
        n = x.shape[0]
        out = self._out_like(x, out)
        out.fill(0.0)
        for off, band in zip(offsets, bands):
            if off >= 0:
                hi = n - off
                if hi > 0:
                    out[:hi] += band[:hi] * x[off:]
            else:
                lo = -off
                if lo < n:
                    out[lo:] += band[lo:] * x[:n - lo]
        return out
