"""Abstract execution backend.

A backend supplies the primitive array operations out of which the V2D
solver kernels (:mod:`repro.kernels`) are composed.  The five named
routines of the paper's Table II map onto these primitives:

=========  =====================================  ==========================
Routine    Meaning (paper Sec. II-F)              Backend primitive
=========  =====================================  ==========================
MATVEC     matrix-vector product (matrix-free)    :meth:`Backend.stencil_apply`,
                                                  :meth:`Backend.banded_matvec`
DPROD      dot product (ganged reductions)        :meth:`Backend.dot`,
                                                  :meth:`Backend.multi_dot`
DAXPY      ``a*x + y``                            :meth:`Backend.axpy`
DSCAL      ``c - d*y``                            :meth:`Backend.dscal`
DDAXPY     ``a*x + b*y + z``                      :meth:`Backend.ddaxpy`
=========  =====================================  ==========================

All primitives accept and return ``float64`` NumPy arrays; scalar
backends still *store* data in NumPy arrays (as V2D stores vectors in
Fortran arrays) but traverse them with explicit loops.

Fused operations
----------------
The BiCGSTAB inner loop issues the primitives back to back on the same
operands (a matvec immediately followed by ganged dot products against
its result; a DAXPY followed by a norm of the update).  The base class
exposes *fused* forms of those pairings -- :meth:`Backend.axpy_dot`,
:meth:`Backend.dscal_dot` and :meth:`Backend.stencil_apply_dots` --
whose default implementations are the unfused composition of the
underlying primitives (the reference semantics every override must
reproduce).  A backend may override them with true single-pass code:
the scalar backend accumulates the dot products inside the very loop
that produces the output element, the way a fused SVE kernel keeps the
value in a register instead of re-loading it.

Dot specifications (the ``dots`` argument of the fused ops) come in
three forms; with ``out`` the fused op's array result::

    None          ->  (out, out)       e.g. a norm of the result
    Array w       ->  (out, w)
    (a, b) tuple  ->  (a, b)           an independent pair, ganged along

The BLAS-1 updates additionally accept a preallocated ``work`` buffer
so vectorized backends can handle aliased ``out`` operands without
allocating temporaries -- the solver's inner loop reuses one such
buffer across all iterations and solves.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

Array = np.ndarray


class Backend(ABC):
    """Primitive-operation provider; see module docstring.

    Parameters
    ----------
    vector_bits:
        SIMD register width in bits.  The A64FX implements 512-bit SVE;
        the VLA programming model allows 128-2048.  Scalar execution is
        modelled as 64-bit (one double per "vector").
    """

    #: short registry name, e.g. ``"scalar"`` / ``"vector"``
    name: str = "abstract"
    #: whether primitives execute as packed array operations
    vectorized: bool = False

    def __init__(self, vector_bits: int = 64) -> None:
        if vector_bits % 64 != 0 or not 64 <= vector_bits <= 2048:
            raise ValueError(
                f"vector_bits must be a multiple of 64 in [64, 2048], got {vector_bits}"
            )
        self.vector_bits = int(vector_bits)

    # ------------------------------------------------------------------
    # SIMD accounting
    # ------------------------------------------------------------------
    @property
    def lanes(self) -> int:
        """Double-precision lanes per vector operation."""
        return self.vector_bits // 64

    def vector_op_count(self, n: int) -> int:
        """Number of SIMD instructions to process ``n`` elements.

        With SVE's vector-length-agnostic predication a loop over ``n``
        elements issues ``ceil(n / lanes)`` whole-vector operations (the
        tail is predicated, not peeled).
        """
        return math.ceil(n / self.lanes) if n > 0 else 0

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    @abstractmethod
    def dot(self, x: Array, y: Array) -> float:
        """Return the inner product of ``x`` and ``y`` (any equal shape)."""

    @abstractmethod
    def multi_dot(self, pairs: Sequence[tuple[Array, Array]]) -> Array:
        """Ganged inner products: one fused pass over all pairs.

        This is the primitive behind V2D's restructured BiCGSTAB, which
        "gangs inner products to reduce the number of parallel global
        reduction operations".  Returns a 1-D array of ``len(pairs)``
        partial results (local to this rank; the communicator reduces).
        """

    @abstractmethod
    def norm2(self, x: Array) -> float:
        """Euclidean norm of ``x``."""

    # ------------------------------------------------------------------
    # BLAS-1 style updates
    # ------------------------------------------------------------------
    @abstractmethod
    def axpy(
        self,
        a: float,
        x: Array,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        """``out = a*x + y`` (DAXPY).

        ``work`` is an optional scratch buffer of the operand shape;
        backends that would otherwise allocate a temporary for aliased
        ``out`` operands use it instead.  Results are unchanged.
        """

    @abstractmethod
    def dscal(
        self,
        c: Array,
        d: float,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        """``out = c - d*y`` (the paper's DSCAL routine)."""

    @abstractmethod
    def ddaxpy(
        self,
        a: float,
        x: Array,
        b: float,
        y: Array,
        z: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        """``out = a*x + b*y + z`` (DDAXPY)."""

    @abstractmethod
    def scale(self, alpha: float, x: Array, out: Array | None = None) -> Array:
        """``out = alpha * x``."""

    @abstractmethod
    def copy(self, x: Array, out: Array | None = None) -> Array:
        """Copy ``x`` into ``out`` (or a new array)."""

    @abstractmethod
    def fill(self, x: Array, value: float) -> Array:
        """Set every element of ``x`` to ``value`` in place."""

    @abstractmethod
    def add(self, x: Array, y: Array, out: Array | None = None) -> Array:
        """``out = x + y``."""

    @abstractmethod
    def sub(self, x: Array, y: Array, out: Array | None = None) -> Array:
        """``out = x - y``."""

    @abstractmethod
    def mul(self, x: Array, y: Array, out: Array | None = None) -> Array:
        """Hadamard product ``out = x * y``."""

    # ------------------------------------------------------------------
    # Matrix-free operator application
    # ------------------------------------------------------------------
    @abstractmethod
    def stencil_apply(
        self,
        diag: Array,
        west: Array,
        east: Array,
        south: Array,
        north: Array,
        x: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        """Apply a 5-point stencil to a ghost-padded field.

        ``x`` has shape ``(nx1 + 2, nx2 + 2)`` (one ghost layer on every
        side); the five coefficient arrays and ``out`` have the interior
        shape ``(nx1, nx2)``.  An optional interior-shaped ``work``
        buffer replaces any temporaries a whole-array implementation
        would allocate (results are identical with and without it).
        For interior index ``(i, j)``::

            out[i,j] = diag[i,j]*x[i+1,j+1]
                     + west[i,j]*x[i,  j+1] + east[i,j]*x[i+2,j+1]
                     + south[i,j]*x[i+1,j ] + north[i,j]*x[i+1,j+2]

        This is V2D's Matvec: the finite-difference diffusion operator
        applied to a column vector stored with the spatial shape of the
        grid -- the sparse matrix is never formed.
        """

    @abstractmethod
    def banded_matvec(
        self,
        offsets: Sequence[int],
        bands: Sequence[Array],
        x: Array,
        out: Array | None = None,
    ) -> Array:
        """Matvec with a matrix stored as diagonals (driver-program path).

        ``bands[k][i]`` multiplies ``x[i + offsets[k]]``; rows whose
        off-diagonal index falls outside ``[0, n)`` skip that band.
        Used by the stand-alone Table-II driver, which exercises the
        kernels on a 1000-equation banded system.
        """

    # ------------------------------------------------------------------
    # Fused operations (hot-path pairings of the primitives above).
    # Defaults are the unfused composition -- the reference semantics;
    # overrides must match them to reassociation error or better.
    # ------------------------------------------------------------------
    def axpy_dot(
        self,
        a: float,
        x: Array,
        y: Array,
        w: Array | None = None,
        out: Array | None = None,
        work: Array | None = None,
    ) -> tuple[Array, float]:
        """Fused DAXPY + DPROD: ``out = a*x + y``, returning
        ``(out, <out, w>)`` (``w=None`` means ``<out, out>``, i.e. the
        squared norm of the update -- "daxpy_norm")."""
        out = self.axpy(a, x, y, out=out, work=work)
        return out, self.dot(out, out if w is None else w)

    def dscal_dot(
        self,
        c: Array,
        d: float,
        y: Array,
        w: Array | None = None,
        out: Array | None = None,
        work: Array | None = None,
    ) -> tuple[Array, float]:
        """Fused DSCAL + DPROD: ``out = c - d*y`` plus ``<out, w>``
        (``w=None`` -> squared norm; the residual-update + norm pairing)."""
        out = self.dscal(c, d, y, out=out, work=work)
        return out, self.dot(out, out if w is None else w)

    def stencil_apply_dots(
        self,
        diag: Array,
        west: Array,
        east: Array,
        south: Array,
        north: Array,
        x: Array,
        dots: Sequence[object],
        out: Array | None = None,
    ) -> tuple[Array, Array]:
        """Fused MATVEC + ganged DPROD: apply the 5-point stencil and
        compute the requested inner products in the same sweep.

        ``dots`` entries follow the dot-specification forms of the
        module docstring (``None`` / array / ``(a, b)`` pair).  Returns
        ``(out, dot_values)`` with one value per spec, local to this
        rank (the caller reduces).
        """
        out = self.stencil_apply(diag, west, east, south, north, x, out=out)
        return out, self.multi_dot(self._resolve_dot_pairs(out, dots))

    @staticmethod
    def _resolve_dot_pairs(
        out: Array, dots: Sequence[object]
    ) -> list[tuple[Array, Array]]:
        """Expand dot specifications into explicit operand pairs."""
        pairs: list[tuple[Array, Array]] = []
        for spec in dots:
            if spec is None:
                pairs.append((out, out))
            elif isinstance(spec, tuple):
                pairs.append(spec)
            else:
                pairs.append((out, spec))  # type: ignore[arg-type]
        return pairs

    # ------------------------------------------------------------------
    # Helpers shared by concrete backends
    # ------------------------------------------------------------------
    @staticmethod
    def _check_same_shape(*arrays: Array) -> None:
        shape = arrays[0].shape
        for a in arrays[1:]:
            if a.shape != shape:
                raise ValueError(f"shape mismatch: {shape} vs {a.shape}")

    @staticmethod
    def _out_like(x: Array, out: Array | None) -> Array:
        if out is None:
            return np.empty_like(x)
        if out.shape != x.shape:
            raise ValueError(f"out shape {out.shape} != operand shape {x.shape}")
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(vector_bits={self.vector_bits})"
