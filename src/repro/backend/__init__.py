"""Execution backends: the SVE-substitute layer.

The paper's independent variable is *code generation*: the same Fortran
kernels compiled scalar (no SVE) or vectorized (SVE, 512-bit packed
doubles).  Python cannot express vector intrinsics, so this package
substitutes the same transformation one level up:

* :class:`~repro.backend.scalar.ScalarBackend` executes every primitive
  as an explicit element-by-element Python loop -- the analogue of
  unvectorized scalar code.
* :class:`~repro.backend.vector.VectorBackend` executes the same
  primitives as whole-array NumPy operations (in place where possible)
  -- the analogue of SVE codegen, including a configurable
  vector-length parameter (128-2048 bit, the Armv8-A VLA range) used
  for SIMD instruction accounting.
* :class:`~repro.backend.jit.JitBackend` compiles the same loops with
  Numba (optional dependency) -- the "perfect codegen" tier: fused
  single-pass kernels free of interpreter and NumPy per-operator
  overhead.

All backends produce *bit-identical results* for every elementwise and
stencil primitive (asserted by the test suite); reductions agree up to
summation order.  Only the execution strategy differs, which is
precisely the SVE-on/SVE-off contract.
"""

from repro.backend.base import Backend
from repro.backend.dispatch import (
    FUSED_PRIMITIVES,
    available_backends,
    default_backend,
    get_backend,
    native_fused_ops,
    register_backend,
    set_default_backend,
    use_backend,
)
from repro.backend.jit import JitBackend, numba_available
from repro.backend.scalar import ScalarBackend
from repro.backend.vector import VectorBackend

__all__ = [
    "Backend",
    "ScalarBackend",
    "VectorBackend",
    "JitBackend",
    "numba_available",
    "get_backend",
    "register_backend",
    "available_backends",
    "default_backend",
    "set_default_backend",
    "use_backend",
    "FUSED_PRIMITIVES",
    "native_fused_ops",
]
