"""Backend registry and selection.

V2D selects its code path at build time (compiler flags); we select at
run time through a small registry.  ``get_backend("vector")`` is the
SVE build, ``get_backend("scalar")`` the no-SVE build and
``get_backend("jit")`` the "perfect codegen" tier (compiled fused
loops; requires the optional numba dependency).

The ambient default is two-layered:

* a **process-wide default** (:func:`set_default_backend`), visible
  from every thread -- including worker threads spawned after it was
  set, such as the serve subsystem's ThreadPoolExecutor pool;
* a **per-thread override** (:func:`use_backend`), scoping a backend
  to a ``with`` block on the current thread only, the way a benchmark
  harness rebuilds and reruns an executable.

:func:`default_backend` resolves the thread override first, then the
process default.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.backend.base import Backend
from repro.backend.scalar import ScalarBackend
from repro.backend.vector import VectorBackend

_FACTORIES: dict[str, Callable[..., Backend]] = {}
_lock = threading.Lock()

#: Optional process-wide wrapper applied to every backend built by name
#: (fault-injection hook; ``None`` means backends come out unwrapped).
_fault_wrapper: Callable[[Backend], Backend] | None = None


def install_fault_wrapper(wrapper: Callable[[Backend], Backend] | None) -> None:
    """Install (or with ``None`` remove) the backend fault wrapper.

    Once installed, every backend constructed by :func:`get_backend`
    from a registry *name* is passed through ``wrapper`` before being
    returned -- the hook the fault-injection harness uses to corrupt
    kernel launches without any solver code knowing.  Backend
    *instances* passed through :func:`get_backend` are never wrapped,
    so explicitly constructed backends stay pristine.
    """
    global _fault_wrapper
    with _lock:
        _fault_wrapper = wrapper


def fault_wrapper() -> Callable[[Backend], Backend] | None:
    """The currently installed backend fault wrapper, if any."""
    with _lock:
        return _fault_wrapper


@contextmanager
def faulty_backends(wrapper: Callable[[Backend], Backend]) -> Iterator[None]:
    """Scope :func:`install_fault_wrapper` to a ``with`` block.

    Save-and-install happens in one critical section (and the restore
    in another), so two nested or racing scopes can never observe --
    and then restore -- each other's half-installed state.
    """
    global _fault_wrapper
    with _lock:
        previous = _fault_wrapper
        _fault_wrapper = wrapper
    try:
        yield
    finally:
        with _lock:
            _fault_wrapper = previous


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register a backend factory under ``name``.

    Re-registering an existing name raises ``ValueError`` to protect
    against accidental shadowing of the built-in backends.
    """
    with _lock:
        if name in _FACTORIES:
            raise ValueError(f"backend {name!r} already registered")
        _FACTORIES[name] = factory


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    with _lock:
        return sorted(_FACTORIES)


def get_backend(name: str | Backend, **kwargs: object) -> Backend:
    """Instantiate a backend by registry name.

    Passing an existing :class:`Backend` returns it unchanged, so APIs
    can accept either a name or an instance (``kwargs`` must then be
    empty).
    """
    if isinstance(name, Backend):
        if kwargs:
            raise ValueError("cannot pass constructor kwargs with a Backend instance")
        return name
    with _lock:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            raise KeyError(
                f"unknown backend {name!r}; available: {sorted(_FACTORIES)}"
            ) from None
        wrapper = _fault_wrapper
    backend = factory(**kwargs)
    if wrapper is not None:
        backend = wrapper(backend)
    return backend


def _make_jit_backend(**kwargs: object) -> Backend:
    # Imported lazily so merely registering the name costs nothing; the
    # constructor raises a KeyError-with-hint when numba is missing.
    from repro.backend.jit import JitBackend

    return JitBackend(**kwargs)  # type: ignore[arg-type]


register_backend("scalar", ScalarBackend)
register_backend("vector", VectorBackend)
register_backend("jit", _make_jit_backend)

#: Fused hot-path operations a backend may override with single-pass code.
FUSED_PRIMITIVES: tuple[str, ...] = ("axpy_dot", "dscal_dot", "stencil_apply_dots")


def native_fused_ops(backend: Backend) -> tuple[str, ...]:
    """Names of fused primitives ``backend`` implements natively.

    A fused op counts as native when the backend's class overrides the
    base-class default (which is the unfused composition).  The scalar
    and jit backends fuse in-loop (the jit tier at compiled register
    level); the vector backend inherits the defaults because
    whole-array NumPy cannot express register-level fusion -- there,
    fusion materializes as workspace reuse and batched reductions
    instead.
    """
    cls = type(backend)
    return tuple(
        name
        for name in FUSED_PRIMITIVES
        if getattr(cls, name) is not getattr(Backend, name)
    )

#: Process-wide ambient default, shared by every thread (lock-guarded;
#: lazily a :class:`VectorBackend`, which is stateless and thread-safe).
_process_default: Backend | None = None

#: Per-thread override scoped by :func:`use_backend`; wins over the
#: process default on the thread that set it, invisible elsewhere.
_thread = threading.local()


def default_backend() -> Backend:
    """The ambient backend: this thread's :func:`use_backend` override
    if one is active, else the process-wide default (vector/SVE unless
    :func:`set_default_backend` changed it)."""
    override = getattr(_thread, "backend", None)
    if override is not None:
        return override
    global _process_default
    with _lock:
        if _process_default is None:
            _process_default = VectorBackend()
        return _process_default


def set_default_backend(
    name: str | Backend | None, **kwargs: object
) -> Backend | None:
    """Set the process-wide default backend, visible from every thread.

    This is the knob for whole-process reconfiguration -- e.g. a serve
    deployment pinning its worker pool to one backend tier -- where
    :func:`use_backend`'s thread-scoped override would be invisible to
    worker threads.  Passing ``None`` restores the built-in default
    (a fresh vector backend on next use).  Returns the installed
    backend (``None`` when resetting).
    """
    global _process_default
    new = None if name is None else get_backend(name, **kwargs)
    with _lock:
        _process_default = new
    return new


@contextmanager
def use_backend(name: str | Backend, **kwargs: object) -> Iterator[Backend]:
    """Scope the ambient default backend for the current thread::

        with use_backend("scalar"):
            run_driver()          # everything executes unvectorized

    Nested scopes restore the enclosing override on exit; the
    outermost scope removes the override entirely, so the thread falls
    back to the process-wide default rather than pinning a stale
    ``None``/backend snapshot taken at entry.
    """
    new = get_backend(name, **kwargs)
    had_override = hasattr(_thread, "backend")
    old = getattr(_thread, "backend", None)
    _thread.backend = new
    try:
        yield new
    finally:
        if had_override:
            _thread.backend = old
        else:
            del _thread.backend
