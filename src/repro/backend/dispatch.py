"""Backend registry and selection.

V2D selects its code path at build time (compiler flags); we select at
run time through a small registry.  ``get_backend("vector")`` is the
SVE build, ``get_backend("scalar")`` the no-SVE build, and
:func:`use_backend` scopes a process-wide default the way a benchmark
harness rebuilds and reruns an executable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.backend.base import Backend
from repro.backend.scalar import ScalarBackend
from repro.backend.vector import VectorBackend

_FACTORIES: dict[str, Callable[..., Backend]] = {}
_lock = threading.Lock()

#: Optional process-wide wrapper applied to every backend built by name
#: (fault-injection hook; ``None`` means backends come out unwrapped).
_fault_wrapper: Callable[[Backend], Backend] | None = None


def install_fault_wrapper(wrapper: Callable[[Backend], Backend] | None) -> None:
    """Install (or with ``None`` remove) the backend fault wrapper.

    Once installed, every backend constructed by :func:`get_backend`
    from a registry *name* is passed through ``wrapper`` before being
    returned -- the hook the fault-injection harness uses to corrupt
    kernel launches without any solver code knowing.  Backend
    *instances* passed through :func:`get_backend` are never wrapped,
    so explicitly constructed backends stay pristine.
    """
    global _fault_wrapper
    with _lock:
        _fault_wrapper = wrapper


def fault_wrapper() -> Callable[[Backend], Backend] | None:
    """The currently installed backend fault wrapper, if any."""
    with _lock:
        return _fault_wrapper


@contextmanager
def faulty_backends(wrapper: Callable[[Backend], Backend]) -> Iterator[None]:
    """Scope :func:`install_fault_wrapper` to a ``with`` block."""
    with _lock:
        previous = _fault_wrapper
    install_fault_wrapper(wrapper)
    try:
        yield
    finally:
        install_fault_wrapper(previous)


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register a backend factory under ``name``.

    Re-registering an existing name raises ``ValueError`` to protect
    against accidental shadowing of the built-in backends.
    """
    with _lock:
        if name in _FACTORIES:
            raise ValueError(f"backend {name!r} already registered")
        _FACTORIES[name] = factory


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    with _lock:
        return sorted(_FACTORIES)


def get_backend(name: str | Backend, **kwargs: object) -> Backend:
    """Instantiate a backend by registry name.

    Passing an existing :class:`Backend` returns it unchanged, so APIs
    can accept either a name or an instance (``kwargs`` must then be
    empty).
    """
    if isinstance(name, Backend):
        if kwargs:
            raise ValueError("cannot pass constructor kwargs with a Backend instance")
        return name
    with _lock:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            raise KeyError(
                f"unknown backend {name!r}; available: {sorted(_FACTORIES)}"
            ) from None
        wrapper = _fault_wrapper
    backend = factory(**kwargs)
    if wrapper is not None:
        backend = wrapper(backend)
    return backend


register_backend("scalar", ScalarBackend)
register_backend("vector", VectorBackend)

#: Fused hot-path operations a backend may override with single-pass code.
FUSED_PRIMITIVES: tuple[str, ...] = ("axpy_dot", "dscal_dot", "stencil_apply_dots")


def native_fused_ops(backend: Backend) -> tuple[str, ...]:
    """Names of fused primitives ``backend`` implements natively.

    A fused op counts as native when the backend's class overrides the
    base-class default (which is the unfused composition).  The scalar
    backend fuses in-loop; the vector backend inherits the defaults
    because whole-array NumPy cannot express register-level fusion --
    there, fusion materializes as workspace reuse and batched
    reductions instead.
    """
    cls = type(backend)
    return tuple(
        name
        for name in FUSED_PRIMITIVES
        if getattr(cls, name) is not getattr(Backend, name)
    )

_default = threading.local()


def default_backend() -> Backend:
    """The ambient backend (vector/SVE unless overridden)."""
    bk = getattr(_default, "backend", None)
    if bk is None:
        bk = VectorBackend()
        _default.backend = bk
    return bk


@contextmanager
def use_backend(name: str | Backend, **kwargs: object) -> Iterator[Backend]:
    """Scope the ambient default backend for the current thread::

        with use_backend("scalar"):
            run_driver()          # everything executes unvectorized
    """
    new = get_backend(name, **kwargs)
    old = getattr(_default, "backend", None)
    _default.backend = new
    try:
        yield new
    finally:
        _default.backend = old
