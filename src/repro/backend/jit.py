"""JIT-compiled backend: the "perfect codegen" tier.

The paper's two build configurations (no-SVE scalar code vs SVE packed
doubles) bound what the *compiler* made of the Table-II loops.  This
backend asks the follow-up question -- what if codegen were perfect? --
by handing the very same element loops to Numba's ``@njit``: compiled,
fused at register level, free of both interpreter overhead and NumPy's
one-pass-per-operator structure.  It follows pyxu's pattern of
Numba-compiled stencils behind a uniform operator API.

Numba is a **soft optional dependency**:

* with numba installed, every kernel lazily compiles on first use
  (``fastmath=False`` throughout -- see below) and is cached for the
  process lifetime;
* without numba, ``get_backend("jit")`` raises a ``KeyError`` with an
  installation hint, and the rest of the registry is untouched, so the
  stdlib+numpy baseline never notices the tier exists;
* ``JitBackend(force_python=True)`` runs the *same kernel functions*
  uncompiled -- a test-only mode that lets the numerical contracts
  below be asserted on numba-less machines (it is pure-Python slow and
  never selected by the registry factory).

Numerical contracts (pinned by ``tests/test_jit.py``):

* **Elementwise and stencil primitives are bitwise identical** to both
  the scalar and vector backends: same per-element operations in the
  same association, and ``fastmath=False`` forbids LLVM from
  reassociating or contracting them.
* **Reductions accumulate sequentially left-to-right** -- bitwise
  identical to the scalar backend, and equal to the vector backend's
  pairwise NumPy sums only to reassociation error (exactly the
  scalar-vs-vector contract).
* **Fused ops are bitwise identical to their unfused composition**
  within this backend: the in-loop accumulations consume the freshly
  computed element "from the register", and in IEEE double precision a
  stored value re-read equals the register value, so fusing cannot
  change a single bit.

``parallel=True`` (with ``prange``) is used only where iterations are
independent -- the elementwise updates and the stencil rows.  Every
accumulating kernel compiles sequentially: a parallel reduction would
reassociate partial sums nondeterministically, trading the bitwise
contracts for a speedup the Table-II kernels do not need at L1-resident
sizes.  ``fastmath`` stays off for the same reason (DESIGN section 15).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.backend.base import Array, Backend

__all__ = ["JitBackend", "numba_available", "NUMBA_HINT"]

#: The KeyError payload when the tier is requested without numba.
NUMBA_HINT = (
    "backend 'jit' requires the optional numba dependency "
    "(pip install numba); use 'vector' or 'scalar' instead"
)

try:  # soft dependency: resolved once at import, never a hard failure
    from numba import njit, prange

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised on numba-less CI legs
    njit = None
    prange = range  # the kernels below stay runnable in pure Python
    _HAVE_NUMBA = False


def numba_available() -> bool:
    """True when the optional numba dependency is importable."""
    return _HAVE_NUMBA


# ----------------------------------------------------------------------
# Kernel bodies.  Plain module-level functions: compiled via njit when
# numba is present, run as-is under ``force_python=True``.  All loops
# are written exactly as the scalar backend walks its operands, so the
# per-element association (and hence the bitwise contract) is shared.
# ----------------------------------------------------------------------
def _k_dot(x, y):
    acc = 0.0
    for i in range(x.shape[0]):
        acc += x[i] * y[i]
    return acc


def _k_axpy(a, x, y, out):
    for i in prange(x.shape[0]):
        out[i] = a * x[i] + y[i]


def _k_dscal(c, d, y, out):
    for i in prange(c.shape[0]):
        out[i] = c[i] - d * y[i]


def _k_ddaxpy(a, x, b, y, z, out):
    for i in prange(x.shape[0]):
        out[i] = a * x[i] + b * y[i] + z[i]


def _k_scale(alpha, x, out):
    for i in prange(x.shape[0]):
        out[i] = alpha * x[i]


def _k_copy(x, out):
    for i in prange(x.shape[0]):
        out[i] = x[i]


def _k_fill(x, value):
    for i in prange(x.shape[0]):
        x[i] = value


def _k_add(x, y, out):
    for i in prange(x.shape[0]):
        out[i] = x[i] + y[i]


def _k_sub(x, y, out):
    for i in prange(x.shape[0]):
        out[i] = x[i] - y[i]


def _k_mul(x, y, out):
    for i in prange(x.shape[0]):
        out[i] = x[i] * y[i]


def _k_stencil(diag, west, east, south, north, x, out):
    n1, n2 = diag.shape
    for i in prange(n1):
        for j in range(n2):
            out[i, j] = (
                diag[i, j] * x[i + 1, j + 1]
                + west[i, j] * x[i, j + 1]
                + east[i, j] * x[i + 2, j + 1]
                + south[i, j] * x[i + 1, j]
                + north[i, j] * x[i + 1, j + 2]
            )


def _k_banded_band(band, x, out, off):
    # One band's contribution; bands accumulate in offset order, the
    # same left-to-right association as the scalar and vector backends.
    n = x.shape[0]
    if off >= 0:
        hi = n - off
        for i in prange(hi):
            out[i] += band[i] * x[i + off]
    else:
        lo = -off
        for i in prange(n - lo):
            out[lo + i] += band[lo + i] * x[i]


# Fused kernels: the dot accumulation rides inside the loop producing
# the output element.  Sequential on purpose (see module docstring).
def _k_axpy_dot(a, x, y, out):
    acc = 0.0
    for i in range(x.shape[0]):
        v = a * x[i] + y[i]
        out[i] = v
        acc += v * v
    return acc


def _k_axpy_dot_w(a, x, y, w, out):
    acc = 0.0
    for i in range(x.shape[0]):
        v = a * x[i] + y[i]
        out[i] = v
        acc += v * w[i]
    return acc


def _k_dscal_dot(c, d, y, out):
    acc = 0.0
    for i in range(c.shape[0]):
        v = c[i] - d * y[i]
        out[i] = v
        acc += v * v
    return acc


def _k_dscal_dot_w(c, d, y, w, out):
    acc = 0.0
    for i in range(c.shape[0]):
        v = c[i] - d * y[i]
        out[i] = v
        acc += v * w[i]
    return acc


def _k_stencil_dots(diag, west, east, south, north, x, modes, ws, out, accs):
    # Row-major sweep with all result-dependent accumulations riding in
    # the element loop; ``modes[k]`` selects the dot form (0: <v, v>,
    # 1: <v, ws[k]>).  The flattened order equals the sequential
    # ``_k_dot`` order over the stored result, so each accumulator is
    # bitwise identical to the unfused composition.
    n1, n2 = diag.shape
    nk = modes.shape[0]
    for i in range(n1):
        for j in range(n2):
            v = (
                diag[i, j] * x[i + 1, j + 1]
                + west[i, j] * x[i, j + 1]
                + east[i, j] * x[i + 2, j + 1]
                + south[i, j] * x[i + 1, j]
                + north[i, j] * x[i + 1, j + 2]
            )
            out[i, j] = v
            for k in range(nk):
                if modes[k] == 0:
                    accs[k] += v * v
                else:
                    accs[k] += v * ws[k, i, j]


#: Kernel name -> (python body, compile with parallel=True).  The
#: accumulating kernels stay sequential for bitwise determinism.
_KERNELS: dict[str, tuple[Callable, bool]] = {
    "dot": (_k_dot, False),
    "axpy": (_k_axpy, True),
    "dscal": (_k_dscal, True),
    "ddaxpy": (_k_ddaxpy, True),
    "scale": (_k_scale, True),
    "copy": (_k_copy, True),
    "fill": (_k_fill, True),
    "add": (_k_add, True),
    "sub": (_k_sub, True),
    "mul": (_k_mul, True),
    "stencil": (_k_stencil, True),
    "banded_band": (_k_banded_band, True),
    "axpy_dot": (_k_axpy_dot, False),
    "axpy_dot_w": (_k_axpy_dot_w, False),
    "dscal_dot": (_k_dscal_dot, False),
    "dscal_dot_w": (_k_dscal_dot_w, False),
    "stencil_dots": (_k_stencil_dots, False),
}

#: Process-lifetime cache of compiled dispatchers (compile once, reuse
#: across every JitBackend instance; the harness's warm-up pass is what
#: keeps the first-call compilation out of timed windows).
_COMPILED: dict[str, Callable] = {}


def _compiled(name: str) -> Callable:
    fn = _COMPILED.get(name)
    if fn is None:
        body, parallel = _KERNELS[name]
        # fastmath stays False: reassociation/contraction would break
        # the bitwise contracts shared with the scalar/vector tiers.
        fn = njit(parallel=parallel, fastmath=False)(body)
        _COMPILED[name] = fn
    return fn


class JitBackend(Backend):
    """Compiled fused-loop execution (numba ``@njit``).

    Parameters
    ----------
    vector_bits:
        SIMD accounting width, as for the vector backend (the compiled
        loops model the same packed-double execution; A64FX: 512).
    force_python:
        Run the kernel bodies uncompiled (test-only; lets numba-less
        environments assert the numerical contracts).  The registry
        factory never sets this.
    """

    name = "jit"
    vectorized = True

    def __init__(self, vector_bits: int = 512, force_python: bool = False) -> None:
        if not force_python and not _HAVE_NUMBA:
            raise KeyError(NUMBA_HINT)
        if vector_bits % 128 != 0 or not 128 <= vector_bits <= 2048:
            raise ValueError(
                "SVE vector length must be a multiple of 128 in [128, 2048], "
                f"got {vector_bits}"
            )
        super().__init__(vector_bits=vector_bits)
        self.force_python = bool(force_python)

    def _k(self, name: str) -> Callable:
        if self.force_python:
            return _KERNELS[name][0]
        return _compiled(name)

    # -- reductions -----------------------------------------------------
    # Sequential left-to-right accumulation: bitwise identical to the
    # scalar backend, and to this backend's own fused accumulators.
    def dot(self, x: Array, y: Array) -> float:
        self._check_same_shape(x, y)
        return float(self._k("dot")(x.ravel(), y.ravel()))

    def multi_dot(self, pairs: Sequence[tuple[Array, Array]]) -> Array:
        if not pairs:
            return np.zeros(0)
        n = pairs[0][0].size
        dot = self._k("dot")
        out = np.empty(len(pairs))
        for k, (x, y) in enumerate(pairs):
            self._check_same_shape(x, y)
            if x.size != n:
                raise ValueError("ganged dot products require equal-length operands")
            out[k] = dot(x.ravel(), y.ravel())
        return out

    def norm2(self, x: Array) -> float:
        xf = x.ravel()
        return float(np.sqrt(self._k("dot")(xf, xf)))

    # -- BLAS-1 updates --------------------------------------------------
    # Element loops read every operand at index i before writing out[i],
    # so aliased ``out`` is naturally safe and ``work`` is never needed
    # (accepted for signature compatibility, as in the scalar backend).
    def axpy(
        self,
        a: float,
        x: Array,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        self._k("axpy")(a, x.ravel(), y.ravel(), out.ravel())
        return out

    def dscal(
        self,
        c: Array,
        d: float,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(c, y)
        out = self._out_like(c, out)
        self._k("dscal")(c.ravel(), d, y.ravel(), out.ravel())
        return out

    def ddaxpy(
        self,
        a: float,
        x: Array,
        b: float,
        y: Array,
        z: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(x, y, z)
        out = self._out_like(x, out)
        self._k("ddaxpy")(a, x.ravel(), b, y.ravel(), z.ravel(), out.ravel())
        return out

    def scale(self, alpha: float, x: Array, out: Array | None = None) -> Array:
        out = self._out_like(x, out)
        self._k("scale")(alpha, x.ravel(), out.ravel())
        return out

    def copy(self, x: Array, out: Array | None = None) -> Array:
        out = self._out_like(x, out)
        self._k("copy")(x.ravel(), out.ravel())
        return out

    def fill(self, x: Array, value: float) -> Array:
        self._k("fill")(x.ravel(), value)
        return x

    def add(self, x: Array, y: Array, out: Array | None = None) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        self._k("add")(x.ravel(), y.ravel(), out.ravel())
        return out

    def sub(self, x: Array, y: Array, out: Array | None = None) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        self._k("sub")(x.ravel(), y.ravel(), out.ravel())
        return out

    def mul(self, x: Array, y: Array, out: Array | None = None) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        self._k("mul")(x.ravel(), y.ravel(), out.ravel())
        return out

    # -- matrix-free operators --------------------------------------------
    def stencil_apply(
        self,
        diag: Array,
        west: Array,
        east: Array,
        south: Array,
        north: Array,
        x: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(diag, west, east, south, north)
        n1, n2 = diag.shape
        if x.shape != (n1 + 2, n2 + 2):
            raise ValueError(
                f"ghost-padded field must be {(n1 + 2, n2 + 2)}, got {x.shape}"
            )
        out = self._out_like(diag, out)
        self._k("stencil")(diag, west, east, south, north, x, out)
        return out

    def banded_matvec(
        self,
        offsets: Sequence[int],
        bands: Sequence[Array],
        x: Array,
        out: Array | None = None,
    ) -> Array:
        if len(offsets) != len(bands):
            raise ValueError("offsets and bands must pair up")
        if out is x:
            raise ValueError("banded_matvec cannot write its result over x")
        out = self._out_like(x, out)
        self._k("fill")(out, 0.0)
        band_kernel = self._k("banded_band")
        for off, band in zip(offsets, bands):
            band_kernel(band, x, out, int(off))
        return out

    # -- fused operations --------------------------------------------------
    # True single-pass compiled loops: the dot accumulations consume the
    # freshly computed element before it leaves the register.  Bitwise
    # identical to the unfused composition within this backend (stored
    # float64 == register float64; same sequential order).
    def axpy_dot(
        self,
        a: float,
        x: Array,
        y: Array,
        w: Array | None = None,
        out: Array | None = None,
        work: Array | None = None,
    ) -> tuple[Array, float]:
        self._check_same_shape(x, y)
        if w is not None:
            self._check_same_shape(x, w)
        out = self._out_like(x, out)
        if w is None:
            acc = self._k("axpy_dot")(a, x.ravel(), y.ravel(), out.ravel())
        else:
            acc = self._k("axpy_dot_w")(
                a, x.ravel(), y.ravel(), w.ravel(), out.ravel()
            )
        return out, float(acc)

    def dscal_dot(
        self,
        c: Array,
        d: float,
        y: Array,
        w: Array | None = None,
        out: Array | None = None,
        work: Array | None = None,
    ) -> tuple[Array, float]:
        self._check_same_shape(c, y)
        if w is not None:
            self._check_same_shape(c, w)
        out = self._out_like(c, out)
        if w is None:
            acc = self._k("dscal_dot")(c.ravel(), d, y.ravel(), out.ravel())
        else:
            acc = self._k("dscal_dot_w")(
                c.ravel(), d, y.ravel(), w.ravel(), out.ravel()
            )
        return out, float(acc)

    def stencil_apply_dots(
        self,
        diag: Array,
        west: Array,
        east: Array,
        south: Array,
        north: Array,
        x: Array,
        dots: Sequence[object],
        out: Array | None = None,
    ) -> tuple[Array, Array]:
        self._check_same_shape(diag, west, east, south, north)
        n1, n2 = diag.shape
        if x.shape != (n1 + 2, n2 + 2):
            raise ValueError(
                f"ghost-padded field must be {(n1 + 2, n2 + 2)}, got {x.shape}"
            )
        out = self._out_like(diag, out)
        specs = list(dots)
        # Result-dependent specs (None -> <out, out>, array w ->
        # <out, w>) ride the fused sweep; independent (a, b) pairs gain
        # nothing from it (their operands are unrelated streams) and go
        # through the same sequential dot kernel afterwards -- the
        # composition order is per-spec, so values stay bitwise equal
        # to unfused whichever path each spec takes.
        riding = [
            (k, spec) for k, spec in enumerate(specs)
            if not isinstance(spec, tuple)
        ]
        modes = np.array(
            [0 if spec is None else 1 for _, spec in riding], dtype=np.int64
        )
        ws = np.zeros((len(riding), n1, n2)) if riding else np.zeros((0, n1, n2))
        for slot, (_, spec) in enumerate(riding):
            if spec is not None:
                ws[slot] = spec  # type: ignore[assignment]
        accs = np.zeros(len(riding))
        self._k("stencil_dots")(
            diag, west, east, south, north, x, modes, ws, out, accs
        )
        values = np.empty(len(specs))
        for slot, (k, _) in enumerate(riding):
            values[k] = accs[slot]
        dot = self._k("dot")
        for k, spec in enumerate(specs):
            if isinstance(spec, tuple):
                a, b = spec
                self._check_same_shape(a, b)
                values[k] = dot(a.ravel(), b.ravel())
        return out, values
