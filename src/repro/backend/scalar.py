"""Scalar (unvectorized) backend: the no-SVE proxy.

Every primitive walks its operands element by element in an explicit
Python loop, exactly as a compiler emits scalar code when SVE (and
auto-vectorization generally) is disabled.  Data still lives in NumPy
``float64`` arrays -- mirroring V2D, whose vectors are ordinary Fortran
arrays regardless of how the loops over them are compiled.

Elementwise primitives produce results bit-identical to
:class:`~repro.backend.vector.VectorBackend` (same operations, same
order per element).  Reductions agree to within floating-point
reassociation error: this backend sums left-to-right (scalar code),
while the vector backend accumulates lane-wise (as SVE reductions do)
via NumPy's pairwise summation.  The test suite pins both contracts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend.base import Array, Backend


class ScalarBackend(Backend):
    """Element-at-a-time execution (one double per 'vector' op)."""

    name = "scalar"
    vectorized = False

    def __init__(self, vector_bits: int = 64) -> None:
        if vector_bits != 64:
            raise ValueError("ScalarBackend is by definition 64-bit (one lane)")
        super().__init__(vector_bits=64)

    # -- reductions -----------------------------------------------------
    def dot(self, x: Array, y: Array) -> float:
        self._check_same_shape(x, y)
        xf, yf = x.ravel(), y.ravel()
        acc = 0.0
        for i in range(xf.shape[0]):
            acc += xf[i] * yf[i]
        return acc

    def multi_dot(self, pairs: Sequence[tuple[Array, Array]]) -> Array:
        if not pairs:
            return np.zeros(0)
        n = pairs[0][0].size
        flats = []
        for x, y in pairs:
            self._check_same_shape(x, y)
            if x.size != n:
                raise ValueError("ganged dot products require equal-length operands")
            flats.append((x.ravel(), y.ravel()))
        # One fused sweep: a single pass of the index over all pairs, the
        # way V2D's ganged DPROD touches each vector pair once per element.
        accs = [0.0] * len(flats)
        for i in range(n):
            for k, (xf, yf) in enumerate(flats):
                accs[k] += xf[i] * yf[i]
        return np.array(accs)

    def norm2(self, x: Array) -> float:
        return float(np.sqrt(self.dot(x, x)))

    # -- BLAS-1 updates --------------------------------------------------
    # Element loops read every operand before writing the element, so
    # aliased ``out`` is naturally safe; the ``work`` buffer is accepted
    # for signature compatibility and never needed.
    def axpy(
        self,
        a: float,
        x: Array,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        xf, yf, of = x.ravel(), y.ravel(), out.ravel()
        for i in range(xf.shape[0]):
            of[i] = a * xf[i] + yf[i]
        return out

    def dscal(
        self,
        c: Array,
        d: float,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(c, y)
        out = self._out_like(c, out)
        cf, yf, of = c.ravel(), y.ravel(), out.ravel()
        for i in range(cf.shape[0]):
            of[i] = cf[i] - d * yf[i]
        return out

    def ddaxpy(
        self,
        a: float,
        x: Array,
        b: float,
        y: Array,
        z: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(x, y, z)
        out = self._out_like(x, out)
        xf, yf, zf, of = x.ravel(), y.ravel(), z.ravel(), out.ravel()
        for i in range(xf.shape[0]):
            of[i] = a * xf[i] + b * yf[i] + zf[i]
        return out

    def scale(self, alpha: float, x: Array, out: Array | None = None) -> Array:
        out = self._out_like(x, out)
        xf, of = x.ravel(), out.ravel()
        for i in range(xf.shape[0]):
            of[i] = alpha * xf[i]
        return out

    def copy(self, x: Array, out: Array | None = None) -> Array:
        out = self._out_like(x, out)
        xf, of = x.ravel(), out.ravel()
        for i in range(xf.shape[0]):
            of[i] = xf[i]
        return out

    def fill(self, x: Array, value: float) -> Array:
        xf = x.ravel()
        for i in range(xf.shape[0]):
            xf[i] = value
        return x

    def add(self, x: Array, y: Array, out: Array | None = None) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        xf, yf, of = x.ravel(), y.ravel(), out.ravel()
        for i in range(xf.shape[0]):
            of[i] = xf[i] + yf[i]
        return out

    def sub(self, x: Array, y: Array, out: Array | None = None) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        xf, yf, of = x.ravel(), y.ravel(), out.ravel()
        for i in range(xf.shape[0]):
            of[i] = xf[i] - yf[i]
        return out

    def mul(self, x: Array, y: Array, out: Array | None = None) -> Array:
        self._check_same_shape(x, y)
        out = self._out_like(x, out)
        xf, yf, of = x.ravel(), y.ravel(), out.ravel()
        for i in range(xf.shape[0]):
            of[i] = xf[i] * yf[i]
        return out

    # -- fused operations --------------------------------------------------
    # True single-pass implementations: the dot accumulations ride in the
    # same element loop that produces the output, so the fresh value is
    # consumed "from the register" instead of being re-loaded in a second
    # sweep.  The element order matches the unfused composition exactly,
    # so results are bit-identical to the base-class reference.
    def axpy_dot(
        self,
        a: float,
        x: Array,
        y: Array,
        w: Array | None = None,
        out: Array | None = None,
        work: Array | None = None,
    ) -> tuple[Array, float]:
        self._check_same_shape(x, y)
        if w is not None:
            self._check_same_shape(x, w)
        out = self._out_like(x, out)
        xf, yf, of = x.ravel(), y.ravel(), out.ravel()
        wf = None if w is None else w.ravel()
        acc = 0.0
        for i in range(xf.shape[0]):
            v = a * xf[i] + yf[i]
            of[i] = v
            acc += v * (v if wf is None else wf[i])
        return out, acc

    def dscal_dot(
        self,
        c: Array,
        d: float,
        y: Array,
        w: Array | None = None,
        out: Array | None = None,
        work: Array | None = None,
    ) -> tuple[Array, float]:
        self._check_same_shape(c, y)
        if w is not None:
            self._check_same_shape(c, w)
        out = self._out_like(c, out)
        cf, yf, of = c.ravel(), y.ravel(), out.ravel()
        wf = None if w is None else w.ravel()
        acc = 0.0
        for i in range(cf.shape[0]):
            v = cf[i] - d * yf[i]
            of[i] = v
            acc += v * (v if wf is None else wf[i])
        return out, acc

    def stencil_apply_dots(
        self,
        diag: Array,
        west: Array,
        east: Array,
        south: Array,
        north: Array,
        x: Array,
        dots: Sequence[object],
        out: Array | None = None,
    ) -> tuple[Array, Array]:
        self._check_same_shape(diag, west, east, south, north)
        n1, n2 = diag.shape
        if x.shape != (n1 + 2, n2 + 2):
            raise ValueError(
                f"ghost-padded field must be {(n1 + 2, n2 + 2)}, got {x.shape}"
            )
        out = self._out_like(diag, out)
        specs = list(dots)
        accs = [0.0] * len(specs)
        # Row-major sweep = the flattened order of the unfused multi_dot,
        # so each accumulation is bit-identical to the composition.
        for i in range(n1):
            for j in range(n2):
                v = (
                    diag[i, j] * x[i + 1, j + 1]
                    + west[i, j] * x[i, j + 1]
                    + east[i, j] * x[i + 2, j + 1]
                    + south[i, j] * x[i + 1, j]
                    + north[i, j] * x[i + 1, j + 2]
                )
                out[i, j] = v
                for k, spec in enumerate(specs):
                    if spec is None:
                        accs[k] += v * v
                    elif isinstance(spec, tuple):
                        accs[k] += spec[0][i, j] * spec[1][i, j]
                    else:
                        accs[k] += v * spec[i, j]
        return out, np.array(accs)

    # -- matrix-free operators --------------------------------------------
    def stencil_apply(
        self,
        diag: Array,
        west: Array,
        east: Array,
        south: Array,
        north: Array,
        x: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        self._check_same_shape(diag, west, east, south, north)
        n1, n2 = diag.shape
        if x.shape != (n1 + 2, n2 + 2):
            raise ValueError(
                f"ghost-padded field must be {(n1 + 2, n2 + 2)}, got {x.shape}"
            )
        out = self._out_like(diag, out)
        for i in range(n1):
            for j in range(n2):
                out[i, j] = (
                    diag[i, j] * x[i + 1, j + 1]
                    + west[i, j] * x[i, j + 1]
                    + east[i, j] * x[i + 2, j + 1]
                    + south[i, j] * x[i + 1, j]
                    + north[i, j] * x[i + 1, j + 2]
                )
        return out

    def banded_matvec(
        self,
        offsets: Sequence[int],
        bands: Sequence[Array],
        x: Array,
        out: Array | None = None,
    ) -> Array:
        if len(offsets) != len(bands):
            raise ValueError("offsets and bands must pair up")
        if out is x:
            raise ValueError("banded_matvec cannot write its result over x")
        n = x.shape[0]
        out = self._out_like(x, out)
        for i in range(n):
            acc = 0.0
            for off, band in zip(offsets, bands):
                j = i + off
                if 0 <= j < n:
                    acc += band[i] * x[j]
            out[i] = acc
        return out
