"""repro: a reproduction of the V2D / SVE performance study (CLUSTER 2022).

A Python re-implementation of the system behind *"Performance of an
Astrophysical Radiation Hydrodynamics Code under Scalable Vector
Extension Optimization"*: the V2D radiation-hydrodynamics code (2-D
multigroup flux-limited diffusion with a matrix-free, SPAI-
preconditioned, ganged-reduction BiCGSTAB solver and NPRX1 x NPRX2
domain decomposition), its five Table-II linear-algebra kernels under
interchangeable scalar / vectorized execution backends (the SVE
substitute), a software performance-monitoring stack (perf/PAPI/TAU
substitutes), and an analytic A64FX + Ookami machine model that
regenerates the paper's Table I and Table II.

Quick start::

    from repro import GaussianPulseProblem, V2DConfig, Simulation

    config = V2DConfig(nx1=64, nx2=32, nsteps=10)
    sim = Simulation(config, GaussianPulseProblem())
    report = sim.run()
    print(report.summary())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro.backend import (
    Backend,
    JitBackend,
    ScalarBackend,
    VectorBackend,
    available_backends,
    get_backend,
    numba_available,
    set_default_backend,
    use_backend,
)
from repro.grid import Field, Mesh2D, Tile, TileDecomposition
from repro.kernels import KernelDriver, KernelSuite
from repro.monitor import Counters, Profiler, perf_stat
from repro.parallel import CartComm, Communicator, HaloExchanger, run_spmd

__all__ = [
    "__version__",
    "Backend",
    "ScalarBackend",
    "VectorBackend",
    "JitBackend",
    "numba_available",
    "get_backend",
    "use_backend",
    "set_default_backend",
    "available_backends",
    "Mesh2D",
    "Field",
    "Tile",
    "TileDecomposition",
    "KernelSuite",
    "KernelDriver",
    "Counters",
    "Profiler",
    "perf_stat",
    "Communicator",
    "CartComm",
    "HaloExchanger",
    "run_spmd",
]

try:  # high-level simulation API (depends on every substrate)
    from repro.problems import GaussianPulseProblem  # noqa: F401
    from repro.v2d import Simulation, V2DConfig  # noqa: F401

    __all__ += ["GaussianPulseProblem", "Simulation", "V2DConfig"]
except ImportError:  # pragma: no cover - only during bootstrap
    pass
