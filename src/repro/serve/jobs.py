"""The serve job model: requests, lifecycle states, and the runner.

A job is one tenant-submitted simulation travelling the lifecycle

    queued -> running -> done | failed | cancelled

(with the two shortcuts ``queued -> done`` for cache hits and
``queued -> cancelled`` for jobs cancelled before a worker claims
them).  :class:`Job` is the server-side record; :class:`JobRequest` is
the validated wire form; :func:`execute_serve_job` is the unit of work
a pool thread runs -- the serve twin of
:func:`repro.campaign.worker.execute_job`, with the same never-raises
contract plus three service powers the campaign path has no use for:

* a ``cancel`` event checked between steps (cancel mid-solve lands on
  a checkpointed step boundary, so the job is resumable);
* a :class:`~repro.serve.stop.StoppingCriterion` budget consulted
  between steps (budget expiry also checkpoints and reports partial
  results);
* a ``progress`` callback fed per-step state for live streaming.

Identity is content-addressed: :meth:`JobRequest.dedup_key` reuses the
campaign cache key over the config with serve-owned fields (checkpoint
plumbing, instrumentation toggles) normalized away, so two tenants
asking for the same physics -- one with tracing on, one without --
fan in onto one execution and one cache entry.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.campaign.cache import job_key
from repro.problems import get_problem
from repro.serve.stop import (
    BudgetError,
    StoppingCriterion,
    budget_from_dict,
)
from repro.v2d.config import V2DConfig

__all__ = [
    "JobState",
    "ServeError",
    "InvalidRequest",
    "UnknownJob",
    "QuotaExceeded",
    "RateLimited",
    "QueueFull",
    "JobRequest",
    "Job",
    "execute_serve_job",
]

#: Config fields the dedup key ignores: they steer where artifacts land
#: and what gets instrumented, never what the physics computes.
_KEY_NEUTRAL_FIELDS = {
    "checkpoint_path": None,
    "checkpoint_interval": 0,
    "profile": False,
    "trace": False,
}


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class JobState:
    """Job lifecycle states and the legal transitions between them."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})

    _ALLOWED = {
        QUEUED: frozenset({RUNNING, DONE, CANCELLED}),
        RUNNING: frozenset({DONE, FAILED, CANCELLED}),
        DONE: frozenset(),
        FAILED: frozenset(),
        CANCELLED: frozenset(),
    }

    @classmethod
    def check(cls, old: str, new: str) -> None:
        if new not in cls._ALLOWED.get(old, frozenset()):
            raise ValueError(f"illegal job transition {old!r} -> {new!r}")


# ----------------------------------------------------------------------
# Typed rejections (the wire error vocabulary)
# ----------------------------------------------------------------------
class ServeError(Exception):
    """Base of every typed rejection the server sends a client.

    ``code`` is the stable wire identifier (``error.type`` in
    responses); the message is human-oriented and may change.
    """

    code = "error"

    def to_wire(self) -> dict[str, str]:
        return {"type": self.code, "message": str(self)}


class InvalidRequest(ServeError):
    """The request is malformed or names an invalid config/problem."""

    code = "invalid-request"


class UnknownJob(ServeError):
    """The referenced job id does not exist on this server."""

    code = "unknown-job"


class QuotaExceeded(ServeError):
    """The tenant is at its active-jobs quota."""

    code = "quota-exceeded"


class RateLimited(ServeError):
    """The tenant's token bucket is empty; retry later."""

    code = "rate-limited"


class QueueFull(ServeError):
    """The server's global queue is at capacity."""

    code = "queue-full"


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass
class JobRequest:
    """A validated submission: what one tenant asked the server to run."""

    tenant: str = "default"
    problem: str = "gaussian-pulse"
    config: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    budget: StoppingCriterion | None = None
    budget_wire: dict[str, Any] | None = None
    #: Job id whose checkpoint this run resumes from (serve fills in
    #: the checkpoint path/step from its own records).
    resume: str | None = None

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "JobRequest":
        """Parse and validate one ``submit`` request body.

        Every defect raises :class:`InvalidRequest` with a message
        naming the offending field -- validation happens here, at the
        front door, never deep inside a worker.
        """
        if not isinstance(data, Mapping):
            raise InvalidRequest(f"submit body must be an object, got {type(data).__name__}")
        tenant = data.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise InvalidRequest(f"tenant must be a non-empty string, got {tenant!r}")
        problem = data.get("problem", "gaussian-pulse")
        if not isinstance(problem, str):
            raise InvalidRequest(f"problem must be a string, got {problem!r}")
        try:
            get_problem(problem)
        except (KeyError, ValueError) as exc:
            raise InvalidRequest(str(exc)) from None
        config = data.get("config", {})
        if not isinstance(config, Mapping):
            raise InvalidRequest(f"config must be an object, got {type(config).__name__}")
        try:
            canonical = V2DConfig.from_dict(dict(config)).to_dict()
        except (ValueError, TypeError) as exc:
            raise InvalidRequest(f"invalid config: {exc}") from None
        priority = data.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise InvalidRequest(f"priority must be an integer, got {priority!r}")
        budget_wire = data.get("budget")
        try:
            budget = budget_from_dict(budget_wire)
        except BudgetError as exc:
            raise InvalidRequest(f"invalid budget: {exc}") from None
        resume = data.get("resume")
        if resume is not None and not isinstance(resume, str):
            raise InvalidRequest(f"resume must be a job id string, got {resume!r}")
        return cls(
            tenant=tenant,
            problem=problem,
            config=canonical,
            priority=priority,
            budget=budget,
            budget_wire=dict(budget_wire) if isinstance(budget_wire, Mapping) else None,
            resume=resume,
        )

    def dedup_key(self) -> str:
        """The content-address identity of this request's physics.

        Serve-owned fields (checkpoint plumbing, instrumentation) are
        normalized out so requests differing only in observability
        dedup onto one execution and one ``.repro-cache`` entry.
        """
        normalized = dict(self.config)
        normalized.update(_KEY_NEUTRAL_FIELDS)
        return job_key(normalized, self.problem)


# ----------------------------------------------------------------------
# The server-side record
# ----------------------------------------------------------------------
@dataclass
class Job:
    """One submission's full server-side state."""

    id: str
    key: str
    request: JobRequest
    state: str = JobState.QUEUED
    #: Heap tiebreaker and FIFO order within a priority class.
    seq: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: Monotonic submit stamp for latency metrics.
    t_submit: float = field(default_factory=time.monotonic)
    #: Monotonic stamp when a worker picked the job up (queue-wait metric).
    t_started: float | None = None
    t_done: float | None = None
    result: dict[str, Any] | None = None
    error: dict[str, str] | None = None
    #: Budget criterion that fired, if the run stopped on budget.
    stopped_by: str | None = None
    #: True when the result came straight from the content cache.
    cached: bool = False
    #: True when the result covers fewer steps than requested.
    partial: bool = False
    #: ``{"path": ..., "step": ...}`` of the resume point, if one exists.
    checkpoint: dict[str, Any] | None = None
    #: Step the run resumed from, for resumed jobs.
    resumed_from_step: int | None = None
    #: Duplicate submissions fanned in onto this execution.
    subscribers: int = 0
    #: Latest per-step progress state (streamed to watchers).
    progress: dict[str, Any] = field(default_factory=dict)
    #: Set by cancel; the runner checks it between steps.
    cancel_event: threading.Event = field(default_factory=threading.Event)

    def transition(self, new: str) -> None:
        JobState.check(self.state, new)
        self.state = new

    @property
    def latency(self) -> float | None:
        """Submit-to-terminal seconds (the ledger's p50/p99 material)."""
        if self.t_done is None:
            return None
        return self.t_done - self.t_submit

    def snapshot(self) -> dict[str, Any]:
        """The wire form of ``status`` (everything but the result body)."""
        out: dict[str, Any] = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "tenant": self.request.tenant,
            "problem": self.request.problem,
            "priority": self.request.priority,
            "submitted_at": self.submitted_at,
            "cached": self.cached,
            "partial": self.partial,
            "subscribers": self.subscribers,
        }
        if self.started_at is not None:
            out["started_at"] = self.started_at
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        if self.latency is not None:
            out["latency"] = self.latency
        if self.stopped_by is not None:
            out["stopped_by"] = self.stopped_by
        if self.checkpoint is not None:
            out["checkpoint"] = dict(self.checkpoint)
        if self.resumed_from_step is not None:
            out["resumed_from_step"] = self.resumed_from_step
        if self.error is not None:
            out["error"] = dict(self.error)
        if self.progress:
            out["progress"] = dict(self.progress)
        return out


# ----------------------------------------------------------------------
# The unit of work a pool thread runs
# ----------------------------------------------------------------------
def execute_serve_job(
    payload: Mapping[str, Any],
    cancel: threading.Event | None = None,
    budget: StoppingCriterion | None = None,
    progress: Callable[[dict[str, Any]], None] | None = None,
) -> dict[str, Any]:
    """Run one serve job payload; always returns an outcome record.

    ``payload`` carries ``name``, ``key``, ``problem``, ``config`` (the
    canonical request config), ``workdir`` (this job's scratch
    directory, owning its checkpoints) and optionally ``resume_path`` /
    ``resume_step`` naming the checkpoint to continue from.

    Outcome statuses:

    ``ok``
        Full step budget completed; ``result`` is cacheable.
    ``stopped``
        A budget criterion fired between steps; ``result`` is the
        partial payload, ``stopped_by`` names the criterion, and
        ``checkpoint`` is the resume point.  Never cached.
    ``cancelled``
        The cancel event fired between steps; same partial shape.
    ``failed``
        Anything raised; ``error`` carries the condensed traceback.

    Like the campaign worker, this function never raises: containment
    is the contract that keeps one bad job from taking a worker down.
    """
    outcome: dict[str, Any] = {
        "name": payload.get("name", "?"),
        "key": payload.get("key", ""),
        "status": "failed",
        "result": None,
        "error": None,
        "stopped_by": None,
        "partial": False,
        "checkpoint": None,
        "resumed_from_step": None,
    }
    if cancel is not None and cancel.is_set():
        outcome["status"] = "cancelled"
        return outcome
    try:
        outcome.update(_run_serve_job(payload, cancel, budget, progress))
    except Exception as exc:  # noqa: BLE001 - containment is the contract
        tail = traceback.format_exc(limit=3).strip().splitlines()[-1]
        outcome["error"] = f"{type(exc).__name__}: {exc} ({tail})"
    return outcome


def _run_serve_job(
    payload: Mapping[str, Any],
    cancel: threading.Event | None,
    budget: StoppingCriterion | None,
    progress: Callable[[dict[str, Any]], None] | None,
) -> dict[str, Any]:
    from repro.v2d.job import run_job, summarize_reports
    from repro.v2d.simulation import RunInterrupted, Simulation

    problem_name = payload.get("problem", "gaussian-pulse")
    exec_cfg = dict(payload["config"])
    workdir = payload.get("workdir")
    if workdir:
        # Serve owns checkpoint placement: every job checkpoints into
        # its own scratch directory so interrupts always have a resume
        # point, whatever the submitted config said about I/O.
        Path(workdir).mkdir(parents=True, exist_ok=True)
        exec_cfg["checkpoint_path"] = str(Path(workdir) / "ck")
    cfg = V2DConfig.from_dict(exec_cfg)

    if cfg.nranks != 1:
        # Decomposed jobs run whole through the campaign-style path:
        # the SPMD substrate owns its ranks' loops, so budgets and
        # mid-run cancel don't reach between their steps (documented
        # serve limitation; cancel still works while queued).
        result = run_job(cfg, problem=problem_name)
        return {"status": "ok", "result": result}

    sim = Simulation(cfg, get_problem(problem_name))
    nsteps = cfg.nsteps
    resume_path = payload.get("resume_path")
    resumed_from = None
    if resume_path:
        sim.restart_from(str(resume_path))
        resumed_from = int(payload.get("resume_step", sim.integrator.step_count))
        nsteps = max(cfg.nsteps - resumed_from, 0)
    if budget is not None:
        budget.clear()

    base_step = sim.integrator.step_count
    totals = {"iterations": 0}

    def step_callback(s: Simulation, report) -> None:
        totals["iterations"] += report.iterations
        state = {
            "step": s.integrator.step_count - base_step,
            "total_step": s.integrator.step_count,
            "time": s.time,
            "iterations": totals["iterations"],
            "energy": s.integrator.total_energy(),
        }
        if progress is not None:
            progress(dict(state))
        if cancel is not None and cancel.is_set():
            raise RunInterrupted("cancelled")
        if budget is not None and budget.stop(state):
            raise RunInterrupted(budget.reason() or "budget")

    report = sim.run(step_callback=step_callback, nsteps=nsteps)
    result = summarize_reports(cfg, problem_name, [report])
    out: dict[str, Any] = {"result": result, "resumed_from_step": resumed_from}
    if resumed_from is not None:
        result["resumed_from_step"] = resumed_from
    if report.interrupted is None:
        out["status"] = "ok"
        return out
    out["status"] = "cancelled" if report.interrupted == "cancelled" else "stopped"
    out["stopped_by"] = None if report.interrupted == "cancelled" else report.interrupted
    out["partial"] = True
    if sim.last_checkpoint is not None:
        path, step = sim.last_checkpoint
        out["checkpoint"] = {"path": path, "step": step}
    return out
