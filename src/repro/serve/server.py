"""The asyncio TCP front door: newline-delimited JSON over a socket.

Wire protocol (stdlib only, one JSON object per line, UTF-8):

    -> {"op": "submit", "problem": "...", "config": {...},
        "tenant": "...", "priority": 0, "budget": {...}, "resume": "j-..."}
    <- {"ok": true, "id": "j-000001", "state": "queued",
        "cached": false, "deduped": false, "key": "ab12..."}

    -> {"op": "status"|"result"|"cancel", "job": "j-000001", ...}
    <- {"ok": true, ...snapshot...}

    -> {"op": "list"|"stats"|"ping"|"shutdown"}
    <- {"ok": true, ...}

    -> {"op": "watch", "job": "j-000001"}
    <- {"ok": true, "event": {...}}         (repeated)
    <- {"ok": true, "end": true}

Every rejection is ``{"ok": false, "error": {"type", "message"}}``
where ``type`` is a stable code from the
:class:`~repro.serve.jobs.ServeError` hierarchy -- clients re-raise
the matching typed exception.  Requests on one connection are handled
in order; the engine behind them is shared across connections, so
dedup and quotas span every client of the process.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.monitor.log import get_logger
from repro.serve.jobs import InvalidRequest, JobRequest, ServeError
from repro.serve.queue import ServeEngine
from repro.serve.quota import TenantPolicy

_LOG = get_logger("serve.server")

__all__ = ["ServeConfig", "JobServer"]

#: Per-line size cap (requests and responses ride single lines).
MAX_LINE = 4 * 1024 * 1024


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs to bring a server up."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is on JobServer.port
    workers: int = 2
    cache_dir: str = ".repro-cache"
    workdir: str = ".repro-serve"
    max_queue: int = 256
    quota: TenantPolicy = field(default_factory=TenantPolicy)


class JobServer:
    """One process's serve front door over a :class:`ServeEngine`."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.engine = ServeEngine(
            workers=self.config.workers,
            cache_dir=self.config.cache_dir,
            workdir=self.config.workdir,
            max_queue=self.config.max_queue,
            quota=self.config.quota,
        )
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._shutdown: asyncio.Event | None = None
        self._graceful = True

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the worker pool."""
        self._shutdown = asyncio.Event()
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _LOG.info(
            "listening",
            extra={"fields": {"host": self.config.host, "port": self.port}},
        )

    async def serve_until_shutdown(self) -> None:
        """Serve until a client sends ``shutdown`` (or :meth:`stop`)."""
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.stop(graceful=self._graceful)

    async def stop(self, graceful: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.engine.stop(graceful=graceful)

    async def run(self) -> None:
        """start + serve_until_shutdown (the CLI entrypoint)."""
        await self.start()
        await self.serve_until_shutdown()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, _error(
                        InvalidRequest(f"request line over {MAX_LINE} bytes")
                    ))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = json.loads(line)
                except json.JSONDecodeError as exc:
                    await self._send(writer, _error(
                        InvalidRequest(f"request is not valid JSON: {exc}")
                    ))
                    continue
                if not isinstance(msg, dict):
                    await self._send(writer, _error(
                        InvalidRequest("request must be a JSON object")
                    ))
                    continue
                op = msg.get("op")
                if op == "watch":
                    if not await self._watch(writer, msg):
                        break
                    continue
                try:
                    resp = await self._dispatch(op, msg)
                except ServeError as exc:
                    resp = _error(exc)
                except asyncio.TimeoutError:
                    resp = {
                        "ok": False,
                        "error": {"type": "timeout", "message": "result wait timed out"},
                    }
                await self._send(writer, resp)
                if op == "shutdown" and resp.get("ok"):
                    assert self._shutdown is not None
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, op: Any, msg: dict[str, Any]) -> dict[str, Any]:
        engine = self.engine
        if op == "ping":
            return {"ok": True, "pong": True, "port": self.port}
        if op == "submit":
            request = JobRequest.from_wire(msg)
            out = await engine.submit(request)
            return {"ok": True, **out}
        if op == "status":
            return {"ok": True, **engine.status(_job_id(msg))}
        if op == "result":
            wait = bool(msg.get("wait", True))
            timeout = msg.get("timeout")
            out = await engine.result(
                _job_id(msg), wait=wait,
                timeout=None if timeout is None else float(timeout),
            )
            return {"ok": True, **out}
        if op == "cancel":
            out = await engine.cancel(_job_id(msg))
            return {"ok": True, **out}
        if op == "list":
            jobs = engine.list_jobs(
                tenant=msg.get("tenant"), state=msg.get("state")
            )
            return {"ok": True, "jobs": jobs}
        if op == "stats":
            return {"ok": True, **engine.stats()}
        if op == "metrics":
            # OpenMetrics text exposition of the process registry plus
            # the engine's structured stats; the payload any scraper
            # (and `repro top`) can parse without repro imports.
            from repro.monitor.telemetry import render_openmetrics
            from repro.monitor.trace import get_metrics

            return {
                "ok": True,
                "openmetrics": render_openmetrics(get_metrics()),
                "stats": engine.stats(),
            }
        if op == "health":
            return {"ok": True, **engine.health()}
        if op == "shutdown":
            self._graceful = bool(msg.get("graceful", True))
            return {"ok": True, "stopping": True, "graceful": self._graceful}
        raise InvalidRequest(f"unknown op {op!r}")

    async def _watch(
        self, writer: asyncio.StreamWriter, msg: dict[str, Any]
    ) -> bool:
        """Stream a job's events; returns False when the peer vanished."""
        assert self.engine.hub is not None
        try:
            job_id = _job_id(msg)
            self.engine.status(job_id)  # raises UnknownJob for bad ids
        except ServeError as exc:
            await self._send(writer, _error(exc))
            return True
        try:
            async for event in self.engine.hub.watch(job_id):
                await self._send(writer, {"ok": True, "event": event})
            await self._send(writer, {"ok": True, "end": True})
        except (ConnectionResetError, BrokenPipeError):
            return False
        return True

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()


def _job_id(msg: dict[str, Any]) -> str:
    job = msg.get("job")
    if not isinstance(job, str) or not job:
        raise InvalidRequest("missing 'job' (a job id string)")
    return job


def _error(exc: ServeError) -> dict[str, Any]:
    return {"ok": False, "error": exc.to_wire()}
