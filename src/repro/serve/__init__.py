"""Simulation-as-a-service: the repo's front door for heavy traffic.

The back half of a service already exists -- fused kernels, layered
fault recovery, a content-addressed result cache, tracing, a perf
ledger, a multi-process SPMD runtime.  ``repro.serve`` is the front
half: an asyncio TCP job API over the campaign execution path, the
shape async task-based runtimes (HPX-style futurized task graphs) give
this class of solver at scale.

* :mod:`repro.serve.stop` -- composable :class:`StoppingCriterion`
  budgets (MaxIter / MaxDuration / RelError, ``|``/``&`` combinators).
* :mod:`repro.serve.jobs` -- the job model: validated requests,
  lifecycle states, typed rejections, and the checkpoint-aware runner.
* :mod:`repro.serve.quota` -- per-tenant token buckets + active quotas.
* :mod:`repro.serve.queue` -- :class:`ServeEngine`: priority queue,
  bounded worker pool, in-flight dedup, cache short-circuit.
* :mod:`repro.serve.stream` -- per-job event fan-out for ``watch``.
* :mod:`repro.serve.server` -- the newline-delimited-JSON TCP layer.
* :mod:`repro.serve.client` -- the blocking client (CLI, tests, bench).
* :mod:`repro.serve.cli` -- ``repro serve`` / ``repro submit``.
"""

from repro.serve.client import RemoteError, ServeClient
from repro.serve.jobs import (
    InvalidRequest,
    Job,
    JobRequest,
    JobState,
    QueueFull,
    QuotaExceeded,
    RateLimited,
    ServeError,
    UnknownJob,
    execute_serve_job,
)
from repro.serve.queue import ServeEngine
from repro.serve.quota import QuotaManager, TenantPolicy, TokenBucket
from repro.serve.server import JobServer, ServeConfig
from repro.serve.stop import (
    AllOf,
    AnyOf,
    BudgetError,
    MaxDuration,
    MaxIter,
    RelError,
    StoppingCriterion,
    budget_from_dict,
    criterion_from_dict,
)
from repro.serve.stream import EventHub

__all__ = [
    "ServeEngine",
    "JobServer",
    "ServeConfig",
    "ServeClient",
    "RemoteError",
    "EventHub",
    "Job",
    "JobRequest",
    "JobState",
    "execute_serve_job",
    "ServeError",
    "InvalidRequest",
    "UnknownJob",
    "QuotaExceeded",
    "RateLimited",
    "QueueFull",
    "QuotaManager",
    "TenantPolicy",
    "TokenBucket",
    "StoppingCriterion",
    "MaxIter",
    "MaxDuration",
    "RelError",
    "AnyOf",
    "AllOf",
    "BudgetError",
    "budget_from_dict",
    "criterion_from_dict",
]
