"""``repro serve`` (the server) and ``repro submit`` (the client).

The server command owns one process-lifetime event loop; the client
command is a thin multiplexer over :class:`~repro.serve.client.
ServeClient`, covering the whole wire vocabulary so shell sessions and
CI smoke jobs never need a bespoke script:

    $ repro serve --port 7071 &
    $ repro submit --port 7071 --set nx1=32 --set nsteps=5 --wait
    $ repro submit --port 7071 --stats
    $ repro submit --port 7071 --shutdown
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any

__all__ = ["add_serve_parser", "add_submit_parser"]


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.quota import TenantPolicy
    from repro.serve.server import JobServer, ServeConfig

    cfg = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        workdir=args.workdir,
        max_queue=args.max_queue,
        quota=TenantPolicy(
            max_active=args.max_active, rate=args.rate, burst=args.burst
        ),
    )

    async def main() -> None:
        server = JobServer(cfg)
        await server.start()
        print(
            f"repro serve: listening on {cfg.host}:{server.port} "
            f"({cfg.workers} workers, cache {cfg.cache_dir})",
            flush=True,
        )
        await server.serve_until_shutdown()
        print("repro serve: shut down cleanly", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro serve: interrupted", file=sys.stderr)
        return 130
    return 0


def add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve", help="run the simulation-as-a-service job server"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7070,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent solver executions")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="content-addressed result cache (shared with "
                        "repro campaign)")
    p.add_argument("--workdir", default=".repro-serve",
                   help="scratch root for per-job checkpoints")
    p.add_argument("--max-queue", type=int, default=256,
                   help="queued-job capacity before queue-full rejections")
    p.add_argument("--max-active", type=int, default=4,
                   help="per-tenant active-job quota")
    p.add_argument("--rate", type=float, default=0.0,
                   help="per-tenant submissions/second (0 = unlimited)")
    p.add_argument("--burst", type=int, default=8,
                   help="per-tenant token-bucket burst capacity")
    p.set_defaults(fn=cmd_serve)


# ----------------------------------------------------------------------
# repro submit
# ----------------------------------------------------------------------
def _parse_set(pairs: list[str]) -> dict[str, Any]:
    """``--set key=value`` pairs into a config dict (values are JSON
    when they parse as JSON, bare strings otherwise)."""
    out: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad --set entry {pair!r}; expected key=value")
        try:
            out[key] = json.loads(value)
        except json.JSONDecodeError:
            out[key] = value
    return out


def _budget_from_args(args: argparse.Namespace) -> dict[str, Any] | None:
    budget: dict[str, Any] = {}
    if args.max_steps is not None:
        budget["max_steps"] = args.max_steps
    if args.max_seconds is not None:
        budget["max_seconds"] = args.max_seconds
    if args.rel_error is not None:
        budget["rel_error"] = args.rel_error
    return budget or None


def _emit(data: Any, as_json: bool) -> None:
    if as_json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return
    if isinstance(data, list):
        for item in data:
            _emit(item, False)
        return
    if isinstance(data, dict):
        keys = [k for k in ("id", "state", "cached", "deduped", "tenant",
                            "problem", "stopped_by", "latency") if k in data]
        line = " ".join(f"{k}={data[k]}" for k in keys)
        print(line if line else json.dumps(data, sort_keys=True))


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient
    from repro.serve.jobs import ServeError

    try:
        client = ServeClient(host=args.host, port=args.port, timeout=args.timeout)
    except OSError as exc:
        print(f"repro submit: cannot reach {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 2
    try:
        with client:
            return _run_client_op(client, args)
    except ServeError as exc:
        print(f"repro submit: rejected [{exc.code}]: {exc}", file=sys.stderr)
        return 3
    except (ConnectionError, OSError) as exc:
        print(f"repro submit: connection lost ({exc})", file=sys.stderr)
        return 2


def _run_client_op(client, args: argparse.Namespace) -> int:
    if args.status:
        _emit(client.status(args.status), args.json)
        return 0
    if args.result:
        out = client.result(args.result, timeout=args.timeout)
        _emit(out, args.json)
        return 0 if out.get("state") == "done" else 1
    if args.cancel:
        _emit(client.cancel(args.cancel), args.json)
        return 0
    if args.list:
        _emit(client.list(tenant=args.tenant), args.json)
        return 0
    if args.stats:
        _emit(client.stats(), True)  # stats are only useful in full
        return 0
    if args.metrics:
        # Raw OpenMetrics text on stdout: pipe straight into a scraper
        # or a file; `repro top` renders the same payload nicely.
        sys.stdout.write(client.metrics()["openmetrics"])
        return 0
    if args.health:
        _emit(client.health(), True)
        return 0
    if args.shutdown:
        _emit(client.shutdown(graceful=not args.hard), args.json)
        return 0

    # Default op: submit (optionally wait/watch).
    sub = client.submit(
        problem=args.problem,
        config=_parse_set(args.set),
        tenant=args.tenant,
        priority=args.priority,
        budget=_budget_from_args(args),
        resume=args.resume,
    )
    _emit(sub, args.json)
    job = sub["id"]
    if args.watch:
        for event in client.watch(job):
            print(json.dumps(event, sort_keys=True), flush=True)
    if args.wait or args.watch:
        out = client.result(job, timeout=args.timeout)
        _emit(out, args.json)
        if not args.json and out.get("result"):
            r = out["result"]
            print(f"  steps={r.get('steps')} iterations={r.get('iterations')} "
                  f"final_energy={r.get('final_energy'):.6g}")
        return 0 if out.get("state") == "done" else 1
    return 0


def add_submit_parser(sub) -> None:
    p = sub.add_parser(
        "submit", help="submit and manage jobs on a running serve instance"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7070)
    p.add_argument("--timeout", type=float, default=300.0,
                   help="socket/result-wait timeout in seconds")
    p.add_argument("--json", action="store_true",
                   help="print full JSON responses")

    g = p.add_argument_group("submit")
    g.add_argument("--problem", default="gaussian-pulse")
    g.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                   help="config override (repeatable), e.g. --set nx1=32")
    g.add_argument("--tenant", default=None)
    g.add_argument("--priority", type=int, default=None)
    g.add_argument("--max-steps", type=int, default=None,
                   help="budget: stop after this many steps")
    g.add_argument("--max-seconds", type=float, default=None,
                   help="budget: stop after this much wall clock")
    g.add_argument("--rel-error", type=float, default=None,
                   help="budget: stop when energy settles to this rel. change")
    g.add_argument("--resume", metavar="JOB", default=None,
                   help="resume from this job's last checkpoint")
    g.add_argument("--wait", action="store_true",
                   help="block until the job finishes and print the result")
    g.add_argument("--watch", action="store_true",
                   help="stream progress events, then print the result")

    g = p.add_argument_group("other ops (mutually exclusive with submit)")
    g.add_argument("--status", metavar="JOB", default=None)
    g.add_argument("--result", metavar="JOB", default=None)
    g.add_argument("--cancel", metavar="JOB", default=None)
    g.add_argument("--list", action="store_true")
    g.add_argument("--stats", action="store_true")
    g.add_argument("--metrics", action="store_true",
                   help="print the server's OpenMetrics exposition text")
    g.add_argument("--health", action="store_true",
                   help="print the server's liveness summary as JSON")
    g.add_argument("--shutdown", action="store_true")
    g.add_argument("--hard", action="store_true",
                   help="with --shutdown: cancel running jobs instead of "
                        "draining")
    p.set_defaults(fn=cmd_submit)
