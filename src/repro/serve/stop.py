"""Composable stopping criteria: the budget a served job runs under.

Modeled on pyxu's ``opt/stop.py`` pattern (MaxIter / MaxDuration /
RelError objects handed to ``Solver.fit``): a criterion is a small
stateful object the run loop consults *between* checkpoints with a
plain state mapping, and criteria compose with ``|`` (stop when any
fires) and ``&`` (stop when all fire).  The serve subsystem attaches
one to every tenant submission, so a job is wall-clock-budgeted
(:class:`MaxDuration`), step-budgeted (:class:`MaxIter`), or stops
itself once the monitored quantity settles (:class:`RelError`) --
and because the run loop checkpoints before honouring a stop, every
budget expiry leaves a resume point behind.

The state mapping the serve runner supplies between steps:

====================  =================================================
``step``              steps completed in this run segment
``total_step``        the integrator's absolute step counter
``time``              simulation time
``iterations``        cumulative BiCGSTAB iterations
``energy``            current total radiation energy
====================  =================================================

Criteria serialize to plain JSON (:meth:`StoppingCriterion.to_dict` /
:func:`criterion_from_dict`) so budgets cross the wire protocol; the
shorthand mapping ``{"max_steps": 50, "max_seconds": 2.0,
"rel_error": 1e-6}`` is also accepted (:func:`budget_from_dict`) and
expands to the ``|``-composition of the named criteria.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Any, Mapping

__all__ = [
    "StoppingCriterion",
    "MaxIter",
    "MaxDuration",
    "RelError",
    "AnyOf",
    "AllOf",
    "criterion_from_dict",
    "budget_from_dict",
    "BudgetError",
]


class BudgetError(ValueError):
    """A budget mapping does not describe a valid stopping criterion."""


class StoppingCriterion(ABC):
    """One stop condition consulted between run-loop checkpoints.

    Subclasses implement :meth:`stop` (pure read of the state mapping
    plus the criterion's own memory) and :meth:`info`; they record why
    they fired so :meth:`reason` can label the stopped job.
    """

    def __init__(self) -> None:
        self._reason: str | None = None

    # ------------------------------------------------------------------
    @abstractmethod
    def stop(self, state: Mapping[str, Any]) -> bool:
        """True when the run should stop at this checkpoint."""

    @abstractmethod
    def info(self) -> dict[str, Any]:
        """Progress snapshot (for status endpoints and stream events)."""

    def reason(self) -> str | None:
        """Why the criterion fired (None while it has not)."""
        return self._reason

    def clear(self) -> None:
        """Reset internal memory so the criterion can budget a new run."""
        self._reason = None

    # -- resume accounting ---------------------------------------------
    # Wall-clock budgets must survive cancel -> resume: a job that ran
    # 4 s of a 5 s budget gets 1 s after resuming, not a fresh 5 s.
    # Criteria with nothing to carry inherit these no-ops.
    def carry_elapsed(self) -> float:
        """Budget already consumed, to persist into a checkpoint."""
        return 0.0

    def preload_elapsed(self, seconds: float) -> None:
        """Charge budget consumed by earlier run segments (resume)."""

    @abstractmethod
    def to_dict(self) -> dict[str, Any]:
        """JSON-shaped form accepted by :func:`criterion_from_dict`."""

    # ------------------------------------------------------------------
    def __or__(self, other: "StoppingCriterion") -> "AnyOf":
        return AnyOf([self, other])

    def __and__(self, other: "StoppingCriterion") -> "AllOf":
        return AllOf([self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(
            f"{k}={v!r}" for k, v in self.to_dict().items() if k != "kind"
        )
        return f"{type(self).__name__}({body})"


class MaxIter(StoppingCriterion):
    """Stop after ``n`` completed steps of the current run segment.

    Falls back to counting its own :meth:`stop` calls when the state
    mapping carries no ``step`` entry, so the criterion also budgets
    loops that never report a step counter (pyxu's MaxIter semantics).
    """

    def __init__(self, n: int) -> None:
        super().__init__()
        if int(n) < 1:
            raise BudgetError(f"MaxIter needs n >= 1, got {n!r}")
        self.n = int(n)
        self._calls = 0

    def stop(self, state: Mapping[str, Any]) -> bool:
        self._calls += 1
        done = int(state.get("step", self._calls))
        if done >= self.n:
            self._reason = f"MaxIter({self.n})"
            return True
        return False

    def info(self) -> dict[str, Any]:
        return {"criterion": "MaxIter", "n": self.n, "seen": self._calls}

    def clear(self) -> None:
        super().clear()
        self._calls = 0

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "max_iter", "n": self.n}


class MaxDuration(StoppingCriterion):
    """Stop once ``seconds`` of wall clock elapse from the first check.

    The clock starts on the first :meth:`stop` call (not construction),
    so queue wait does not consume the execution budget.  Time consumed
    by earlier run segments (:meth:`preload_elapsed`, fed from the
    checkpoint on resume) counts against the same budget -- a
    cancel -> resume loop cannot mint fresh wall clock.
    """

    def __init__(self, seconds: float) -> None:
        super().__init__()
        if float(seconds) <= 0:
            raise BudgetError(f"MaxDuration needs seconds > 0, got {seconds!r}")
        self.seconds = float(seconds)
        self._t0: float | None = None
        self._consumed = 0.0

    def stop(self, state: Mapping[str, Any]) -> bool:
        now = time.monotonic()
        if self._t0 is None:
            self._t0 = now
        if self._consumed + (now - self._t0) >= self.seconds:
            self._reason = f"MaxDuration({self.seconds:g}s)"
            return True
        return False

    def elapsed(self) -> float:
        live = 0.0 if self._t0 is None else time.monotonic() - self._t0
        return self._consumed + live

    def carry_elapsed(self) -> float:
        return self.elapsed()

    def preload_elapsed(self, seconds: float) -> None:
        self._consumed = max(0.0, float(seconds))
        self._t0 = None

    def info(self) -> dict[str, Any]:
        return {
            "criterion": "MaxDuration",
            "seconds": self.seconds,
            "elapsed": self.elapsed(),
        }

    def clear(self) -> None:
        # Resets the live clock only: ``_consumed`` is resume state
        # preloaded before the runner's pre-run clear(), and wiping it
        # here would hand resumed jobs a fresh budget again.
        super().clear()
        self._t0 = None

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "max_duration", "seconds": self.seconds}


class RelError(StoppingCriterion):
    """Stop when the monitored variable's relative change settles.

    Watches ``state[var]`` (default ``energy``) across consecutive
    checks; once ``|x_k - x_{k-1}| / max(|x_k|, eps)`` stays below
    ``eps`` for ``patience`` consecutive checks the run is declared
    converged.  A missing or non-finite variable never triggers.
    """

    def __init__(self, eps: float, var: str = "energy", patience: int = 1) -> None:
        super().__init__()
        if not (float(eps) > 0):
            raise BudgetError(f"RelError needs eps > 0, got {eps!r}")
        if int(patience) < 1:
            raise BudgetError(f"RelError needs patience >= 1, got {patience!r}")
        self.eps = float(eps)
        self.var = str(var)
        self.patience = int(patience)
        self._prev: float | None = None
        self._settled = 0
        self._last_rel: float | None = None

    def stop(self, state: Mapping[str, Any]) -> bool:
        value = state.get(self.var)
        if value is None:
            return False
        x = float(value)
        if x != x:  # NaN never converges
            self._prev, self._settled = None, 0
            return False
        if self._prev is not None:
            rel = abs(x - self._prev) / max(abs(x), self.eps)
            self._last_rel = rel
            self._settled = self._settled + 1 if rel < self.eps else 0
            if self._settled >= self.patience:
                self._reason = f"RelError({self.var}<{self.eps:g})"
                self._prev = x
                return True
        self._prev = x
        return False

    def info(self) -> dict[str, Any]:
        return {
            "criterion": "RelError",
            "var": self.var,
            "eps": self.eps,
            "rel": self._last_rel,
            "settled": self._settled,
        }

    def clear(self) -> None:
        super().clear()
        self._prev, self._settled, self._last_rel = None, 0, None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "rel_error",
            "eps": self.eps,
            "var": self.var,
            "patience": self.patience,
        }


class _Composite(StoppingCriterion):
    """Shared mechanics of the ``|`` / ``&`` combinators."""

    _kind = ""
    _joiner = ""

    def __init__(self, of: list[StoppingCriterion]) -> None:
        super().__init__()
        flat: list[StoppingCriterion] = []
        for c in of:
            # Same-type composites flatten so a | b | c stays one level.
            if type(c) is type(self):
                flat.extend(c.of)  # type: ignore[attr-defined]
            else:
                flat.append(c)
        if not flat:
            raise BudgetError(f"{type(self).__name__} needs at least one criterion")
        self.of = flat

    def info(self) -> dict[str, Any]:
        return {"criterion": type(self).__name__, "of": [c.info() for c in self.of]}

    def clear(self) -> None:
        super().clear()
        for c in self.of:
            c.clear()

    def carry_elapsed(self) -> float:
        # One scalar crosses the checkpoint, so carry the worst case;
        # composites hold at most one wall-clock member in practice.
        return max((c.carry_elapsed() for c in self.of), default=0.0)

    def preload_elapsed(self, seconds: float) -> None:
        for c in self.of:
            c.preload_elapsed(seconds)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self._kind, "of": [c.to_dict() for c in self.of]}


class AnyOf(_Composite):
    """Fires when any member fires (the ``|`` combinator).

    Every member is polled on every check even after one fires, so
    stateful members (MaxDuration's clock, RelError's history) stay
    warm; the recorded reason is the first member that fired.
    """

    _kind = "any"

    def stop(self, state: Mapping[str, Any]) -> bool:
        fired = [c for c in self.of if c.stop(state)]
        if fired:
            self._reason = fired[0].reason()
            return True
        return False


class AllOf(_Composite):
    """Fires only when every member fires on the same check (``&``)."""

    _kind = "all"

    def stop(self, state: Mapping[str, Any]) -> bool:
        fired = [c.stop(state) for c in self.of]
        if all(fired):
            self._reason = " & ".join(
                str(c.reason()) for c in self.of if c.reason()
            )
            return True
        return False


# ----------------------------------------------------------------------
# Wire forms
# ----------------------------------------------------------------------
_KINDS = {
    "max_iter": lambda d: MaxIter(d["n"]),
    "max_duration": lambda d: MaxDuration(d["seconds"]),
    "rel_error": lambda d: RelError(
        d["eps"], var=d.get("var", "energy"), patience=d.get("patience", 1)
    ),
    "any": lambda d: AnyOf([criterion_from_dict(c) for c in d["of"]]),
    "all": lambda d: AllOf([criterion_from_dict(c) for c in d["of"]]),
}

#: Shorthand budget keys (``budget_from_dict``) and their expansions.
_SHORTHAND = {
    "max_steps": lambda v: MaxIter(v),
    "max_seconds": lambda v: MaxDuration(v),
    "rel_error": lambda v: RelError(v),
}


def criterion_from_dict(data: Mapping[str, Any]) -> StoppingCriterion:
    """Rebuild a criterion from its :meth:`~StoppingCriterion.to_dict`."""
    if not isinstance(data, Mapping):
        raise BudgetError(f"criterion must be a mapping, got {type(data).__name__}")
    kind = data.get("kind")
    try:
        build = _KINDS[kind]
    except KeyError:
        raise BudgetError(
            f"unknown criterion kind {kind!r}; known: {sorted(_KINDS)}"
        ) from None
    try:
        return build(data)
    except KeyError as exc:
        raise BudgetError(f"criterion {kind!r} missing field {exc}") from None


def budget_from_dict(data: Mapping[str, Any] | None) -> StoppingCriterion | None:
    """A job budget from its wire form; ``None`` means unbudgeted.

    Accepts either the explicit ``{"kind": ...}`` tree of
    :func:`criterion_from_dict` or the flat shorthand
    ``{"max_steps": N, "max_seconds": S, "rel_error": E}`` (any
    subset), which composes with ``|`` -- the job stops when any
    budget line is exhausted.
    """
    if data is None:
        return None
    if not isinstance(data, Mapping):
        raise BudgetError(f"budget must be a mapping, got {type(data).__name__}")
    if not data:
        return None
    if "kind" in data:
        return criterion_from_dict(data)
    unknown = set(data) - set(_SHORTHAND)
    if unknown:
        raise BudgetError(
            f"unknown budget keys {sorted(unknown)}; "
            f"expected {sorted(_SHORTHAND)} or an explicit 'kind' tree"
        )
    parts = [_SHORTHAND[key](value) for key, value in sorted(data.items())]
    return parts[0] if len(parts) == 1 else AnyOf(parts)
