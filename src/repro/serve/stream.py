"""Progress streaming: fan job events out to watching clients.

Worker threads produce events (state changes, per-step progress,
tracer-style instants); asyncio connections consume them.  The
:class:`EventHub` bridges the two worlds: producers call
:meth:`EventHub.publish_threadsafe` from any thread (it hops onto the
event loop via ``call_soon_threadsafe``), subscribers get a private
bounded :class:`asyncio.Queue` plus a replay of the job's recent
history so a watcher attached mid-run still sees how the run got here.

Events are plain dicts shaped like the tracer's instant events --
``{"ev": ..., "job": ..., "ts": ..., **payload}`` -- and a terminal
state event (``done``/``failed``/``cancelled``) closes every
subscription on that job, which is how ``watch`` streams end.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, AsyncIterator

from repro.serve.jobs import JobState

__all__ = ["EventHub"]

#: Per-job replay ring: late watchers see at most this many past events.
HISTORY = 256

#: Per-subscriber buffer; a stalled client drops oldest-first rather
#: than back-pressuring the worker that produced the event.
SUBSCRIBER_BUFFER = 1024


class EventHub:
    """Per-job pub/sub between worker threads and asyncio watchers."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._history: dict[str, deque] = {}
        self._closed: set[str] = set()

    # ------------------------------------------------------------------
    # Producer side (any thread)
    # ------------------------------------------------------------------
    def publish_threadsafe(self, job_id: str, event: dict[str, Any]) -> None:
        """Queue ``event`` for ``job_id``'s watchers from any thread."""
        self._loop.call_soon_threadsafe(self.publish, job_id, event)

    def publish(self, job_id: str, event: dict[str, Any]) -> None:
        """Deliver ``event`` to watchers (event-loop thread only)."""
        event = {"job": job_id, "ts": time.time(), **event}
        history = self._history.setdefault(job_id, deque(maxlen=HISTORY))
        history.append(event)
        for queue in self._subscribers.get(job_id, []):
            if queue.full():  # drop oldest; a slow watcher never blocks
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - racy guard
                    pass
            queue.put_nowait(event)
        if event.get("ev") == "state" and event.get("state") in JobState.TERMINAL:
            self._closed.add(job_id)

    # ------------------------------------------------------------------
    # Consumer side (event loop)
    # ------------------------------------------------------------------
    async def watch(self, job_id: str) -> AsyncIterator[dict[str, Any]]:
        """Yield ``job_id``'s events: history replay, then live tail.

        The stream ends after a terminal state event; watching an
        already-finished job replays its retained history and returns.
        """
        queue: asyncio.Queue = asyncio.Queue(maxsize=SUBSCRIBER_BUFFER)
        replay = list(self._history.get(job_id, ()))
        finished = job_id in self._closed
        if not finished:
            self._subscribers.setdefault(job_id, []).append(queue)
        try:
            for event in replay:
                yield event
                if self._terminal(event):
                    return
            if finished:
                return
            while True:
                event = await queue.get()
                yield event
                if self._terminal(event):
                    return
        finally:
            subs = self._subscribers.get(job_id)
            if subs is not None and queue in subs:
                subs.remove(queue)
                if not subs:
                    del self._subscribers[job_id]

    @staticmethod
    def _terminal(event: dict[str, Any]) -> bool:
        return event.get("ev") == "state" and event.get("state") in JobState.TERMINAL

    # ------------------------------------------------------------------
    def forget(self, job_id: str) -> None:
        """Drop a finished job's history (retention hygiene)."""
        self._history.pop(job_id, None)
        self._closed.discard(job_id)
