"""The serve engine: priority queue, worker pool, dedup, lifecycle.

:class:`ServeEngine` is the server's core, independent of any wire
protocol (the TCP layer in :mod:`repro.serve.server` is a thin adapter
over it, and tests drive it directly).  One engine owns:

* the **priority queue** -- a heap of ``(-priority, seq)`` so higher
  priority wins and FIFO order breaks ties, with lazy removal for
  jobs cancelled while queued;
* the **worker pool** -- N asyncio worker tasks, each running jobs on
  a thread pool via ``run_in_executor`` so the event loop stays
  responsive while a solve grinds;
* the **dedup index** -- in-flight jobs by content key: a duplicate
  submission fans in as a subscriber on the primary execution instead
  of queueing a second solve;
* the **result cache** -- the campaign's ``.repro-cache`` store; a hit
  completes the job at submit time without touching the queue;
* **admission control** -- :class:`~repro.serve.quota.QuotaManager`:
  every request pays a rate token, but only cold executions take an
  active-job slot (cache hits and dedup fan-ins consume no worker, so
  they are admitted even when the tenant's slots are all busy).

Everything except the executor threads runs on the event loop, so the
engine needs no locks of its own; worker threads talk back only
through ``call_soon_threadsafe`` (via the
:class:`~repro.serve.stream.EventHub`) and the job's cancel event.
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.campaign.cache import ResultCache
from repro.monitor.log import get_logger
from repro.monitor.telemetry import LATENCY_BUCKETS, Histogram
from repro.monitor.trace import get_metrics
from repro.serve.jobs import (
    InvalidRequest,
    Job,
    JobRequest,
    JobState,
    QueueFull,
    ServeError,
    UnknownJob,
    execute_serve_job,
)
from repro.serve.quota import QuotaManager, TenantPolicy
from repro.serve.stream import EventHub

__all__ = ["ServeEngine"]

_LOG = get_logger("serve.engine")

#: Monotonic total names tracked by the engine, mirrored 1:1 onto
#: ``repro.serve.<name>`` registry counters.
_TOTAL_NAMES = (
    "submitted", "executed", "completed", "failed", "cancelled",
    "stopped", "rejected", "dedup_inflight", "cache_hits",
)


class ServeEngine:
    """Queue + pool + dedup over the campaign execution path."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: str = ".repro-cache",
        workdir: str = ".repro-serve",
        max_queue: int = 256,
        quota: TenantPolicy | None = None,
    ) -> None:
        self.cache = ResultCache(cache_dir)
        self.workdir = Path(workdir)
        self.max_queue = int(max_queue)
        self.quota = QuotaManager(quota)
        self.nworkers = max(1, int(workers))

        self.jobs: dict[str, Job] = {}
        self._inflight: dict[str, str] = {}  # content key -> primary job id
        self._resume_info: dict[str, dict[str, Any]] = {}  # job id -> source
        self._heap: list[tuple[int, int, str]] = []
        self._seq = 0
        self._queued = 0
        self._stopping = False
        self._executed = 0

        # Telemetry: monotonic totals survive job-table views (stats()
        # used to be point-in-time only), the watermark records the
        # deepest the queue ever got, and per-engine histograms keep
        # quantiles isolated from other engines in the same process
        # (the global registry gets the same observations for the
        # OpenMetrics exposition).
        self._t_start = time.monotonic()
        self._queue_high_watermark = 0
        self._totals: dict[str, int] = {name: 0 for name in _TOTAL_NAMES}
        self._lat_hist = Histogram(LATENCY_BUCKETS)
        self._wait_hist = Histogram(LATENCY_BUCKETS)
        self._worker_heartbeats: dict[int, float] = {}
        self._worker_busy: dict[int, str | None] = {}

        # Bound to the running loop in start().
        self.hub: EventHub | None = None
        self._cond: asyncio.Condition | None = None
        self._done: dict[str, asyncio.Event] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._tasks: list[asyncio.Task] = []

    def _count(self, name: str) -> None:
        """Bump an engine total and its ``repro.serve.*`` mirror."""
        self._totals[name] = self._totals.get(name, 0) + 1
        get_metrics().inc(f"repro.serve.{name}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.hub = EventHub(loop)
        self._cond = asyncio.Condition()
        self._t_start = time.monotonic()
        self._executor = ThreadPoolExecutor(
            max_workers=self.nworkers, thread_name_prefix="serve-worker"
        )
        self._tasks = [
            asyncio.create_task(self._worker(i), name=f"serve-worker-{i}")
            for i in range(self.nworkers)
        ]
        self._worker_heartbeats = {i: time.monotonic() for i in range(self.nworkers)}
        _LOG.info(
            "engine started", extra={"fields": {"workers": self.nworkers}}
        )

    async def stop(self, graceful: bool = True) -> None:
        """Stop the engine: drain the queue (graceful) or cut running
        jobs loose via their cancel events (not graceful)."""
        assert self._cond is not None
        if not graceful:
            for job in self.jobs.values():
                if job.state == JobState.RUNNING:
                    job.cancel_event.set()
            async with self._cond:
                for _, _, job_id in self._heap:
                    job = self.jobs[job_id]
                    if job.state == JobState.QUEUED:
                        self._finish_queued_cancel(job)
                self._heap.clear()
                self._queued = 0
        async with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, request: JobRequest) -> dict[str, Any]:
        """Admit one request; returns ``{"id", "state", "cached", "deduped"}``.

        Raises a typed :class:`~repro.serve.jobs.ServeError` on
        rejection (quota, rate, queue capacity, invalid resume target).
        """
        assert self._cond is not None and self.hub is not None
        self._count("submitted")
        if self._stopping:
            self._count("rejected")
            raise QueueFull("server is shutting down")
        # Every request pays a rate token; only cold executions (below)
        # take an active-job slot, so cache hits and dedup fan-ins are
        # admitted even when the tenant's slots are all busy.
        try:
            self.quota.charge(request.tenant)
        except ServeError:
            self._count("rejected")
            raise

        resume_payload = None
        if request.resume is not None:
            try:
                resume_payload = self._resume_source(request.resume)
            except ServeError:
                self._count("rejected")
                raise

        key = request.dedup_key()

        if resume_payload is None:
            # Hot path 1: identical request already in flight -> fan in.
            # Checked before the cache: an in-flight key cannot have a
            # cache entry yet (results land only at finalize), and this
            # spares a disk stat per duplicate.
            primary_id = self._inflight.get(key)
            if primary_id is not None:
                primary = self.jobs[primary_id]
                primary.subscribers += 1
                self._count("dedup_inflight")
                return {
                    "id": primary.id, "key": key, "state": primary.state,
                    "cached": False, "deduped": True,
                }

            # Hot path 2: the cache already has this physics.
            cached = self.cache.get(key)
            if cached is not None:
                job = self._new_job(key, request)
                job.transition(JobState.DONE)
                job.cached = True
                job.result = cached
                job.finished_at = time.time()
                job.t_done = time.monotonic()
                self._record_done(job)
                self._count("cache_hits")
                self._publish_state(job)
                return {
                    "id": job.id, "key": key, "state": job.state,
                    "cached": True, "deduped": False,
                }

        # Cold path: a real execution must queue -- this is the point
        # where the tenant's active-job quota applies.
        try:
            self.quota.acquire_slot(request.tenant)
        except ServeError:
            self._count("rejected")
            raise
        if self._queued >= self.max_queue:
            self.quota.release(request.tenant)
            self._count("rejected")
            raise QueueFull(
                f"queue is at capacity ({self.max_queue} jobs); retry later"
            )
        job = self._new_job(key, request)
        if resume_payload is not None:
            # The consumed budget travels outside the worker payload:
            # it charges the criterion object here, at admission.
            carried = resume_payload.pop("budget_elapsed", 0.0)
            job.resumed_from_step = resume_payload["resume_step"]
            job.checkpoint = {
                "path": resume_payload["resume_path"],
                "step": resume_payload["resume_step"],
            }
            if carried > 0:
                # Keep the carry on the new job's checkpoint too, so a
                # chain resumed off a queued-then-cancelled job still
                # inherits the consumed clock.
                job.checkpoint["budget_elapsed"] = carried
                if request.budget is not None:
                    request.budget.preload_elapsed(carried)
            self._resume_info[job.id] = resume_payload
        else:
            # Resumed runs produce partial-provenance results, so they
            # never become the dedup primary for fresh submissions.
            self._inflight[key] = job.id
        async with self._cond:
            heapq.heappush(self._heap, (-request.priority, job.seq, job.id))
            self._queued += 1
            if self._queued > self._queue_high_watermark:
                self._queue_high_watermark = self._queued
            self._cond.notify()
        self._publish_state(job)
        return {
            "id": job.id, "key": key, "state": job.state,
            "cached": False, "deduped": False,
        }

    def _new_job(self, key: str, request: JobRequest) -> Job:
        self._seq += 1
        job = Job(id=f"j-{self._seq:06d}", key=key, request=request, seq=self._seq)
        self.jobs[job.id] = job
        self._done[job.id] = asyncio.Event()
        return job

    def _resume_source(self, job_id: str) -> dict[str, Any]:
        prior = self.jobs.get(job_id)
        if prior is None:
            raise UnknownJob(f"cannot resume {job_id!r}: no such job")
        if prior.checkpoint is None:
            raise InvalidRequest(
                f"cannot resume {job_id!r}: it left no checkpoint "
                f"(state {prior.state!r})"
            )
        return {
            "resume_path": prior.checkpoint["path"],
            "resume_step": int(prior.checkpoint["step"]),
            # Wall-clock budget the prior segments already consumed;
            # preloaded into the new request's budget so cancel ->
            # resume loops cannot mint fresh MaxDuration clock.
            "budget_elapsed": float(prior.checkpoint.get("budget_elapsed", 0.0)),
        }

    # ------------------------------------------------------------------
    # Worker tasks
    # ------------------------------------------------------------------
    async def _worker(self, wid: int) -> None:
        assert self._cond is not None
        while True:
            self._worker_heartbeats[wid] = time.monotonic()
            async with self._cond:
                while True:
                    job = self._pop_runnable()
                    if job is not None:
                        break
                    if self._stopping:
                        return
                    await self._cond.wait()
            await self._run_job(job, wid)

    def worker_heartbeat_ages(self) -> dict[int, float]:
        """Per-worker heartbeat ages, seconds.

        A worker grinding a job is stamped by every progress callback,
        so its age measures time since the solve last reported a step.
        An idle worker parked on the queue condition reports age 0: it
        is healthy by definition unless the event loop itself is wedged
        -- and a wedged loop cannot answer ``health`` at all.
        """
        now = time.monotonic()
        ages: dict[int, float] = {}
        for wid in range(self.nworkers):
            if self._worker_busy.get(wid) is None:
                ages[wid] = 0.0
            else:
                ages[wid] = now - self._worker_heartbeats.get(wid, now)
        return ages

    def _pop_runnable(self) -> Job | None:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            self._queued -= 1
            job = self.jobs[job_id]
            if job.state == JobState.QUEUED:  # skip lazily-cancelled entries
                return job
        return None

    async def _run_job(self, job: Job, wid: int = 0) -> None:
        assert self.hub is not None and self._executor is not None
        loop = asyncio.get_running_loop()
        job.transition(JobState.RUNNING)
        job.started_at = time.time()
        job.t_started = time.monotonic()
        wait_s = job.t_started - job.t_submit
        self._wait_hist.observe(wait_s)
        get_metrics().observe("repro.serve.queue_wait_seconds", wait_s)
        self._worker_busy[wid] = job.id
        self._worker_heartbeats[wid] = time.monotonic()
        self._publish_state(job)
        _LOG.debug(
            "job started",
            extra={"fields": {"job": job.id, "worker": wid, "wait_s": wait_s}},
        )

        hub = self.hub
        heartbeats = self._worker_heartbeats

        def progress(state: dict[str, Any]) -> None:
            heartbeats[wid] = time.monotonic()
            job.progress = state
            hub.publish_threadsafe(job.id, {"ev": "progress", **state})

        payload: dict[str, Any] = {
            "name": job.id,
            "key": job.key,
            "problem": job.request.problem,
            "config": job.request.config,
            "workdir": str(self.workdir / job.id),
        }
        resume = self._resume_info.get(job.id)
        if resume is not None:
            payload.update(resume)

        self._executed += 1
        self._count("executed")
        outcome = await loop.run_in_executor(
            self._executor,
            functools.partial(
                execute_serve_job,
                payload,
                cancel=job.cancel_event,
                budget=job.request.budget,
                progress=progress,
            ),
        )
        self._worker_busy[wid] = None
        self._worker_heartbeats[wid] = time.monotonic()
        self._finalize(job, outcome)
        _LOG.debug(
            "job finished",
            extra={"fields": {"job": job.id, "state": job.state}},
        )

    def _finalize(self, job: Job, outcome: dict[str, Any]) -> None:
        status = outcome.get("status", "failed")
        job.result = outcome.get("result")
        job.stopped_by = outcome.get("stopped_by")
        job.partial = bool(outcome.get("partial"))
        if outcome.get("checkpoint") is not None:
            job.checkpoint = outcome["checkpoint"]
            if job.request.budget is not None:
                # Persist total consumed wall clock (prior segments +
                # this one -- elapsed() already includes the preload)
                # so the next resume starts from the same budget line.
                carried = job.request.budget.carry_elapsed()
                if carried > 0:
                    job.checkpoint["budget_elapsed"] = carried
        if outcome.get("resumed_from_step") is not None:
            job.resumed_from_step = outcome["resumed_from_step"]

        if status == "ok":
            job.transition(JobState.DONE)
            self._count("completed")
            # Only full, from-scratch results enter the content cache:
            # partial and resumed payloads describe a different step
            # history than the key's canonical run.
            if job.resumed_from_step is None and not job.partial:
                self.cache.put(job.key, job.result)
        elif status == "stopped":
            job.transition(JobState.DONE)
            self._count("stopped")
        elif status == "cancelled":
            job.transition(JobState.CANCELLED)
            self._count("cancelled")
        else:
            job.transition(JobState.FAILED)
            job.error = {
                "type": "execution-failed",
                "message": str(outcome.get("error")),
            }
            self._count("failed")

        job.finished_at = time.time()
        job.t_done = time.monotonic()
        if self._inflight.get(job.key) == job.id:
            del self._inflight[job.key]
        self.quota.release(job.request.tenant)
        self._record_done(job)
        self._publish_state(job)

    def _finish_queued_cancel(self, job: Job) -> None:
        job.transition(JobState.CANCELLED)
        job.finished_at = time.time()
        job.t_done = time.monotonic()
        if self._inflight.get(job.key) == job.id:
            del self._inflight[job.key]
        self.quota.release(job.request.tenant)
        self._count("cancelled")
        self._record_done(job)
        self._publish_state(job)

    def _record_done(self, job: Job) -> None:
        if job.latency is not None:
            self._lat_hist.observe(job.latency)
            get_metrics().observe("repro.serve.latency_seconds", job.latency)
        self._done[job.id].set()

    def _publish_state(self, job: Job) -> None:
        if self.hub is not None:
            self.hub.publish(
                job.id,
                {"ev": "state", "state": job.state, "key": job.key},
            )

    # ------------------------------------------------------------------
    # Queries and control
    # ------------------------------------------------------------------
    def _get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(f"no such job: {job_id!r}") from None

    def status(self, job_id: str) -> dict[str, Any]:
        return self._get(job_id).snapshot()

    async def result(
        self, job_id: str, wait: bool = True, timeout: float | None = None
    ) -> dict[str, Any]:
        """The job's snapshot plus result body, optionally awaiting it."""
        job = self._get(job_id)
        if wait and job.state not in JobState.TERMINAL:
            waiter = self._done[job_id].wait()
            if timeout is not None:
                await asyncio.wait_for(waiter, timeout)
            else:
                await waiter
        out = job.snapshot()
        out["result"] = job.result
        return out

    async def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job: immediate while queued, between-steps while
        running (the runner checkpoints, so the job stays resumable)."""
        assert self._cond is not None
        job = self._get(job_id)
        if job.state == JobState.QUEUED:
            async with self._cond:
                if job.state == JobState.QUEUED:  # recheck under the lock
                    self._finish_queued_cancel(job)
        elif job.state == JobState.RUNNING:
            job.cancel_event.set()
        out = job.snapshot()
        out["cancelling"] = job.state == JobState.RUNNING
        return out

    def list_jobs(
        self, tenant: str | None = None, state: str | None = None
    ) -> list[dict[str, Any]]:
        out = []
        for job in self.jobs.values():
            if tenant is not None and job.request.tenant != tenant:
                continue
            if state is not None and job.state != state:
                continue
            out.append(job.snapshot())
        return out

    @staticmethod
    def _hist_stats(hist: Histogram) -> dict[str, Any]:
        if hist.total == 0:
            return {"count": 0, "p50": None, "p99": None, "max": None}
        return {
            "count": hist.total,
            "p50": hist.quantile(0.50),
            "p99": hist.quantile(0.99),
            "max": hist.max,
        }

    def stats(self) -> dict[str, Any]:
        by_state: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "jobs": by_state,
            "queued": self._queued,
            "executed": self._executed,
            "inflight_keys": len(self._inflight),
            "uptime_seconds": time.monotonic() - self._t_start,
            "queue_depth_high_watermark": self._queue_high_watermark,
            # Monotonic lifetime totals: unlike the `jobs` view (which
            # follows the job table) these never decrease, so scrapers
            # can rate() them.
            "totals": dict(self._totals),
            "cache": {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "puts": self.cache.stats.puts,
                "corrupt": self.cache.stats.corrupt,
            },
            "latency": self._hist_stats(self._lat_hist),
            "queue_wait": self._hist_stats(self._wait_hist),
            "quota": self.quota.snapshot(),
            "workers": self.nworkers,
        }

    def health(self) -> dict[str, Any]:
        """Liveness summary for the ``health`` wire op and ``repro top``."""
        by_state: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "status": "stopping" if self._stopping else "ok",
            "uptime_seconds": time.monotonic() - self._t_start,
            "queue_depth": self._queued,
            "queue_depth_high_watermark": self._queue_high_watermark,
            "workers": self.nworkers,
            "worker_heartbeat_age_seconds": {
                str(wid): age
                for wid, age in self.worker_heartbeat_ages().items()
            },
            "busy_workers": sum(
                1 for v in self._worker_busy.values() if v is not None
            ),
            "jobs": by_state,
        }
