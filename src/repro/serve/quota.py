"""Per-tenant admission control: active-job quotas + token buckets.

Two independent gates guard the front door, checked in this order on
every submission:

1. **Rate** -- a token bucket per tenant (``rate`` tokens/second,
   ``burst`` capacity).  Every submission spends one token, including
   ones that end up served from cache or deduped onto an in-flight
   run: the bucket prices *requests*, protecting the server itself.
2. **Concurrency** -- at most ``max_active`` queued-or-running jobs
   per tenant.  Cache hits and dedup fan-ins never hold a slot (they
   cost no worker), so a tenant's quota bounds the compute it can pin,
   not the questions it can ask.

Both rejections are typed (:class:`~repro.serve.jobs.RateLimited`,
:class:`~repro.serve.jobs.QuotaExceeded`) so clients can tell "slow
down" from "wait for your own jobs".  All state is in-process and
guarded by one lock: the serve subsystem is a single-node front door,
not a distributed limiter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.serve.jobs import QuotaExceeded, RateLimited

__all__ = ["TenantPolicy", "TokenBucket", "QuotaManager"]


@dataclass(frozen=True)
class TenantPolicy:
    """Admission limits applied to one tenant (or the default)."""

    #: Max queued-or-running jobs holding worker capacity.
    max_active: int = 4
    #: Sustained submissions per second (0 disables rate limiting).
    rate: float = 0.0
    #: Bucket capacity: how many submissions may burst at once.
    burst: int = 8


class TokenBucket:
    """The classic leaky-bucket-as-meter: refill at ``rate``, cap at
    ``burst``, spend one token per request."""

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()

    def try_take(self) -> bool:
        now = time.monotonic()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


class QuotaManager:
    """Tracks every tenant's bucket and active-slot count."""

    def __init__(self, default: TenantPolicy | None = None) -> None:
        self.default = default if default is not None else TenantPolicy()
        self._policies: dict[str, TenantPolicy] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._active: dict[str, int] = {}
        self._lock = threading.Lock()

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        with self._lock:
            self._policies[tenant] = policy
            self._buckets.pop(tenant, None)  # rebuild with the new limits

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self.default)

    # ------------------------------------------------------------------
    def charge(self, tenant: str) -> None:
        """Charge one submission against the tenant's rate limit.

        Every request pays a rate token -- including cache hits and
        dedup fan-ins, which are still server work -- so a tight
        client loop can't hammer the front door for free.
        """
        with self._lock:
            policy = self.policy_for(tenant)
            if policy.rate > 0:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = self._buckets[tenant] = TokenBucket(
                        policy.rate, policy.burst
                    )
                if not bucket.try_take():
                    raise RateLimited(
                        f"tenant {tenant!r} exceeded {policy.rate:g} submits/s "
                        f"(burst {policy.burst}); retry later"
                    )

    def acquire_slot(self, tenant: str) -> None:
        """Take one active-job slot; raises the typed rejection on refusal.

        Only jobs that will actually occupy the queue or a worker take
        a slot -- cache hits and dedup fan-ins never call this.  The
        caller must pair a successful acquire with :meth:`release`
        once the job reaches a terminal state.
        """
        with self._lock:
            policy = self.policy_for(tenant)
            active = self._active.get(tenant, 0)
            if active >= policy.max_active:
                raise QuotaExceeded(
                    f"tenant {tenant!r} has {active} active jobs "
                    f"(quota {policy.max_active}); wait for one to finish"
                )
            self._active[tenant] = active + 1

    def admit(self, tenant: str) -> None:
        """Charge the rate limit and take an active slot in one call."""
        self.charge(tenant)
        self.acquire_slot(tenant)

    def release(self, tenant: str) -> None:
        with self._lock:
            active = self._active.get(tenant, 0)
            if active > 1:
                self._active[tenant] = active - 1
            else:
                # Prune at zero: a long-lived server sees an unbounded
                # stream of ephemeral tenants, and keeping their dead
                # zero entries would grow ``_active`` (and every
                # ``snapshot()``) without bound.
                self._active.pop(tenant, None)

    def active(self, tenant: str) -> int:
        with self._lock:
            return self._active.get(tenant, 0)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "default": {
                    "max_active": self.default.max_active,
                    "rate": self.default.rate,
                    "burst": self.default.burst,
                },
                "active": dict(self._active),
            }
