"""Blocking client for the serve wire protocol.

A deliberately small synchronous client -- plain socket, line-buffered
JSON -- because everything that talks to the server from outside the
event loop (the ``repro submit`` CLI, tests, the latency benchmark)
is synchronous.  Typed server rejections are re-raised as the same
:class:`~repro.serve.jobs.ServeError` subclasses the server itself
uses, so ``except QuotaExceeded:`` works identically on both sides of
the wire.

    with ServeClient(port=port) as client:
        sub = client.submit(problem="gaussian-pulse",
                            config={"nx1": 32, "nsteps": 5})
        done = client.result(sub["id"])
        print(done["result"]["final_energy"])
"""

from __future__ import annotations

import json
import socket
from typing import Any, Iterator

from repro.serve.jobs import (
    InvalidRequest,
    QueueFull,
    QuotaExceeded,
    RateLimited,
    ServeError,
    UnknownJob,
)

__all__ = ["ServeClient", "RemoteError"]

#: error.type -> exception class; unknown codes raise RemoteError.
_ERROR_TYPES = {
    cls.code: cls
    for cls in (InvalidRequest, UnknownJob, QuotaExceeded, RateLimited, QueueFull)
}


class RemoteError(ServeError):
    """A server-side rejection with no dedicated client-side class."""

    code = "remote-error"


class ServeClient:
    """One connection to a job server; methods mirror the wire ops."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _send(self, message: dict[str, Any]) -> None:
        self._fh.write(json.dumps(message).encode() + b"\n")
        self._fh.flush()

    def _recv(self) -> dict[str, Any]:
        line = self._fh.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok", False):
            error = response.get("error") or {}
            cls = _ERROR_TYPES.get(error.get("type"), RemoteError)
            raise cls(error.get("message", "unspecified server error"))
        return response

    def _call(self, op: str, **params: Any) -> dict[str, Any]:
        self._send({"op": op, **{k: v for k, v in params.items() if v is not None}})
        return self._recv()

    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self._call("ping")

    def submit(
        self,
        problem: str = "gaussian-pulse",
        config: dict[str, Any] | None = None,
        tenant: str | None = None,
        priority: int | None = None,
        budget: dict[str, Any] | None = None,
        resume: str | None = None,
    ) -> dict[str, Any]:
        return self._call(
            "submit",
            problem=problem,
            config=config or {},
            tenant=tenant,
            priority=priority,
            budget=budget,
            resume=resume,
        )

    def status(self, job: str) -> dict[str, Any]:
        return self._call("status", job=job)

    def result(
        self, job: str, wait: bool = True, timeout: float | None = None
    ) -> dict[str, Any]:
        return self._call("result", job=job, wait=wait, timeout=timeout)

    def cancel(self, job: str) -> dict[str, Any]:
        return self._call("cancel", job=job)

    def list(
        self, tenant: str | None = None, state: str | None = None
    ) -> list[dict[str, Any]]:
        return self._call("list", tenant=tenant, state=state)["jobs"]

    def stats(self) -> dict[str, Any]:
        return self._call("stats")

    def metrics(self) -> dict[str, Any]:
        """OpenMetrics text (``"openmetrics"``) + structured ``"stats"``."""
        return self._call("metrics")

    def health(self) -> dict[str, Any]:
        """Liveness summary: status, uptime, queue depth, heartbeats."""
        return self._call("health")

    def shutdown(self, graceful: bool = True) -> dict[str, Any]:
        return self._call("shutdown", graceful=graceful)

    def watch(self, job: str) -> Iterator[dict[str, Any]]:
        """Yield the job's event stream until its terminal state."""
        self._send({"op": "watch", "job": job})
        while True:
            response = self._recv()
            if response.get("end"):
                return
            yield response["event"]
