"""Calibration of the compiler cost coefficients against Table I.

The cost model (see :mod:`repro.perfmodel.costmodel`) predicts the run
time of the paper's test problem as a sum of four structurally derived
terms::

    T(Np, NX1, NX2) = F                       (fixed / unparallelized)
                    + Z  * zones_local_max    (parallelizable compute)
                    + R  * Np        [Np>1]   (reduction latency, one
                                               synchronization per
                                               participant: tree-less
                                               small-message allreduce)
                    + R2 * Np^2      [Np>1]   (reduction congestion /
                                               flat-gather stacks whose
                                               root touches every rank
                                               while every rank waits)
                    + H  * halo_max  [Np>1]   (halo-exchange volume)

``zones_local_max`` and ``halo_max`` come from the actual
NPRX1 x NPRX2 tile decomposition (most-loaded rank governs).  The five
coefficients per compiler are fit to the paper's own Table I rows by
non-negative least squares; the resulting values are baked into
:mod:`repro.perfmodel.compilers` and re-derived by the test suite to
guard against drift.

Physical reading of the fitted coefficients:

* ``F`` -- per-run serial overhead (Amdahl term): I/O, setup, the
  unparallelized fraction of each step.
* ``Z`` -- seconds per zone for the whole 100-step run on one rank;
  the compiler-quality number (SVE vs not) lives here.  The fit gives
  Cray(no-opt)/Cray(opt) = 1.41 -- the whole-app SVE dilution.
* ``R``/``R2`` -- reduction fabric cost.  Fujitsu's MPI pairing fits a
  small *linear* term (good tree collectives); GNU's and Cray's
  stacks fit a *quadratic* term, which is why their times turn upward
  past ~25-40 processors while Fujitsu keeps scaling -- exactly the
  paper's >= 40-processor observation.
* ``H`` -- seconds per max-perimeter zone per run for halo traffic;
  the term that makes flatter topologies (NX2 > 1) faster at fixed
  Np, as in Table I.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import nnls

from repro.grid.decomposition import TileDecomposition
from repro.perfmodel.paper_data import (
    COMPILER_KEYS,
    PAPER_NX1,
    PAPER_NX2,
    PAPER_TABLE1,
    Table1Row,
)


def row_features(row: Table1Row, nx1: int = PAPER_NX1, nx2: int = PAPER_NX2) -> np.ndarray:
    """The five-term basis ``[1, zones_local_max, Np, Np^2, halo_max]``."""
    decomp = TileDecomposition(nx1=nx1, nx2=nx2, nprx1=row.nx1, nprx2=row.nx2)
    parallel = 1.0 if row.np_ > 1 else 0.0
    return np.array(
        [
            1.0,
            float(decomp.max_tile_zones()),
            parallel * row.np_,
            parallel * row.np_**2,
            parallel * decomp.max_halo_zones(),
        ]
    )


def fit_compiler(key: str) -> tuple[np.ndarray, float]:
    """Fit ``(F, Z, R, R2, H)`` for one compiler column.

    Returns the non-negative coefficient vector and the mean relative
    error of the fit over that compiler's published rows.
    """
    feats, times = [], []
    for row in PAPER_TABLE1:
        t = row.time(key)
        if t is None:
            continue
        feats.append(row_features(row))
        times.append(t)
    A = np.array(feats)
    b = np.array(times)
    # Weight rows by 1/t so small-time (large-Np) rows are fit in
    # relative terms, not drowned by the serial row.
    w = 1.0 / b
    coeffs, _ = nnls(A * w[:, None], b * w)
    pred = A @ coeffs
    rel = float(np.mean(np.abs(pred - b) / b))
    return coeffs, rel


def calibrate_all() -> dict[str, tuple[np.ndarray, float]]:
    """Fit every compiler column of Table I."""
    return {key: fit_compiler(key) for key in COMPILER_KEYS}


def calibration_report() -> str:
    """Human-readable summary of the fit quality."""
    lines = [
        "Table I calibration (T = F + Z*zones_local + R*Np + R2*Np^2 + H*halo_max)",
        f"{'compiler':<12} {'F (s)':>8} {'Z (us/zone)':>12} {'R (ms/rank)':>12} "
        f"{'R2 (ms/rank^2)':>15} {'H (ms/zone)':>12} {'mean rel err':>13}",
    ]
    for key, (c, rel) in calibrate_all().items():
        lines.append(
            f"{key:<12} {c[0]:>8.3f} {c[1] * 1e6:>12.3f} {c[2] * 1e3:>12.3f} "
            f"{c[3] * 1e3:>15.3f} {c[4] * 1e3:>12.3f} {100 * rel:>12.1f}%"
        )
    return "\n".join(lines)
