"""The paper's published measurements (ground truth for calibration).

Table I: wall seconds (``perf stat`` duration) of the 100-step,
200 x 100 x 2 Gaussian-pulse run, by compiler and process topology.
Blank Cray(no-opt) cells in the paper are ``None`` here.

Table II: CPU seconds of the five solver kernels in the stand-alone
driver (1000 equations, 100,000 repetitions), Cray compiler, with and
without SVE.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Compiler column keys used throughout the performance model.
GNU = "gnu"
FUJITSU = "fujitsu"
CRAY_OPT = "cray-opt"
CRAY_NOOPT = "cray-noopt"

COMPILER_KEYS = (GNU, FUJITSU, CRAY_OPT, CRAY_NOOPT)


@dataclass(frozen=True)
class Table1Row:
    """One (Np, NX1, NX2) row of Table I."""

    np_: int
    nx1: int
    nx2: int
    times: dict[str, float | None]

    def __post_init__(self) -> None:
        if self.nx1 * self.nx2 != self.np_:
            raise ValueError("NX1 * NX2 must equal Np")

    def time(self, compiler: str) -> float | None:
        return self.times.get(compiler)


def _row(np_, nx1, nx2, gnu, fujitsu, cray_opt, cray_noopt=None) -> Table1Row:
    return Table1Row(
        np_=np_, nx1=nx1, nx2=nx2,
        times={GNU: gnu, FUJITSU: fujitsu, CRAY_OPT: cray_opt, CRAY_NOOPT: cray_noopt},
    )


#: Table I exactly as published.
PAPER_TABLE1: tuple[Table1Row, ...] = (
    _row(1, 1, 1, 363.91, 252.31, 181.26, 262.57),
    _row(10, 10, 1, 43.85, 31.76, 24.20, 32.35),
    _row(20, 20, 1, 26.80, 19.79, 16.78, 20.66),
    _row(20, 10, 2, 25.74, 19.66, 15.73, 19.93),
    _row(20, 5, 4, 25.42, 18.85, 15.39, 19.79),
    _row(25, 25, 1, 24.62, 17.24, 15.65),
    _row(40, 40, 1, 25.30, 13.97, 19.12),
    _row(40, 20, 2, 22.88, 12.96, 17.37),
    _row(40, 10, 4, 21.91, 13.04, 17.16),
    _row(50, 50, 1, 30.10, 13.05, 25.56),
    _row(50, 25, 2, 29.26, 12.09, 24.07),
    _row(50, 10, 5, 27.55, 11.40, 23.51),
)

#: Table II: CPU seconds, No-SVE vs SVE (Cray compiler), and the ratio.
PAPER_TABLE2_TIMES: dict[str, tuple[float, float]] = {
    "MATVEC": (599.0, 96.0),
    "DPROD": (132.0, 24.3),
    "DAXPY": (206.0, 53.8),
    "DSCAL": (153.0, 47.7),
    "DDAXPY": (296.0, 65.0),
}

PAPER_TABLE2_RATIOS: dict[str, float] = {
    "MATVEC": 0.16,
    "DPROD": 0.18,
    "DAXPY": 0.26,
    "DSCAL": 0.31,
    "DDAXPY": 0.22,
}

#: Sec. II-E breakdown facts (seconds / fractions) used as targets.
PAPER_BREAKDOWN_SERIAL = {
    "total": 181.0,          # ~ Cray(opt) serial
    "matvec": 141.0,         # "approximately 141 seconds out of 181"
    "precond": 14.0,         # "preconditioning taking about 14 additional seconds"
    "bicgstab_site_fraction": (0.31, 0.33),  # each of 3 call sites
}

PAPER_BREAKDOWN_20PROC = {
    "topology": (5, 4),
    "total": 15.0,
    "matvec": 7.5,           # "approximately 7.5 seconds out of 15 ... at maximum"
    "precond": 0.8,
}

#: The paper's problem size.
PAPER_NX1, PAPER_NX2, PAPER_NCOMP, PAPER_NSTEPS = 200, 100, 2, 100
PAPER_SOLVES_PER_STEP = 3
