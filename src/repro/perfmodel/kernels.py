"""Kernel-level (Table II) time model.

The stand-alone driver's 1000-equation system is L1-resident
(5 bands + 3 vectors ~ 64 KB of streams touched per sweep, each vector
8 KB), so its kernels are *instruction-throughput* bound, not
HBM-bound -- which is exactly why they show the full SVE speedup while
the application (whose working set lives in L2/HBM) does not.

Model: each kernel costs ``cycles_per_element`` scalar, and
``cycles_per_element * ratio`` vectorized, where the per-kernel SVE
ratio bundles lane count (1/8 at 512-bit) against achievable issue
efficiency:

=========  ======  ==============================================
kernel     ratio   limiting effect
=========  ======  ==============================================
MATVEC     0.16    rich FMA mix vectorizes best (gathers amortize)
DPROD      0.18    reduction dependency chain costs a little
DAXPY      0.26    2 loads + 1 store per 2 flops: store-port bound
DSCAL      0.31    same port pressure, less FMA fusion
DDAXPY     0.22    3 loads + 1 store per 4 flops: better balance
=========  ======  ==============================================

The ratios are calibrated to the paper's Table II column; the scalar
``cycles_per_element`` are set so the modeled No-SVE seconds match the
published ones for the paper's driver parameters.  (The published
absolute seconds imply far more work per "repetition" than a literal
1000-element sweep at 1.8 GHz; the per-kernel ``work_factor`` absorbs
that under-specification and is documented in EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.machine import A64FX
from repro.perfmodel.paper_data import PAPER_TABLE2_RATIOS, PAPER_TABLE2_TIMES

#: Paper driver parameters (Sec. II-F).
DRIVER_N = 1000
DRIVER_REPS = 100_000

#: Scalar cycles per element implied by the published No-SVE seconds at
#: the nominal driver parameters (t * clock / (n * reps)).
_CLOCK = A64FX().clock_hz
SCALAR_CYCLES_PER_ELEMENT: dict[str, float] = {
    k: t_noopt * _CLOCK / (DRIVER_N * DRIVER_REPS)
    for k, (t_noopt, _t_sve) in PAPER_TABLE2_TIMES.items()
}


@dataclass(frozen=True)
class KernelTimeModel:
    """Predicts driver-kernel times under scalar vs SVE codegen."""

    machine: A64FX = field(default_factory=A64FX)
    ratios: dict[str, float] = field(default_factory=lambda: dict(PAPER_TABLE2_RATIOS))
    scalar_cpe: dict[str, float] = field(
        default_factory=lambda: dict(SCALAR_CYCLES_PER_ELEMENT)
    )

    def time(self, kernel: str, vectorized: bool, n: int = DRIVER_N,
             reps: int = DRIVER_REPS) -> float:
        """Predicted CPU seconds for ``reps`` sweeps of length ``n``."""
        if kernel not in self.scalar_cpe:
            raise KeyError(f"unknown kernel {kernel!r}")
        cpe = self.scalar_cpe[kernel]
        if vectorized:
            # lane scaling is folded into the calibrated ratio; rescale
            # it for non-512-bit VLA widths (ratio ~ 1/lanes).
            ratio = self.ratios[kernel] * (8.0 / self.machine.lanes)
            cpe = cpe * ratio
        return reps * n * cpe / self.machine.clock_hz

    def table2(self, n: int = DRIVER_N, reps: int = DRIVER_REPS) -> dict[str, tuple[float, float, float]]:
        """``{kernel: (no_sve_s, sve_s, ratio)}`` for the driver run."""
        out = {}
        for k in self.scalar_cpe:
            t0 = self.time(k, vectorized=False, n=n, reps=reps)
            t1 = self.time(k, vectorized=True, n=n, reps=reps)
            out[k] = (t0, t1, t1 / t0)
        return out

    def vla_sweep(self, kernel: str, bits: tuple[int, ...] = (128, 256, 512, 1024, 2048)) -> dict[int, float]:
        """SVE/no-SVE ratio of one kernel across VLA vector lengths.

        The Armv8-A SVE range is 128-2048 bits; the A64FX implements
        512.  Ratios scale as 1/lanes until issue limits dominate (the
        model floors the ratio at 5% -- no kernel becomes free)."""
        out = {}
        for b in bits:
            lanes = b // 64
            out[b] = max(self.ratios[kernel] * (8.0 / lanes), 0.05)
        return out
