"""Workload characterization of the paper's test problem.

Counts the work one run performs, derived from the structure of the
reproduced code (and verifiable against its PAPI-style counters): zones
per rank from the tile decomposition, solver iterations, kernel bytes
and flops per zone, message and reduction counts.

These counts feed two places: the cost model's communication terms and
the dilution analysis (how much of the per-zone time is vectorizable
kernel work vs physics overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid.decomposition import TileDecomposition
from repro.linalg.bicgstab import (
    REDUCTIONS_PER_ITER_CLASSIC,
    REDUCTIONS_PER_ITER_GANGED,
)
from repro.perfmodel.paper_data import (
    PAPER_NCOMP,
    PAPER_NSTEPS,
    PAPER_NX1,
    PAPER_NX2,
    PAPER_SOLVES_PER_STEP,
)

#: Bytes of memory traffic per zone per component for one application of
#: each kernel (the KernelSuite accounting conventions).
BYTES_PER_ZONE = {
    "matvec": 56,     # 5 coefficient streams + field + result
    "precond": 56,    # SPAI apply is another 5-point stencil
    "daxpy": 24,
    "dscal": 24,
    "ddaxpy": 32,
    "dprod": 16,
}

FLOPS_PER_ZONE = {
    "matvec": 9,
    "precond": 9,
    "daxpy": 2,
    "dscal": 2,
    "ddaxpy": 4,
    "dprod": 2,
}


@dataclass(frozen=True)
class V2DWorkload:
    """Operation counts for one run of the Gaussian-pulse problem.

    Parameters default to the paper's configuration (200 x 100 x 2,
    100 steps, 3 solves/step).  ``iterations_per_solve`` is the mean
    BiCGSTAB iteration count, measured from the reproduced code on the
    same problem (SPAI-preconditioned ganged BiCGSTAB converges in
    ~10-15 iterations at these tolerances).
    """

    nx1: int = PAPER_NX1
    nx2: int = PAPER_NX2
    ncomp: int = PAPER_NCOMP
    nsteps: int = PAPER_NSTEPS
    solves_per_step: int = PAPER_SOLVES_PER_STEP
    iterations_per_solve: float = 12.0
    ganged: bool = True

    def __post_init__(self) -> None:
        if min(self.nx1, self.nx2, self.ncomp, self.nsteps) < 1:
            raise ValueError("workload dimensions must be positive")
        if self.iterations_per_solve <= 0:
            raise ValueError("iterations_per_solve must be positive")

    # ------------------------------------------------------------------
    @property
    def zones(self) -> int:
        return self.nx1 * self.nx2

    @property
    def nunknowns(self) -> int:
        return self.zones * self.ncomp

    @property
    def total_solves(self) -> int:
        return self.nsteps * self.solves_per_step

    @property
    def total_iterations(self) -> float:
        return self.total_solves * self.iterations_per_solve

    # ------------------------------------------------------------------
    # Per-iteration kernel composition (one BiCGSTAB iteration):
    #   2 matvecs, 2 preconditioner applies, ~6 BLAS-1 updates,
    #   reductions per the ganged/classic variant.
    # ------------------------------------------------------------------
    def kernel_bytes_per_zone_per_iter(self) -> float:
        """Memory traffic per zone per iteration (bytes, all components)."""
        per_comp = (
            2 * BYTES_PER_ZONE["matvec"]
            + 2 * BYTES_PER_ZONE["precond"]
            + 2 * BYTES_PER_ZONE["daxpy"]
            + 2 * BYTES_PER_ZONE["dscal"]
            + BYTES_PER_ZONE["ddaxpy"]
            + 5 * BYTES_PER_ZONE["dprod"]
        )
        return per_comp * self.ncomp

    def kernel_flops_per_zone_per_iter(self) -> float:
        per_comp = (
            2 * FLOPS_PER_ZONE["matvec"]
            + 2 * FLOPS_PER_ZONE["precond"]
            + 2 * FLOPS_PER_ZONE["daxpy"]
            + 2 * FLOPS_PER_ZONE["dscal"]
            + FLOPS_PER_ZONE["ddaxpy"]
            + 5 * FLOPS_PER_ZONE["dprod"]
        )
        return per_comp * self.ncomp

    def run_kernel_bytes_per_zone(self) -> float:
        """Kernel memory traffic per zone for the whole run."""
        return self.kernel_bytes_per_zone_per_iter() * self.total_iterations

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of the solver's kernel mix (deep in the
        memory-bound regime -- the paper's premise)."""
        return (
            self.kernel_flops_per_zone_per_iter()
            / self.kernel_bytes_per_zone_per_iter()
        )

    # ------------------------------------------------------------------
    # Communication counts per run, for a given topology.
    # ------------------------------------------------------------------
    def reductions_per_iteration(self) -> int:
        return (
            REDUCTIONS_PER_ITER_GANGED if self.ganged else REDUCTIONS_PER_ITER_CLASSIC
        )

    def total_reductions(self) -> float:
        return self.total_iterations * self.reductions_per_iteration()

    def halo_exchanges_per_iteration(self) -> int:
        # one exchange per matvec (the preconditioner is tile-local SPAI)
        return 2

    def comm_profile(self, nprx1: int, nprx2: int) -> dict[str, float]:
        """Message/byte counts for the most-communicating rank."""
        decomp = TileDecomposition(
            nx1=self.nx1, nx2=self.nx2, nprx1=nprx1, nprx2=nprx2
        )
        exchanges = self.total_iterations * self.halo_exchanges_per_iteration()
        msgs_per_exchange = decomp.max_neighbor_count()
        halo_zones = decomp.max_halo_zones()
        return {
            "halo_exchanges": exchanges,
            "messages": exchanges * msgs_per_exchange,
            "halo_bytes": exchanges * halo_zones * 8 * self.ncomp,
            "reductions": self.total_reductions(),
            "max_tile_zones": float(decomp.max_tile_zones()),
            "max_halo_zones": float(halo_zones),
        }
