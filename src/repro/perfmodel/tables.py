"""Report generators: the paper's tables and breakdowns from the model.

Each function renders the model's prediction next to the published
value and, where the benchmark harness asserts shape invariants (see
DESIGN.md Sec. 4), exposes the raw numbers.
"""

from __future__ import annotations

from repro.perfmodel.costmodel import CostModel
from repro.perfmodel.kernels import KernelTimeModel
from repro.perfmodel.paper_data import (
    COMPILER_KEYS,
    CRAY_NOOPT,
    CRAY_OPT,
    FUJITSU,
    GNU,
    PAPER_BREAKDOWN_20PROC,
    PAPER_BREAKDOWN_SERIAL,
    PAPER_TABLE1,
    PAPER_TABLE2_RATIOS,
    PAPER_TABLE2_TIMES,
)

_LABEL = {GNU: "GNU", FUJITSU: "Fujitsu", CRAY_OPT: "Cray(opt)", CRAY_NOOPT: "Cray(no-opt)"}


def table1_model(model: CostModel | None = None) -> list[dict]:
    """Model predictions for every Table-I cell.

    Returns one dict per row: topology plus ``{compiler: (paper, model)}``.
    """
    model = model if model is not None else CostModel()
    out = []
    for row in PAPER_TABLE1:
        cells = {}
        for key in COMPILER_KEYS:
            paper = row.time(key)
            pred = model.predict(key, row.nx1, row.nx2).total
            cells[key] = (paper, pred)
        out.append(
            {"np": row.np_, "nx1": row.nx1, "nx2": row.nx2, "cells": cells}
        )
    return out


def table1_report(model: CostModel | None = None) -> str:
    """TABLE I side-by-side: paper seconds vs model seconds."""
    rows = table1_model(model)
    head = f"{'Np':>4} {'NX1':>4} {'NX2':>4}"
    for key in COMPILER_KEYS:
        head += f" | {_LABEL[key]:>21}"
    lines = [
        "TABLE I — TIMES BY COMPILER (seconds): paper / model",
        head,
    ]
    for r in rows:
        line = f"{r['np']:>4} {r['nx1']:>4} {r['nx2']:>4}"
        for key in COMPILER_KEYS:
            paper, pred = r["cells"][key]
            ptxt = f"{paper:8.2f}" if paper is not None else "      --"
            line += f" | {ptxt} /{pred:10.2f}"
        lines.append(line)
    return "\n".join(lines)


def table2_report(kernel_model: KernelTimeModel | None = None) -> str:
    """TABLE II side-by-side: paper vs model kernel times and ratios."""
    km = kernel_model if kernel_model is not None else KernelTimeModel()
    t2 = km.table2()
    lines = [
        "TABLE II — LINEAR ALGEBRA ROUTINES TIMES (seconds): paper / model",
        f"{'Routine':<8} {'No-SVE':>17} {'SVE':>17} {'SVE/No-SVE':>17}",
    ]
    for k, (t0, t1, ratio) in t2.items():
        p0, p1 = PAPER_TABLE2_TIMES[k]
        pr = PAPER_TABLE2_RATIOS[k]
        lines.append(
            f"{k:<8} {p0:7.1f} /{t0:8.1f} {p1:7.1f} /{t1:8.1f} "
            f"{pr:7.2f} /{ratio:8.2f}"
        )
    return "\n".join(lines)


def breakdown_report(model: CostModel | None = None) -> str:
    """The Sec. II-E time attributions: serial and 20-processor (5x4)."""
    model = model if model is not None else CostModel()
    serial = model.predict(CRAY_OPT, 1, 1)
    par = model.predict(CRAY_OPT, 5, 4)
    pb, pp = PAPER_BREAKDOWN_SERIAL, PAPER_BREAKDOWN_20PROC
    lines = [
        "SEC. II-E BREAKDOWN (Cray opt): paper vs model",
        "",
        "Serial (1 processor):",
        f"  total     : paper ~{pb['total']:.0f} s   model {serial.total:.1f} s",
        f"  Matvec    : paper ~{pb['matvec']:.0f} s   model {serial.matvec:.1f} s",
        f"  precond   : paper ~{pb['precond']:.0f} s    model {serial.precond:.1f} s",
        "  BiCGSTAB call sites: paper 31-33% each; model attributes "
        f"{100 * (serial.matvec + serial.precond + serial.other) / serial.total / 3:.0f}% "
        "each of three equal solves",
        "",
        "20 processors (5 x 4):",
        f"  total     : paper ~{pp['total']:.0f} s   model {par.total:.1f} s",
        f"  Matvec max: paper ~{pp['matvec']:.1f} s  model {par.matvec:.1f} s",
        f"  precond   : paper ~{pp['precond']:.1f} s  model {par.precond:.1f} s",
        f"  MPI share : model {par.mpi:.1f} s "
        f"({100 * par.mpi / par.total:.0f}% — 'a significant amount of time')",
    ]
    return "\n".join(lines)


def dilution_report(
    model: CostModel | None = None, kernel_model: KernelTimeModel | None = None
) -> str:
    """The headline finding: kernels gain 3-6x from SVE, the app ~1.45x."""
    model = model if model is not None else CostModel()
    km = kernel_model if kernel_model is not None else KernelTimeModel()
    app_ratio = model.app_sve_ratio()
    kr = {k: v for k, (_, _, v) in km.table2().items()}
    best, worst = min(kr.values()), max(kr.values())
    lines = [
        "SVE DILUTION — kernel-level vs whole-application speedup",
        f"  kernel SVE/no-SVE ratios : {best:.2f} .. {worst:.2f} "
        f"(speedups {1 / worst:.1f}x .. {1 / best:.1f}x)",
        f"  application ratio (model): {app_ratio:.2f} "
        f"(speedup {1 / app_ratio:.2f}x)",
        f"  application ratio (paper): {181.26 / 262.57:.2f} "
        f"(speedup {262.57 / 181.26:.2f}x)",
        "",
        "  Why: the driver's 1000-equation system is L1-resident and",
        "  instruction-bound (full SIMD benefit); the application's",
        "  working set streams from L2/HBM and interleaves solver",
        "  kernels with coefficient builds, SPAI setup, ghost fills and",
        "  MPI — work SVE barely touches.  'A complex multi-physics",
        "  code ... will not necessarily demonstrate the speedup",
        "  expected with the use of SVE optimization.'",
    ]
    return "\n".join(lines)
