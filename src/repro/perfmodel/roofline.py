"""Roofline analysis of the V2D kernels on the A64FX.

Places each Table-II kernel on the A64FX roofline for both residences
the study exercised: the driver's L1-resident 1000-equation system and
the application's HBM/L2-streamed 40,000-unknown fields.  The picture
*is* the paper's conclusion:

* in L1, every kernel sits against the compute roof, so SVE's 8x wider
  issue shows up almost fully (Table II's 3-6x);
* from HBM, the kernels' arithmetic intensity (0.1-0.2 flop/byte) puts
  them far under the memory roof, where extra SIMD width buys little
  (Table I's ~1.45x whole-app gain).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.machine import A64FX
from repro.perfmodel.workload import BYTES_PER_ZONE, FLOPS_PER_ZONE

#: kernel -> (flops per element, bytes per element), from the
#: KernelSuite accounting conventions.
KERNEL_INTENSITY: dict[str, tuple[int, int]] = {
    "MATVEC": (FLOPS_PER_ZONE["matvec"], BYTES_PER_ZONE["matvec"]),
    "DPROD": (FLOPS_PER_ZONE["dprod"], BYTES_PER_ZONE["dprod"]),
    "DAXPY": (FLOPS_PER_ZONE["daxpy"], BYTES_PER_ZONE["daxpy"]),
    "DSCAL": (FLOPS_PER_ZONE["dscal"], BYTES_PER_ZONE["dscal"]),
    "DDAXPY": (FLOPS_PER_ZONE["ddaxpy"], BYTES_PER_ZONE["ddaxpy"]),
}

#: effective bandwidths by working-set residence, bytes/s/core
#: (A64FX: L1 ~ 230 GB/s/core load, L2 ~ 57 GB/s/core, HBM per-core
#: share of the CMG stream bandwidth).
CACHE_BANDWIDTH = {
    "L1": 230e9,
    "L2": 57e9,
    "HBM": None,  # computed from the machine model per core count
}


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position and bound on a roofline."""

    kernel: str
    residence: str
    intensity: float             # flop/byte
    peak_flops: float            # compute roof (flop/s)
    bandwidth: float             # memory roof slope (byte/s)
    attainable: float            # min(peak, intensity * bw)

    @property
    def memory_bound(self) -> bool:
        return self.intensity * self.bandwidth < self.peak_flops


@dataclass(frozen=True)
class RooflineModel:
    """Roofline evaluator for one core of the A64FX."""

    machine: A64FX = field(default_factory=A64FX)

    def bandwidth(self, residence: str, cores: int = 1) -> float:
        if residence == "HBM":
            return self.machine.memory_bandwidth(cores) / cores
        try:
            return CACHE_BANDWIDTH[residence]
        except KeyError:
            raise KeyError(f"unknown residence {residence!r}") from None

    def attainable(
        self, intensity: float, residence: str, vectorized: bool = True
    ) -> float:
        """Attainable flop/s at a *measured* arithmetic intensity.

        The generic roofline evaluation ``min(peak, AI x bandwidth)``
        for one core -- used by the efficiency reporter to place
        counter-measured kernels (whose AI need not match any named
        :data:`KERNEL_INTENSITY` entry) on the model machine's roof.
        """
        if intensity < 0:
            raise ValueError(f"arithmetic intensity must be >= 0, got {intensity}")
        peak = self.machine.peak_flops(1, vectorized)
        return min(peak, intensity * self.bandwidth(residence))

    def point_at(
        self,
        kernel: str,
        intensity: float,
        residence: str,
        vectorized: bool = True,
    ) -> RooflinePoint:
        """A :class:`RooflinePoint` at an arbitrary (kernel, AI) pair."""
        peak = self.machine.peak_flops(1, vectorized)
        bw = self.bandwidth(residence)
        return RooflinePoint(
            kernel=kernel,
            residence=residence,
            intensity=intensity,
            peak_flops=peak,
            bandwidth=bw,
            attainable=min(peak, intensity * bw),
        )

    def point(
        self, kernel: str, residence: str, vectorized: bool = True
    ) -> RooflinePoint:
        try:
            flops, nbytes = KERNEL_INTENSITY[kernel]
        except KeyError:
            raise KeyError(f"unknown kernel {kernel!r}") from None
        return self.point_at(
            kernel, flops / nbytes, residence, vectorized=vectorized
        )

    def sve_gain(self, kernel: str, residence: str) -> float:
        """Attainable-flops ratio vectorized/scalar at that residence.

        The roofline-level explanation of the dilution: in L1 this is
        large (compute-roof bound by issue width); from HBM it
        approaches 1 (memory roof, unchanged by SIMD width).
        """
        v = self.point(kernel, residence, vectorized=True).attainable
        s = self.point(kernel, residence, vectorized=False).attainable
        return v / s

    def report(self) -> str:
        lines = [
            "ROOFLINE — V2D kernels on one A64FX core "
            f"(SVE peak {self.machine.peak_flops(1, True) / 1e9:.1f} GF, "
            f"scalar peak {self.machine.peak_flops(1, False) / 1e9:.1f} GF)",
            f"{'kernel':<8} {'AI':>6} | "
            + " | ".join(f"{res + ' gain':>10}" for res in ("L1", "L2", "HBM")),
        ]
        for kernel in KERNEL_INTENSITY:
            ai = self.point(kernel, "L1").intensity
            gains = [self.sve_gain(kernel, res) for res in ("L1", "L2", "HBM")]
            lines.append(
                f"{kernel:<8} {ai:>6.3f} | "
                + " | ".join(f"{g:>9.1f}x" for g in gains)
            )
        lines += [
            "",
            "Driver (Table II) runs L1-resident -> near the left column;",
            "the application streams from L2/HBM -> near the right one.",
        ]
        return "\n".join(lines)
