"""Hardware model: the A64FX node and the Ookami cluster.

Numbers follow the paper's platform description (Sec. I-B) and public
A64FX documentation: 4 core-memory groups (CMGs) of 12 cores each,
64 KB L1 per core, 8 MB L2 per CMG, 1.8 GHz, 512-bit SVE, 32 GB HBM2
at ~1 TB/s per node, InfiniBand HDR100 fat tree.

The model exposes the two roofline inputs -- peak flop rate and
sustainable memory bandwidth for a given core count -- plus cache
capacities (the Table-II driver's 1000-equation system is L1/L2
resident, which is why its kernels show the *compute-bound* SVE
speedup rather than the HBM-bound one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class A64FX:
    """One A64FX processor (as deployed in Ookami's Apollo 80)."""

    clock_hz: float = 1.8e9
    cmgs: int = 4
    cores_per_cmg: int = 12
    sve_bits: int = 512
    l1d_bytes: int = 64 * 1024            # per core
    l2_bytes: int = 8 * 1024 * 1024       # per CMG, shared
    hbm_bandwidth: float = 1.0e12         # bytes/s, node aggregate
    #: fraction of nominal HBM bandwidth sustainable by stream-like code
    stream_efficiency: float = 0.82
    #: FMA pipes per core (each does lanes x (mul+add) per cycle)
    fma_pipes: int = 2

    @property
    def cores(self) -> int:
        return self.cmgs * self.cores_per_cmg

    @property
    def lanes(self) -> int:
        """Double-precision lanes per SVE vector."""
        return self.sve_bits // 64

    # ------------------------------------------------------------------
    def peak_flops(self, cores: int, vectorized: bool) -> float:
        """Peak double-precision flop/s for ``cores`` cores.

        Vectorized: ``pipes x lanes x 2 (FMA)`` flops/cycle/core =
        32 @ 512-bit.  Scalar code retires ``pipes x 2`` = 4.
        """
        cores = min(cores, self.cores)
        per_cycle = self.fma_pipes * 2 * (self.lanes if vectorized else 1)
        return cores * per_cycle * self.clock_hz

    def memory_bandwidth(self, cores: int) -> float:
        """Sustainable bandwidth for ``cores`` cores (bytes/s).

        Bandwidth is provisioned per CMG; cores fill CMGs in order and
        a single core cannot saturate its CMG (a well-documented A64FX
        property -- roughly 1/3 of CMG bandwidth from one core).
        """
        cores = min(cores, self.cores)
        if cores <= 0:
            raise ValueError("need at least one core")
        bw_per_cmg = self.stream_efficiency * self.hbm_bandwidth / self.cmgs
        full, rem = divmod(cores, self.cores_per_cmg)
        bw = full * bw_per_cmg
        if rem:
            # partial CMG: single-core share ~1/3, saturating by ~4 cores
            bw += bw_per_cmg * min(1.0, (1.0 + (rem - 1)) / 4.0)
        return bw

    def working_set_level(self, nbytes: int) -> str:
        """Which level of the hierarchy holds a working set."""
        if nbytes <= self.l1d_bytes:
            return "L1"
        if nbytes <= self.l2_bytes:
            return "L2"
        return "HBM"

    def describe(self) -> str:
        """One-line roofline-inputs summary for report headers."""
        return (
            f"A64FX core @ {self.clock_hz / 1e9:.1f} GHz: "
            f"SVE peak {self.peak_flops(1, True) / 1e9:.1f} GF/s, "
            f"scalar peak {self.peak_flops(1, False) / 1e9:.1f} GF/s, "
            f"1-core HBM {self.memory_bandwidth(1) / 1e9:.0f} GB/s"
        )


@dataclass(frozen=True)
class OokamiCluster:
    """The Apollo 80 testbed: 174 A64FX nodes on HDR100 InfiniBand."""

    node: A64FX = A64FX()
    nodes: int = 174
    #: effective point-to-point latency of the MPI stack on A64FX.
    #: The slow scalar core makes MPI software overhead dominate the
    #: 1.3 us wire latency; tens of microseconds effective is typical.
    mpi_latency: float = 2.0e-5
    mpi_bandwidth: float = 12.5e9         # HDR100 ~ 100 Gb/s
    intra_node_latency: float = 4.0e-6
    intra_node_bandwidth: float = 4.0e10

    def placement(self, nranks: int) -> tuple[int, int]:
        """(nodes used, max ranks per node) for a dense block placement."""
        if nranks < 1:
            raise ValueError("need at least one rank")
        per_node = self.node.cores
        nodes = math.ceil(nranks / per_node)
        if nodes > self.nodes:
            raise ValueError(f"{nranks} ranks exceed the machine")
        return nodes, min(nranks, per_node)

    def latency(self, nranks: int) -> float:
        """Effective message latency (worst path) for a job of this size."""
        nodes, _ = self.placement(nranks)
        return self.mpi_latency if nodes > 1 else self.intra_node_latency

    def bandwidth(self, nranks: int) -> float:
        nodes, _ = self.placement(nranks)
        return self.mpi_bandwidth if nodes > 1 else self.intra_node_bandwidth
