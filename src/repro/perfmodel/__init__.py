"""Analytic performance model of the study's platform.

The measurements of Tables I and II are properties of hardware
(A64FX/Ookami) and toolchains (GNU / Fujitsu / Cray, with and without
SVE) that a pure-Python reproduction cannot run.  This package is the
substitute: a machine model of the A64FX node and Ookami interconnect,
compiler code-generation models, a workload characterization of the
V2D Gaussian-pulse run derived from the instrumented code, and a cost
model that combines them into predicted wall times.

Per-compiler coefficients are *calibrated* against the paper's own
Table I (a least-squares fit over its 12 topology rows; see
:mod:`repro.perfmodel.calibrate`), so absolute seconds match by
construction where the fit is good; what the model genuinely encodes
-- and what the benchmarks assert -- is the *shape*: compiler
orderings, scaling knees, topology sensitivity, and the
kernel-vs-whole-code SVE dilution.

Modules:

* :mod:`repro.perfmodel.paper_data` -- Tables I & II as published.
* :mod:`repro.perfmodel.machine` -- A64FX + Ookami hardware model.
* :mod:`repro.perfmodel.compilers` -- compiler codegen/MPI models with
  calibrated coefficients.
* :mod:`repro.perfmodel.workload` -- operation/traffic counts of the
  test problem per step.
* :mod:`repro.perfmodel.costmodel` -- the time predictor.
* :mod:`repro.perfmodel.kernels` -- Table II kernel-level model.
* :mod:`repro.perfmodel.calibrate` -- the fitting procedure.
* :mod:`repro.perfmodel.tables` -- Table I / II / Sec. II-E generators.
"""

from repro.perfmodel.compilers import COMPILERS, CompilerModel, get_compiler
from repro.perfmodel.costmodel import CostModel, PredictedTime
from repro.perfmodel.kernels import KernelTimeModel
from repro.perfmodel.machine import A64FX, OokamiCluster
from repro.perfmodel.paper_data import PAPER_TABLE1, PAPER_TABLE2_RATIOS, Table1Row
from repro.perfmodel.roofline import RooflineModel, RooflinePoint
from repro.perfmodel.tables import (
    breakdown_report,
    dilution_report,
    table1_report,
    table2_report,
)
from repro.perfmodel.workload import V2DWorkload

__all__ = [
    "A64FX",
    "OokamiCluster",
    "CompilerModel",
    "COMPILERS",
    "get_compiler",
    "V2DWorkload",
    "CostModel",
    "PredictedTime",
    "KernelTimeModel",
    "RooflineModel",
    "RooflinePoint",
    "PAPER_TABLE1",
    "PAPER_TABLE2_RATIOS",
    "Table1Row",
    "table1_report",
    "table2_report",
    "breakdown_report",
    "dilution_report",
]
