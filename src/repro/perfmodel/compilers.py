"""Compiler code-generation models.

One :class:`CompilerModel` per Table-I column: GNU 11.1.0, Fujitsu 4.5,
Cray 21.03 with ``-O3`` + SVE, and Cray without optimization or SVE.

The four run-level cost coefficients (``fixed``, ``per_zone``,
``per_rank_reduction``, ``per_halo_zone``) are calibrated against the
paper's Table I by :mod:`repro.perfmodel.calibrate`; the test suite
re-runs the fit and asserts these baked constants match it.  The
kernel-level factors (``vec_efficiency`` etc.) feed the Table-II model
in :mod:`repro.perfmodel.kernels`.

What the calibrated numbers say (and the paper observed):

* ``per_zone``: Cray(opt) generates the fastest compute
  (9.2 us/zone-run), Fujitsu next, Cray(no-opt) ~1.41x Cray(opt) --
  the whole-app SVE dilution -- and GNU slowest.
* ``per_rank_reduction`` / ``per_rank2_reduction``: Fujitsu's MPI
  pairing fits a small linear term (efficient tree collectives);
  GNU's and Cray's stacks fit a quadratic term, which is why their
  times turn upward past ~25-40 processors while Fujitsu keeps
  scaling (the paper's Sec. II-E observation).
* ``per_halo_zone``: similar across compilers; it is the term that
  makes flatter topologies faster at fixed Np.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.paper_data import CRAY_NOOPT, CRAY_OPT, FUJITSU, GNU


@dataclass(frozen=True)
class CompilerModel:
    """One toolchain's calibrated cost profile."""

    key: str
    name: str
    version: str
    sve: bool                      # SVE + -O3 style optimization enabled
    # -- run-level coefficients (seconds), fit to Table I ---------------
    fixed: float                   # F: per-run serial overhead
    per_zone: float                # Z: s per zone per run (most-loaded rank)
    per_rank_reduction: float      # R: s per rank per run (tree collectives)
    per_rank2_reduction: float     # R2: s per rank^2 per run (flat/congested)
    per_halo_zone: float           # H: s per max-perimeter zone per run
    fit_rel_err: float             # mean relative error of the fit
    # -- kernel-level codegen quality (for the Table-II model) ----------
    vec_efficiency: float          # fraction of SVE peak achieved
    scalar_efficiency: float       # fraction of scalar peak achieved
    mem_efficiency: float          # fraction of stream bandwidth achieved

    def __post_init__(self) -> None:
        for f in (
            "fixed",
            "per_zone",
            "per_rank_reduction",
            "per_rank2_reduction",
            "per_halo_zone",
        ):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be non-negative")

    @property
    def coefficients(self) -> tuple[float, float, float, float, float]:
        """In the calibration basis order ``[F, Z, R, R2, H]``."""
        return (
            self.fixed,
            self.per_zone,
            self.per_rank_reduction,
            self.per_rank2_reduction,
            self.per_halo_zone,
        )


# ---------------------------------------------------------------------------
# Calibrated constants.  Regenerate with:
#   python -c "from repro.perfmodel.calibrate import calibration_report; \
#              print(calibration_report())"
# ---------------------------------------------------------------------------
COMPILERS: dict[str, CompilerModel] = {
    GNU: CompilerModel(
        key=GNU, name="GNU", version="11.1.0", sve=True,
        fixed=0.679824021,
        per_zone=0.01849353304,
        per_rank_reduction=0.0,
        per_rank2_reduction=0.006794060264,
        per_halo_zone=0.02484293216,
        fit_rel_err=0.020939,
        vec_efficiency=0.45, scalar_efficiency=0.55, mem_efficiency=0.55,
    ),
    FUJITSU: CompilerModel(
        key=FUJITSU, name="Fujitsu", version="4.5", sve=True,
        fixed=5.131477876,
        per_zone=0.01232794793,
        per_rank_reduction=0.01538730994,
        per_rank2_reduction=0.0,
        per_halo_zone=0.01039172429,
        fit_rel_err=0.011801,
        vec_efficiency=0.70, scalar_efficiency=0.70, mem_efficiency=0.75,
    ),
    CRAY_OPT: CompilerModel(
        key=CRAY_OPT, name="Cray", version="21.03 (-O3 + SVE)", sve=True,
        fixed=1.274165974,
        per_zone=0.009185051798,
        per_rank_reduction=0.0,
        per_rank2_reduction=0.00655122217,
        per_halo_zone=0.01703218824,
        fit_rel_err=0.030221,
        vec_efficiency=0.80, scalar_efficiency=0.75, mem_efficiency=0.80,
    ),
    CRAY_NOOPT: CompilerModel(
        key=CRAY_NOOPT, name="Cray", version="21.03 (no opt / no SVE)", sve=False,
        fixed=3.064618773,
        per_zone=0.01297526906,
        per_rank_reduction=0.1267703849,
        per_rank2_reduction=0.0,
        per_halo_zone=0.01033569628,
        fit_rel_err=0.002621,
        vec_efficiency=0.0, scalar_efficiency=0.60, mem_efficiency=0.65,
    ),
}


def get_compiler(key: str) -> CompilerModel:
    try:
        return COMPILERS[key]
    except KeyError:
        raise KeyError(
            f"unknown compiler {key!r}; available: {sorted(COMPILERS)}"
        ) from None
