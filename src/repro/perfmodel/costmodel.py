"""The wall-time predictor behind the model's Table I.

``T = F + Z * zones_local_max + R * Np + R2 * Np^2 + H * halo_max``
with the calibrated per-compiler coefficients (see
:mod:`repro.perfmodel.calibrate` for the derivation and physical
reading of each term).  On top of the total, the model attributes the
compute term to routines using the Sec. II-E measured split (Matvec
~78%, preconditioning ~8% of serial time), which lets it regenerate
both breakdown paragraphs of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.decomposition import TileDecomposition
from repro.perfmodel.compilers import CompilerModel, get_compiler
from repro.perfmodel.machine import OokamiCluster
from repro.perfmodel.paper_data import (
    PAPER_BREAKDOWN_SERIAL,
    PAPER_NSTEPS,
    PAPER_NX1,
    PAPER_NX2,
)

#: Fraction of the *compute* term attributed to each routine class, from
#: the paper's serial breakdown: 141/181 Matvec, 14/181 preconditioning,
#: remainder BLAS-1 + physics (coefficient builds, SPAI setup, control).
SERIAL_COMPUTE_SPLIT = {
    "matvec": PAPER_BREAKDOWN_SERIAL["matvec"] / PAPER_BREAKDOWN_SERIAL["total"],
    "precond": PAPER_BREAKDOWN_SERIAL["precond"] / PAPER_BREAKDOWN_SERIAL["total"],
}
SERIAL_COMPUTE_SPLIT["other"] = 1.0 - sum(SERIAL_COMPUTE_SPLIT.values())


@dataclass(frozen=True)
class PredictedTime:
    """One predicted Table-I cell, with its decomposition."""

    compiler: str
    np_: int
    nprx1: int
    nprx2: int
    total: float
    fixed: float
    compute: float
    reduction: float
    halo: float

    @property
    def mpi(self) -> float:
        """Communication share (the 'significant amount of time ...
        taken by MPI calls' of Sec. II-E)."""
        return self.reduction + self.halo

    @property
    def matvec(self) -> float:
        return self.compute * SERIAL_COMPUTE_SPLIT["matvec"]

    @property
    def precond(self) -> float:
        return self.compute * SERIAL_COMPUTE_SPLIT["precond"]

    @property
    def other(self) -> float:
        return self.compute * SERIAL_COMPUTE_SPLIT["other"]


class CostModel:
    """Predicts run times for the paper's problem on Ookami.

    Parameters
    ----------
    nx1, nx2:
        Global grid (defaults: the paper's 200 x 100).
    nsteps:
        Steps per run (timing scales linearly; the calibrated
        coefficients absorb the paper's 100).
    cluster:
        Machine model (used for validity checks such as rank counts).
    """

    def __init__(
        self,
        nx1: int = PAPER_NX1,
        nx2: int = PAPER_NX2,
        nsteps: int = PAPER_NSTEPS,
        cluster: OokamiCluster | None = None,
    ) -> None:
        self.nx1 = nx1
        self.nx2 = nx2
        self.nsteps = nsteps
        self.cluster = cluster if cluster is not None else OokamiCluster()

    def predict(self, compiler: str | CompilerModel, nprx1: int, nprx2: int) -> PredictedTime:
        """Predicted wall time for one compiler/topology cell."""
        c = get_compiler(compiler) if isinstance(compiler, str) else compiler
        np_ = nprx1 * nprx2
        self.cluster.placement(np_)  # validates the rank count fits
        decomp = TileDecomposition(
            nx1=self.nx1, nx2=self.nx2, nprx1=nprx1, nprx2=nprx2
        )
        steps_scale = self.nsteps / PAPER_NSTEPS
        fixed = c.fixed * steps_scale
        compute = c.per_zone * decomp.max_tile_zones() * steps_scale
        if np_ > 1:
            reduction = (
                c.per_rank_reduction * np_ + c.per_rank2_reduction * np_**2
            ) * steps_scale
            halo = c.per_halo_zone * decomp.max_halo_zones() * steps_scale
        else:
            reduction = halo = 0.0
        return PredictedTime(
            compiler=c.key,
            np_=np_,
            nprx1=nprx1,
            nprx2=nprx2,
            total=fixed + compute + reduction + halo,
            fixed=fixed,
            compute=compute,
            reduction=reduction,
            halo=halo,
        )

    # ------------------------------------------------------------------
    def speedup(self, compiler: str, nprx1: int, nprx2: int) -> float:
        """Strong-scaling speedup vs the same compiler's serial run."""
        serial = self.predict(compiler, 1, 1).total
        return serial / self.predict(compiler, nprx1, nprx2).total

    def best_topology(self, compiler: str, np_: int) -> tuple[int, int]:
        """The (NX1, NX2) factorization the model prefers for ``np_``."""
        best, best_t = None, float("inf")
        for n1 in range(1, np_ + 1):
            if np_ % n1:
                continue
            n2 = np_ // n1
            if n1 > self.nx1 or n2 > self.nx2:
                continue
            t = self.predict(compiler, n1, n2).total
            if t < best_t:
                best, best_t = (n1, n2), t
        if best is None:
            raise ValueError(f"no valid topology for Np={np_}")
        return best

    def scaling_study(
        self, compiler: str, scale: int = 2, max_ranks: int = 96
    ) -> list[PredictedTime]:
        """The paper's stated future work: "a larger problem and more
        nodes comparing the Fujitsu and Cray compilers".

        Predicts times for the problem scaled by ``scale`` in each
        direction (4x the zones at scale 2) over model-preferred
        topologies up to ``max_ranks``.  The per-zone and
        communication coefficients transfer; the fixed term is
        conservative (it does not grow with the problem).
        """
        if scale < 1:
            raise ValueError("scale must be >= 1")
        big = CostModel(
            nx1=self.nx1 * scale,
            nx2=self.nx2 * scale,
            nsteps=self.nsteps,
            cluster=self.cluster,
        )
        out = []
        for np_ in (1, 10, 20, 25, 40, 50, 64, 80, 96):
            if np_ > max_ranks:
                break
            topo = big.best_topology(compiler, np_)
            out.append(big.predict(compiler, *topo))
        return out

    def weak_scaling_study(
        self, compiler: str, ranks: tuple[int, ...] = (1, 4, 16, 64)
    ) -> list[PredictedTime]:
        """Weak scaling: constant zones per rank (the paper ran strong
        scaling only; this is the complementary view reviewers ask for).

        Each entry scales the grid so every rank holds the paper's
        serial 20,000 zones, using a square-ish topology.  Ideal weak
        scaling is flat time; the reduction terms bend it upward.
        """
        out = []
        for np_ in ranks:
            # factor np_ into the most square topology
            n1 = int(np.sqrt(np_))
            while np_ % n1:
                n1 -= 1
            n2 = np_ // n1
            model = CostModel(
                nx1=self.nx1 * n1, nx2=self.nx2 * n2,
                nsteps=self.nsteps, cluster=self.cluster,
            )
            out.append(model.predict(compiler, n1, n2))
        return out

    def estimate_job_seconds(
        self, nprx1: int = 1, nprx2: int = 1, backend: str = "vector"
    ) -> float:
        """Relative cost estimate for scheduling one campaign job.

        The campaign scheduler orders its work queue longest-first
        (LPT), so only the *ordering* of these numbers matters, not
        their absolute scale.  The SVE build maps onto the optimized
        Cray model, the scalar build onto the unoptimized one; a
        topology the machine model cannot place (or that does not tile
        the grid) falls back to a zones-per-step proxy so estimation
        never fails for a job the worker might still quarantine.
        """
        from repro.perfmodel.paper_data import CRAY_NOOPT, CRAY_OPT

        compiler = CRAY_OPT if backend == "vector" else CRAY_NOOPT
        try:
            return self.predict(compiler, nprx1, nprx2).total
        except (ValueError, KeyError):
            ranks = max(1, nprx1 * nprx2)
            return self.nx1 * self.nx2 * self.nsteps / ranks

    def app_sve_ratio(self) -> float:
        """Whole-application SVE/no-SVE time ratio (serial Cray).

        The headline dilution number: Table II's kernels run at
        0.16-0.31 of their scalar time, but the full code only reaches
        this ratio (~0.69 in the paper)."""
        from repro.perfmodel.paper_data import CRAY_NOOPT, CRAY_OPT

        opt = self.predict(CRAY_OPT, 1, 1).total
        noopt = self.predict(CRAY_NOOPT, 1, 1).total
        return opt / noopt
