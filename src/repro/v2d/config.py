"""Simulation configuration.

Mirrors V2D's runtime parameters: the grid (x1 = 200, x2 = 100 zones in
the paper's test), the process topology (NPRX1, NPRX2), the number of
radiation species, the step count (100 in the paper, for 300 linear
solves), and solver/backend choices -- the knobs the study varied.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.grid.decomposition import TileDecomposition
from repro.resilience.config import ResilienceConfig
from repro.transport.fld import FluxLimiter


@dataclass
class V2DConfig:
    """All runtime parameters of a run.

    The defaults describe a laptop-scale problem; use
    :meth:`paper_test_problem` for the study's full configuration.
    """

    # --- grid -----------------------------------------------------------
    nx1: int = 64
    nx2: int = 32
    extent1: tuple[float, float] = (0.0, 1.0)
    extent2: tuple[float, float] = (0.0, 1.0)
    coord: str = "cartesian"

    # --- process topology (NPRX1 x NPRX2) -------------------------------
    nprx1: int = 1
    nprx2: int = 1
    #: Comm transport carrying the ranks: "threads" (in-process, the
    #: seed behaviour) or "mp" (forked processes over shared memory).
    #: The empty string defers to the launch-time default ($REPRO_TRANSPORT
    #: when set, threads otherwise), so environment overrides reach runs
    #: whose config never names a transport explicitly.
    transport: str = ""

    # --- radiation components -------------------------------------------
    species: tuple[str, ...] = ("nu_e", "nu_e_bar")
    ngroups: int = 1

    # --- time integration -------------------------------------------------
    nsteps: int = 10
    dt: float = 1e-3

    # --- solver / backend (the study's independent variables) ------------
    backend: str = "vector"          # "vector" = SVE, "scalar" = no-SVE,
                                     # "jit" = compiled fused loops (numba)
    vector_bits: int = 512           # A64FX SVE implementation width
    precond: str = "spai"            # "spai" | "jacobi" | "none"
    ganged: bool = True              # restructured (ganged-reduction) BiCGSTAB
    fused: bool = True               # fused-kernel solver hot path
    solver_tol: float = 1e-8
    solver_maxiter: int = 500

    # --- physics toggles ---------------------------------------------------
    limiter: FluxLimiter | None = None   # None -> use the problem's choice
    coupling_rate: float = 0.0
    couple_matter: bool = False
    emission: bool = False
    c_light: float = 1.0
    a_rad: float = 1.0
    cv: float = 1.0

    # --- hydro (used when the problem declares uses_hydro) ----------------
    hydro_cfl: float = 0.4
    hydro_riemann: str = "hllc"
    hydro_reconstruction: str = "minmod"
    hydro_gamma: float = 1.4

    # --- I/O ----------------------------------------------------------------
    checkpoint_path: str | None = None
    checkpoint_interval: int = 0     # steps between checkpoints; 0 = never

    # --- instrumentation -----------------------------------------------------
    profile: bool = True
    trace: bool = False              # Chrome-trace timeline spans (repro trace)

    # --- resilience (fault injection + layered recovery) ---------------------
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        if self.nx1 < 1 or self.nx2 < 1:
            raise ValueError("grid must have at least one zone per direction")
        if self.nsteps < 0:
            raise ValueError("nsteps must be non-negative")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.ngroups < 1:
            raise ValueError("need at least one energy group")
        if len(self.species) < 1:
            raise ValueError("need at least one species")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        if self.checkpoint_interval > 0 and self.checkpoint_path is None:
            raise ValueError("checkpointing enabled but no checkpoint_path given")
        # Imported here so the config module stays free of a hard
        # dependency on the parallel package at import time.
        from repro.parallel.links import _REGISTRY

        if self.transport and self.transport not in _REGISTRY:
            raise ValueError(
                f"unknown transport {self.transport!r}; known: {sorted(_REGISTRY)}"
            )
        # Mirror check for the backend registry, so bad names are
        # rejected at config time (the serve front door's from_wire
        # validation inherits this) rather than mid-run.  Name-only:
        # whether 'jit' can actually construct (numba present) is a
        # property of the executing machine, decided at Simulation
        # build time.
        from repro.backend.dispatch import available_backends

        if self.backend not in available_backends():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"known: {available_backends()}"
            )
        # Topology must tile the grid with non-empty tiles.
        self.decomposition()

    # ------------------------------------------------------------------
    @property
    def nranks(self) -> int:
        return self.nprx1 * self.nprx2

    @property
    def ncomp(self) -> int:
        return len(self.species) * self.ngroups

    @property
    def nunknowns(self) -> int:
        """Size of each linear system: x1 * x2 * ncomp."""
        return self.nx1 * self.nx2 * self.ncomp

    @property
    def total_solves(self) -> int:
        """Linear systems per run: three per step (paper Sec. II-D)."""
        return 3 * self.nsteps

    def decomposition(self) -> TileDecomposition:
        return TileDecomposition(
            nx1=self.nx1, nx2=self.nx2, nprx1=self.nprx1, nprx2=self.nprx2
        )

    # ------------------------------------------------------------------
    # Serialization (run scripts / restart metadata / CLI --config)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dict of every parameter."""
        out = dataclasses.asdict(self)
        out["species"] = list(self.species)
        out["extent1"] = list(self.extent1)
        out["extent2"] = list(self.extent2)
        out["limiter"] = None if self.limiter is None else self.limiter.value
        out["resilience"] = None if self.resilience is None else self.resilience.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "V2DConfig":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        kw = dict(data)
        for key in ("species", "extent1", "extent2"):
            if key in kw and kw[key] is not None:
                kw[key] = tuple(kw[key])
        if kw.get("limiter") is not None and not isinstance(kw["limiter"], FluxLimiter):
            kw["limiter"] = FluxLimiter(kw["limiter"])
        if kw.get("resilience") is not None and not isinstance(
            kw["resilience"], ResilienceConfig
        ):
            kw["resilience"] = ResilienceConfig.from_dict(kw["resilience"])
        return cls(**kw)

    def to_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def from_json(cls, path: str) -> "V2DConfig":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # ------------------------------------------------------------------
    @classmethod
    def paper_test_problem(cls, nprx1: int = 1, nprx2: int = 1, **overrides) -> "V2DConfig":
        """The study's configuration: 200 x 100 zones x 2 species,
        100 steps = 300 solves of a 40,000-unknown system."""
        args = dict(
            nx1=200,
            nx2=100,
            extent1=(0.0, 2.0),
            extent2=(0.0, 1.0),
            species=("nu_e", "nu_e_bar"),
            ngroups=1,
            nsteps=100,
            dt=5e-4,
            nprx1=nprx1,
            nprx2=nprx2,
        )
        args.update(overrides)
        return cls(**args)

    @classmethod
    def scaled_test_problem(
        cls, scale: int = 4, nprx1: int = 1, nprx2: int = 1, **overrides
    ) -> "V2DConfig":
        """The paper problem shrunk by ``scale`` in each direction (for
        tests and tractable pure-Python benchmarking)."""
        if scale < 1 or 200 % scale or 100 % scale:
            raise ValueError("scale must divide 200 and 100")
        args = dict(
            nx1=200 // scale,
            nx2=100 // scale,
            extent1=(0.0, 2.0),
            extent2=(0.0, 1.0),
            nsteps=10,
            dt=5e-4 * scale,
            nprx1=nprx1,
            nprx2=nprx2,
        )
        args.update(overrides)
        return cls(**args)
