"""The simulation driver: V2D's main program.

One :class:`Simulation` instance is one rank's view of the run: it owns
the tile mesh, the kernel suite (execution backend + PAPI counters),
the radiation integrator (three BiCGSTAB solves per step), optionally
the hydro solver (with operator-split two-way matter coupling), the
TAU-style profiler and the checkpoint hooks.  :func:`run_parallel`
launches one Simulation per rank over the SPMD substrate -- the
``mpiexec -n NPRX1*NPRX2`` path of the study.
"""

from __future__ import annotations

from contextlib import ExitStack, nullcontext

import numpy as np

from repro.backend.dispatch import get_backend
from repro.grid.mesh import Mesh2D
from repro.hydro.eos import IdealGasEOS
from repro.hydro.solver import HydroBC, HydroSolver2D
from repro.io.checkpoint import CheckpointWriteError, save_checkpoint
from repro.kernels.suite import KernelSuite
from repro.monitor import flight, telemetry
from repro.monitor.counters import Counters
from repro.monitor.profiler import Profiler
from repro.monitor.telemetry import ITERATION_BUCKETS
from repro.monitor.timers import perf_stat
from repro.monitor.trace import Tracer, get_metrics
from repro.parallel.cart import CartComm
from repro.parallel.comm import Communicator
from repro.parallel.runtime import run_spmd
from repro.problems.base import Problem
from repro.resilience import (
    FaultyBackend,
    FaultyCommunicator,
    NonFiniteStateError,
    ResilienceReport,
    RollbackExhaustedError,
    StepRetryExhaustedError,
)
from repro.transport.groups import EnergyGroups, RadiationBasis
from repro.transport.integrator import RadiationIntegrator, StepReport
from repro.v2d.config import V2DConfig
from repro.v2d.report import RunReport

Array = np.ndarray


class RunInterrupted(Exception):
    """Raised by a ``run(step_callback=...)`` to stop at a step boundary.

    The driver treats this as a controlled pause, not a failure: it
    writes a checkpoint at the current step (when the config names a
    checkpoint path) and returns the partial :class:`RunReport` with
    its ``interrupted`` field set to :attr:`reason`, so the caller can
    later resume via :meth:`Simulation.restart_from`.
    """

    def __init__(self, reason: str = "interrupted") -> None:
        super().__init__(reason)
        self.reason = reason


def _scope(profiler, tracer, name, rank, cat="sim"):
    """Context manager entering the profiler region and/or tracer span."""
    if profiler is None and tracer is None:
        return nullcontext()
    stack = ExitStack()
    if profiler is not None:
        stack.enter_context(profiler.region(name, rank=rank))
    if tracer is not None:
        stack.enter_context(tracer.span(name, rank=rank, cat=cat))
    return stack


class Simulation:
    """One rank's simulation driver.

    Parameters
    ----------
    config:
        Runtime parameters.
    problem:
        The test problem (initial data + physics choices).
    cart:
        Cartesian topology for this rank; ``None`` runs serially
        (requires ``config.nranks == 1``).
    """

    def __init__(
        self,
        config: V2DConfig,
        problem: Problem,
        cart: CartComm | None = None,
    ) -> None:
        if cart is None and config.nranks != 1:
            raise ValueError(
                f"config requests {config.nranks} ranks; use run_parallel()"
            )
        if cart is not None and cart.size != config.nranks:
            raise ValueError("topology size does not match config")
        self.config = config
        self.problem = problem
        self.cart = cart
        self.rank = cart.rank if cart is not None else 0

        # Global mesh, then this rank's tile of it.
        self.global_mesh = Mesh2D.uniform(
            config.nx1, config.nx2,
            extent1=config.extent1, extent2=config.extent2, coord=config.coord,
        )
        if cart is not None:
            tile = cart.tile
            self.mesh = self.global_mesh.subset(tile.slice1, tile.slice2)
        else:
            self.mesh = self.global_mesh

        self.basis = RadiationBasis(
            species=tuple(config.species),
            groups=EnergyGroups.grey()
            if config.ngroups == 1
            else EnergyGroups.logarithmic(config.ngroups),
        )

        # Execution backend + instrumentation.
        self.counters = Counters()
        backend = get_backend(
            config.backend,
            **(
                {"vector_bits": config.vector_bits}
                if config.backend in ("vector", "jit")
                else {}
            ),
        )

        # Resilience: arm the seeded fault-injection sites and the
        # recovery layers when a ResilienceConfig is attached.  With
        # none attached (the default) nothing below changes behaviour.
        rc = config.resilience
        self._injector = (
            rc.make_injector(self.rank, counters=self.counters)
            if rc is not None
            else None
        )
        if self._injector is not None and self._injector.armed("numeric"):
            backend = FaultyBackend(backend, self._injector)
        if (
            self._injector is not None
            and self._injector.armed("comm")
            and cart is not None
        ):
            # Wrap before anything captures the communicator, so halo
            # exchange and solver reductions all ride the faulty wire.
            cart.comm = FaultyCommunicator(cart.comm, self._injector)
        self._last_checkpoint: tuple[str, int] | None = None

        self.suite = KernelSuite(backend, counters=self.counters)
        self.profiler = Profiler() if config.profile else None
        self.tracer = Tracer() if config.trace else None

        # Radiation integrator (the paper's workload).
        limiter = config.limiter if config.limiter is not None else problem.limiter()
        self.integrator = RadiationIntegrator(
            mesh=self.mesh,
            basis=self.basis,
            opacity=problem.opacity(),
            limiter=limiter,
            bc=problem.boundary_condition(),
            cart=cart,
            suite=self.suite,
            precond=config.precond,
            solver_tol=config.solver_tol,
            solver_maxiter=config.solver_maxiter,
            ganged=config.ganged,
            fused=config.fused,
            coupling_rate=config.coupling_rate,
            couple_matter=config.couple_matter,
            c_light=config.c_light,
            a_rad=config.a_rad,
            cv=config.cv,
            emission=config.emission,
            profiler=self.profiler,
            tracer=self.tracer,
            escalate=rc.escalation if rc is not None else False,
        )

        # Hydro (only when the problem calls for it).
        self.hydro: HydroSolver2D | None = None
        state = problem.initial_state(self.mesh, self.basis)
        if problem.uses_hydro:
            if state.hydro_primitive is None:
                raise ValueError(f"problem {problem.name} uses hydro but gave no state")
            hydro_bc = (
                problem.hydro_bc() if hasattr(problem, "hydro_bc") else HydroBC.OUTFLOW
            )
            self.hydro = HydroSolver2D(
                self.mesh,
                IdealGasEOS(config.hydro_gamma),
                reconstruction=config.hydro_reconstruction,
                riemann=config.hydro_riemann,
                cfl=config.hydro_cfl,
                bc=hydro_bc,
                cart=cart,
            )
            self.hydro.set_primitive(state.hydro_primitive)

        self.integrator.set_state(state.E, rho=state.rho, temp=state.temp)
        self.step_reports: list[StepReport] = []

    # ------------------------------------------------------------------
    def restart_from(self, path: str) -> None:
        """Resume from a checkpoint written by an earlier run.

        Restores the radiation field, material state, clock and step
        counter; in decomposed runs rank 0 reads the archive and every
        rank receives its tile (the parallel-HDF5-read analogue).
        """
        from repro.io.checkpoint import load_checkpoint

        ck = load_checkpoint(path, cart=self.cart)
        if ck.E.shape != self.integrator.E.interior.shape:
            raise ValueError(
                f"checkpoint shape {ck.E.shape} does not match this "
                f"rank's tile {self.integrator.E.interior.shape}"
            )
        self.integrator.set_state(ck.E, rho=ck.rho, temp=ck.temp)
        self.integrator.time = ck.time
        self.integrator.step_count = ck.step

    # ------------------------------------------------------------------
    @property
    def comm(self) -> Communicator | None:
        return self.cart.comm if self.cart is not None else None

    @property
    def time(self) -> float:
        return self.integrator.time

    @property
    def last_checkpoint(self) -> tuple[str, int] | None:
        """``(path, step)`` of the last good checkpoint, if any."""
        return self._last_checkpoint

    # ------------------------------------------------------------------
    def _hydro_advance(self, dt: float) -> None:
        """Advance hydro by ``dt`` in CFL-limited substeps, then push
        the updated material state into the radiation integrator."""
        hy = self.hydro
        assert hy is not None
        remaining = dt
        while remaining > 1e-14:
            sub = min(hy.cfl_dt(), remaining)
            hy.step(sub)
            remaining -= sub
        w = hy.primitive()
        self.integrator.rho[...] = w[0]
        # One-fluid temperature: T = p / rho (unit gas constant).
        self.integrator.temp = w[3] / np.maximum(w[0], 1e-300)

    def _feed_back_heating(self, t_before: Array) -> None:
        """Return the radiation's matter heating to the hydro energy."""
        hy = self.hydro
        assert hy is not None
        d_temp = self.integrator.temp - t_before
        if np.any(d_temp != 0.0):
            hy.U.interior[3] += self.integrator.rho * self.config.cv * d_temp
            # Keep the integrator's temperature consistent with hydro.

    def _step_once(self, dt: float) -> StepReport:
        """One coupled timestep (hydro substeps + three radiation solves)."""
        if self.hydro is not None:
            with _scope(self.profiler, self.tracer, "hydro", self.rank, cat="hydro"):
                self._hydro_advance(dt)
            t_before = self.integrator.temp.copy()
            report = self.integrator.step(dt)
            if self.config.couple_matter:
                self._feed_back_heating(t_before)
        else:
            report = self.integrator.step(dt)
        return report

    def _traced_step(self, dt: float) -> StepReport:
        """One step, under the tracer's ``step`` span when tracing."""
        if self.tracer is None:
            return self._step_once(dt)
        with self.tracer.span(
            "step", rank=self.rank, cat="sim",
            args={"step": self.integrator.step_count + 1, "dt": dt},
        ):
            report = self._step_once(dt)
        # Per-step counter tracks: the process-wide metrics registry
        # plus the PAPI-style software counters this rank accumulated.
        metrics = get_metrics()
        metrics.inc("repro.steps")
        metrics.inc("repro.solver_iterations", report.iterations)
        self.tracer.counter_snapshot(metrics, rank=self.rank)
        self.tracer.counter(
            "papi",
            {
                "matvecs": float(self.counters.matvecs),
                "solver_iterations": float(self.counters.solver_iterations),
                "halo_exchanges": float(
                    self.comm.counters.halo_exchanges
                    if self.comm is not None else 0
                ),
            },
            rank=self.rank,
        )
        return report

    # -- step-level recovery: in-memory snapshot + dt backoff ----------
    def _snapshot_state(self) -> dict:
        it = self.integrator
        snap = {
            "E": it.E.data.copy(),
            "rho": it.rho.copy(),
            "temp": it.temp.copy(),
            "time": it.time,
            "step": it.step_count,
        }
        if self.hydro is not None:
            snap["U"] = self.hydro.U.data.copy()
        return snap

    def _restore_state(self, snap: dict) -> None:
        it = self.integrator
        it.E.data[...] = snap["E"]
        it.rho[...] = snap["rho"]
        it.temp = snap["temp"].copy()
        it.time = snap["time"]
        it.step_count = snap["step"]
        if self.hydro is not None:
            self.hydro.U.data[...] = snap["U"]

    def step(self) -> StepReport:
        """Advance one timestep, retrying with dt backoff when armed.

        Without a resilience config this is exactly one
        :meth:`_step_once`.  With one, a step that fails validation
        (escalation exhausted, non-finite or unphysical state) is
        rolled back to an in-memory snapshot and retried with the
        timestep shrunk by the :class:`RetryPolicy`; the retry budget
        exhausting raises :class:`StepRetryExhaustedError` for the
        run-level layer to handle.
        """
        rc = self.config.resilience
        dt = self.config.dt
        if rc is None:
            report = self._traced_step(dt)
            if telemetry.enabled():
                self._observe_step(report, dt)
            self.step_reports.append(report)
            return report

        policy = rc.retry
        failures = 0
        while True:
            snap = self._snapshot_state()
            try:
                report = self._traced_step(dt)
            except NonFiniteStateError as exc:
                self._restore_state(snap)
                failures += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "step_retry", rank=self.rank, cat="resilience",
                        args={
                            "step": self.integrator.step_count + 1,
                            "failures": failures,
                            "dt": dt,
                        },
                    )
                if failures >= policy.max_attempts:
                    raise StepRetryExhaustedError(
                        f"step {self.integrator.step_count + 1} failed "
                        f"{failures} attempts (last dt {dt:.3e}): {exc}"
                    ) from exc
                self.counters.step_retries += 1
                dt = policy.next_dt(dt)
                continue
            report.retries = failures
            if telemetry.enabled():
                self._observe_step(report, dt)
            self.step_reports.append(report)
            return report

    def _observe_step(self, report: StepReport, dt: float) -> None:
        """Telemetry-armed per-step observations (observation only).

        Feeds the solver-iteration histogram, per-rank step/heartbeat
        gauges, and the rank's flight recorder.  Guarded by the caller
        on :func:`telemetry.enabled`, so disarmed runs never reach this
        and stay bitwise-identical.
        """
        metrics = get_metrics()
        metrics.observe(
            "repro.solver.iterations_per_step",
            report.iterations,
            buckets=ITERATION_BUCKETS,
        )
        metrics.inc("repro.telemetry.steps")
        metrics.set(
            f"repro.rank.{self.rank}.step", float(self.integrator.step_count)
        )
        flight.record(
            self.rank,
            "step",
            "step",
            step=self.integrator.step_count,
            dt=dt,
            iterations=report.iterations,
            retries=report.retries,
        )

    # ------------------------------------------------------------------
    def _maybe_checkpoint(self, step: int) -> None:
        cfg = self.config
        if cfg.checkpoint_interval <= 0 or step % cfg.checkpoint_interval != 0:
            return
        self._write_checkpoint(step)

    def _write_checkpoint(self, step: int) -> None:
        """Write a checkpoint, surviving (and counting) io faults.

        With resilience armed, a failed write is a recovered event: the
        run continues from the previous good checkpoint (the atomic
        rename guarantees it survived).  Every rank must agree on which
        checkpoint is the last good one, so in decomposed runs the
        writing rank broadcasts the outcome.
        """
        cfg = self.config
        rc = cfg.resilience
        path = f"{cfg.checkpoint_path}.step{step:05d}.npz"
        ok = True
        try:
            with _scope(None, self.tracer, "checkpoint", self.rank, cat="io"):
                save_checkpoint(
                    path,
                    self.integrator.E.interior,
                    self.integrator.rho,
                    self.integrator.temp,
                    time=self.time,
                    step=step,
                    cart=self.cart,
                    meta={"problem": self.problem.name},
                    injector=self._injector,
                )
        except CheckpointWriteError:
            if rc is None:
                raise
            ok = False
            self.counters.io_recoveries += 1
        if rc is not None and self.comm is not None and self.comm.size > 1:
            ok = bool(self.comm.bcast(ok, root=0))
        if ok:
            self._last_checkpoint = (path, step)

    def _rollback(self) -> None:
        """Run-level recovery: reload the last good checkpoint."""
        assert self._last_checkpoint is not None
        path, step = self._last_checkpoint
        if self.tracer is not None:
            self.tracer.instant(
                "rollback", rank=self.rank, cat="resilience",
                args={"to_step": step},
            )
        self.restart_from(path)
        self.step_reports = [r for r in self.step_reports if r.step <= step]

    def run(
        self,
        step_callback=None,
        nsteps: int | None = None,
    ) -> RunReport:
        """Run ``config.nsteps`` steps and assemble the report.

        Parameters
        ----------
        step_callback:
            Optional ``callback(sim, step_report)`` invoked after every
            completed step (post-checkpoint).  Raising
            :class:`RunInterrupted` from it pauses the run at this step
            boundary: a checkpoint is written (when the config names a
            checkpoint path) and the partial report is returned with
            ``interrupted`` set -- the serve subsystem's cancel/budget
            hook.
        nsteps:
            Step budget for this run segment, overriding
            ``config.nsteps`` (used when resuming a partially-run job
            whose remaining step count differs from the config's).
        """
        cfg = self.config
        rc = cfg.resilience
        label = (
            f"{cfg.nx1}x{cfg.nx2}x{cfg.ncomp} {cfg.backend} "
            f"{cfg.nprx1}x{cfg.nprx2}"
        )
        rollbacks = 0
        interrupted: str | None = None
        # Anchor on the absolute step counter so a rollback (which
        # rewinds it) naturally re-runs the lost steps, while a
        # restarted simulation still advances nsteps further.
        segment = cfg.nsteps if nsteps is None else int(nsteps)
        target_step = self.integrator.step_count + segment
        with perf_stat() as ps:
            if rc is not None and rc.max_rollbacks > 0 and cfg.checkpoint_interval > 0:
                # Initial checkpoint so the first rollback has a target.
                self._write_checkpoint(self.integrator.step_count)
            while self.integrator.step_count < target_step:
                try:
                    step_report = self.step()
                except StepRetryExhaustedError as exc:
                    if rc is None or self._last_checkpoint is None:
                        raise
                    if rollbacks >= rc.max_rollbacks:
                        raise RollbackExhaustedError(
                            f"rollback budget ({rc.max_rollbacks}) exhausted "
                            f"at step {self.integrator.step_count + 1}"
                        ) from exc
                    rollbacks += 1
                    self.counters.rollbacks += 1
                    self._rollback()
                    continue
                self._maybe_checkpoint(self.integrator.step_count)
                if step_callback is not None:
                    try:
                        step_callback(self, step_report)
                    except RunInterrupted as exc:
                        interrupted = exc.reason
                        step_now = self.integrator.step_count
                        if cfg.checkpoint_path and (
                            self._last_checkpoint is None
                            or self._last_checkpoint[1] != step_now
                        ):
                            self._write_checkpoint(step_now)
                        break
        report = RunReport(
            config_label=label,
            problem_name=self.problem.name,
            nranks=cfg.nranks,
            rank=self.rank,
            steps=list(self.step_reports),
            perf=ps.result,
            profiler=self.profiler,
            tracer=self.tracer,
            final_time=self.time,
            final_energy=self.integrator.total_energy(),
            interrupted=interrupted,
        )
        report.counters.merge(self.counters)
        if self.comm is not None:
            report.counters.merge(self.comm.counters)
        if telemetry.enabled() and ps.result.wall_seconds > 0:
            # Per-backend achieved GF/s gauge for `repro top`'s kernel
            # panel; observation only (reads the finished report).
            get_metrics().set(
                f"repro.kernel.{cfg.backend}.gflops",
                report.counters.achieved_gflops(ps.result.wall_seconds),
            )
        if rc is not None:
            report.resilience = ResilienceReport.from_counters(
                report.counters,
                degraded_solves=self.integrator.degraded_solves,
                degraded_seconds=self.integrator.degraded_seconds,
            )
        err = self.solution_error()
        if err is not None:
            report.solution_error = err
        return report

    # ------------------------------------------------------------------
    def solution_error(self) -> float | None:
        """Global relative L2 error vs the problem's analytic solution."""
        exact = self.problem.analytic_solution(self.mesh, self.basis, self.time)
        if exact is None:
            return None
        diff = self.integrator.E.interior - exact
        num = float(np.sum(diff * diff * self.mesh.volumes[None]))
        den = float(np.sum(exact * exact * self.mesh.volumes[None]))
        if self.comm is not None and self.comm.size > 1:
            # Both norms ride one batched reduction round.
            num, den = (float(v) for v in self.comm.allreduce_batch([num, den]))
        return float(np.sqrt(num / den)) if den > 0 else None


def run_parallel(
    config: V2DConfig, problem: Problem, timeout: float | None = 300.0
) -> list[RunReport]:
    """Run the configured topology over the SPMD substrate.

    Returns the per-rank :class:`RunReport` list (rank order); rank 0's
    report carries the shared global diagnostics (total energy, error).
    """

    def rank_body(comm: Communicator) -> RunReport:
        cart = CartComm.create(
            comm, nx1=config.nx1, nx2=config.nx2,
            nprx1=config.nprx1, nprx2=config.nprx2,
        )
        sim = Simulation(config, problem, cart=cart)
        return sim.run()

    if config.nranks == 1:
        return [Simulation(config, problem).run()]
    return run_spmd(
        config.nranks, rank_body, timeout=timeout,
        transport=config.transport or None,
    )
