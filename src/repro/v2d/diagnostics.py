"""Run diagnostics: conservation ledgers and spectral moments.

Production rad-hydro codes ship an accounting layer that answers "where
did the energy go" every few steps; reviewers of the paper's test
problem would ask the same of this reproduction.  The ledger tracks
volume-integrated radiation energy, the matter thermal energy (when
matter coupling is on), and boundary losses inferred from the balance;
the spectral tools summarize the multigroup distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.mesh import Mesh2D
from repro.parallel.comm import Communicator
from repro.transport.groups import RadiationBasis
from repro.transport.integrator import RadiationIntegrator

Array = np.ndarray


@dataclass(frozen=True)
class EnergySample:
    """One ledger row."""

    step: int
    time: float
    radiation: float
    matter: float

    @property
    def total(self) -> float:
        return self.radiation + self.matter


@dataclass
class EnergyLedger:
    """Time series of global energy accounting for one run."""

    cv: float = 1.0
    samples: list[EnergySample] = field(default_factory=list)

    def record(self, integ: RadiationIntegrator) -> EnergySample:
        """Sample the integrator's current state (collective)."""
        rad = integ.total_energy()
        local_matter = float(np.sum(integ.rho * self.cv * integ.temp * integ.mesh.volumes))
        comm = integ.comm
        if comm is not None and comm.size > 1:
            local_matter = float(comm.allreduce(local_matter))
        s = EnergySample(
            step=integ.step_count, time=integ.time,
            radiation=rad, matter=local_matter,
        )
        self.samples.append(s)
        return s

    # ------------------------------------------------------------------
    @property
    def initial(self) -> EnergySample:
        if not self.samples:
            raise ValueError("ledger is empty")
        return self.samples[0]

    @property
    def latest(self) -> EnergySample:
        if not self.samples:
            raise ValueError("ledger is empty")
        return self.samples[-1]

    def boundary_loss(self) -> float:
        """Energy unaccounted for since the first sample.

        With closed (reflecting) boundaries and conservative physics
        this is zero to solver tolerance; with vacuum boundaries it is
        the energy radiated away (positive).
        """
        return self.initial.total - self.latest.total

    def radiation_change(self) -> float:
        return self.latest.radiation - self.initial.radiation

    def table(self) -> str:
        lines = [
            f"{'step':>6} {'time':>12} {'E_rad':>14} {'E_matter':>14} {'total':>14}"
        ]
        for s in self.samples:
            lines.append(
                f"{s.step:>6} {s.time:>12.6g} {s.radiation:>14.8g} "
                f"{s.matter:>14.8g} {s.total:>14.8g}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Spectral diagnostics
# ---------------------------------------------------------------------------
def group_spectrum(
    E: Array, basis: RadiationBasis, mesh: Mesh2D, comm: Communicator | None = None
) -> Array:
    """Volume-integrated energy per (species, group): ``(ns, ng)``."""
    if E.shape[0] != basis.ncomp:
        raise ValueError("component count mismatch")
    out = np.empty((basis.nspecies, basis.ngroups))
    for u in range(basis.ncomp):
        s, g = basis.unpack(u)
        out[s, g] = float(np.sum(E[u] * mesh.volumes))
    if comm is not None and comm.size > 1:
        out = np.asarray(comm.allreduce(out))
    return out


def mean_group_energy(spectrum_row: Array, basis: RadiationBasis) -> float:
    """Energy-weighted mean group centre for one species' spectrum."""
    total = spectrum_row.sum()
    if total <= 0:
        raise ValueError("empty spectrum")
    return float((spectrum_row * basis.groups.centers).sum() / total)
