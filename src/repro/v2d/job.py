"""Embeddable single-job entrypoint: one run in, one plain dict out.

:func:`run_job` is the unit of work the campaign engine schedules: it
accepts a :class:`~repro.v2d.config.V2DConfig` (or its ``to_dict``
form, which is what crosses a worker-process boundary), runs the
configured simulation -- serially or over the thread-SPMD substrate
when the topology asks for more ranks -- and returns a JSON-
serializable summary.  Everything non-deterministic (wall/CPU seconds,
profile fractions) is confined to the ``"timing"`` subtree so result
consumers (the content-addressed cache, the campaign aggregator) can
compare payloads bitwise modulo timing.
"""

from __future__ import annotations

from typing import Any

from repro.monitor.counters import Counters
from repro.monitor.trace import merge_summaries
from repro.problems import get_problem
from repro.v2d.config import V2DConfig
from repro.v2d.report import RunReport
from repro.v2d.simulation import Simulation, run_parallel

#: Result-payload schema version (bump on incompatible changes; part of
#: the campaign cache key, so a bump invalidates stale entries).
RESULT_SCHEMA = 1

#: Keys under which non-deterministic (timing-derived) values live.
TIMING_KEY = "timing"


def run_job(
    config: V2DConfig | dict,
    problem: str = "gaussian-pulse",
    timeout: float | None = None,
) -> dict[str, Any]:
    """Run one configured simulation and summarize it as a plain dict.

    Parameters
    ----------
    config:
        The run configuration, as a :class:`V2DConfig` or its
        ``to_dict`` serialization.
    problem:
        Test-problem name (see :data:`repro.problems.PROBLEMS`).
    timeout:
        Deadlock watchdog handed to the SPMD substrate for decomposed
        runs (seconds); ``None`` uses the substrate default.

    Returns
    -------
    dict
        Deterministic run summary (solver work, convergence, energy,
        error, merged counters) plus a ``"timing"`` subtree of
        wall-clock measurements.  Exceptions propagate; the campaign
        worker is the layer that converts them into failure records.
    """
    cfg = config if isinstance(config, V2DConfig) else V2DConfig.from_dict(config)
    prob = get_problem(problem)
    if cfg.nranks == 1:
        reports = [Simulation(cfg, prob).run()]
    else:
        kwargs = {} if timeout is None else {"timeout": timeout}
        reports = run_parallel(cfg, prob, **kwargs)
    return summarize_reports(cfg, problem, reports)


def summarize_reports(
    cfg: V2DConfig, problem: str, reports: list[RunReport]
) -> dict[str, Any]:
    """Fold per-rank :class:`RunReport` objects into the job payload.

    Rank 0 carries the shared global diagnostics (final energy,
    solution error); counters are summed over ranks into the global
    totals the paper's per-rank PAPI exports would be merged into.
    """
    root = reports[0]
    counters = Counters()
    for rep in reports:
        counters.merge(rep.counters)
    result: dict[str, Any] = {
        "schema": RESULT_SCHEMA,
        "problem": problem,
        "label": root.config_label,
        "nranks": cfg.nranks,
        "nprx1": cfg.nprx1,
        "nprx2": cfg.nprx2,
        "backend": cfg.backend,
        "steps": root.nsteps,
        "solves": root.total_solves,
        "iterations": root.total_iterations,
        "converged": bool(root.all_converged),
        "final_time": float(root.final_time),
        "final_energy": float(root.final_energy),
        "solution_error": (
            None if root.solution_error is None else float(root.solution_error)
        ),
        "counters": counters.snapshot(),
        "recoveries": counters.recoveries,
        TIMING_KEY: {
            "wall_seconds": max(rep.wall_seconds for rep in reports),
            "cpu_seconds": sum(rep.cpu_seconds for rep in reports),
        },
    }
    mv = root.matvec_fraction()
    if mv is not None:
        result[TIMING_KEY]["matvec_fraction"] = mv
    # Trace summaries are timing-derived (span counts are deterministic
    # but microseconds are not), so they ride the volatile subtree.
    tracers = [rep.tracer for rep in reports if rep.tracer is not None]
    if tracers:
        result[TIMING_KEY]["trace"] = merge_summaries(
            [t.summary() for t in tracers]
        )
    return result


def strip_timing(result: dict[str, Any]) -> dict[str, Any]:
    """The deterministic view of a job payload (timing subtree removed)."""
    return {k: v for k, v in result.items() if k != TIMING_KEY}
