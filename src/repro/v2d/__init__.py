"""The integrated V2D-style simulation driver.

Ties every substrate together the way V2D's main program does:
configuration (grid, NPRX1 x NPRX2 topology, solver options), problem
setup, the timestep loop with three radiation solves per step
(optionally interleaved with hydro sweeps and matter coupling),
performance instrumentation, and checkpointing.

* :mod:`repro.v2d.config` -- :class:`V2DConfig`, including the paper's
  exact test-problem configuration.
* :mod:`repro.v2d.simulation` -- :class:`Simulation` (one rank's
  driver) and :func:`run_parallel` (the ``mpiexec`` path).
* :mod:`repro.v2d.report` -- :class:`RunReport` run summaries.
* :mod:`repro.v2d.job` -- :func:`run_job`, the embeddable one-run
  entrypoint the campaign engine schedules.
"""

from repro.v2d.config import V2DConfig
from repro.v2d.diagnostics import EnergyLedger, EnergySample, group_spectrum
from repro.v2d.job import run_job, strip_timing, summarize_reports
from repro.v2d.report import RunReport
from repro.v2d.simulation import Simulation, run_parallel

__all__ = [
    "V2DConfig",
    "Simulation",
    "run_parallel",
    "run_job",
    "strip_timing",
    "summarize_reports",
    "RunReport",
    "EnergyLedger",
    "EnergySample",
    "group_spectrum",
]
