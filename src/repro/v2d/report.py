"""Run reports: what a V2D run prints at the end.

Collects per-step solver diagnostics, timing (wall + CPU via the
``perf stat`` substitute), PAPI-style counters merged over ranks, and
the TAU-style per-routine breakdown -- everything Secs. II-C/II-E of
the paper measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.monitor.counters import Counters
from repro.monitor.profiler import Profiler
from repro.monitor.timers import PerfStatResult
from repro.monitor.trace import Tracer
from repro.resilience.report import ResilienceReport
from repro.transport.integrator import StepReport


@dataclass
class RunReport:
    """Summary of one simulation run (per rank, or merged)."""

    config_label: str
    problem_name: str
    nranks: int
    rank: int
    steps: list[StepReport] = field(default_factory=list)
    perf: PerfStatResult | None = None
    counters: Counters = field(default_factory=Counters)
    profiler: Profiler | None = None
    tracer: Tracer | None = None
    final_time: float = 0.0
    final_energy: float = 0.0
    solution_error: float | None = None
    resilience: ResilienceReport | None = None
    #: Why the run paused early (RunInterrupted reason), None if it
    #: completed its full step budget.
    interrupted: str | None = None

    # ------------------------------------------------------------------
    @property
    def nsteps(self) -> int:
        return len(self.steps)

    @property
    def total_solves(self) -> int:
        return sum(len(s.solves) for s in self.steps)

    @property
    def total_iterations(self) -> int:
        return sum(s.iterations for s in self.steps)

    @property
    def all_converged(self) -> bool:
        return all(s.converged for s in self.steps)

    @property
    def wall_seconds(self) -> float:
        return self.perf.wall_seconds if self.perf else 0.0

    @property
    def cpu_seconds(self) -> float:
        return self.perf.cpu_seconds if self.perf else 0.0

    def matvec_fraction(self) -> float | None:
        """Fraction of run time spent in the Matvec (Sec. II-E's ratio)."""
        if self.profiler is None:
            return None
        return self.profiler.inclusive_fraction("MATVEC", rank=self.rank)

    def bicgstab_fraction(self) -> float | None:
        if self.profiler is None:
            return None
        return self.profiler.inclusive_fraction("BiCGSTAB", rank=self.rank)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"V2D run: {self.problem_name} [{self.config_label}]",
            f"  ranks: {self.nranks} (this report: rank {self.rank})",
            f"  steps: {self.nsteps}, linear solves: {self.total_solves}, "
            f"BiCGSTAB iterations: {self.total_iterations}",
            f"  converged: {self.all_converged}"
            + (f" (interrupted: {self.interrupted})" if self.interrupted else ""),
            f"  final time: {self.final_time:.6g}, total radiation energy: "
            f"{self.final_energy:.6g}",
        ]
        if self.perf is not None:
            lines.append(
                f"  wall: {self.wall_seconds:.3f} s, cpu: {self.cpu_seconds:.3f} s"
            )
        if self.solution_error is not None:
            lines.append(f"  L2 error vs analytic solution: {self.solution_error:.3e}")
        mv = self.matvec_fraction()
        if mv is not None and mv > 0:
            lines.append(f"  Matvec fraction of instrumented time: {100 * mv:.1f}%")
        bs = self.bicgstab_fraction()
        if bs is not None and bs > 0:
            lines.append(f"  BiCGSTAB fraction of instrumented time: {100 * bs:.1f}%")
        if self.counters.messages_sent:
            lines.append(
                f"  MPI: {self.counters.messages_sent} messages, "
                f"{self.counters.bytes_sent:,} bytes, "
                f"{self.counters.reductions} reductions"
            )
        if self.resilience is not None and (
            self.resilience.total_injected or self.resilience.total_recoveries
        ):
            lines.extend("  " + ln for ln in self.resilience.summary().splitlines())
        return "\n".join(lines)

    def flat_profile(self) -> str:
        if self.profiler is None:
            return "(profiling disabled)"
        return self.profiler.flat_profile(rank=self.rank)
