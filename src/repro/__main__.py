"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's artifacts or run the simulator:

* ``table1``      -- Table I (paper vs calibrated model)
* ``table2``      -- Table II (paper vs kernel model)
* ``breakdown``   -- the Sec. II-E time attributions
* ``dilution``    -- the kernel-vs-application SVE summary
* ``fig1``        -- the sparsity-pattern report
* ``calibration`` -- the Table-I fit coefficients and residuals
* ``scaling``     -- the future-work projection (larger problem, more ranks)
* ``run``         -- run the Gaussian-pulse problem at a chosen scale
* ``trace``       -- traced run exporting a Perfetto-loadable timeline
* ``chaos``       -- seeded fault-injection sweep against a clean baseline
* ``driver``      -- the Sec. II-F kernel driver on this substrate
* ``campaign``    -- sharded scaling-study runner with a result cache
* ``perf``        -- performance ledger: run / report / check / baseline
* ``serve``       -- simulation-as-a-service job server (asyncio TCP)
* ``submit``      -- client for a running ``serve`` instance
* ``top``         -- live telemetry view (serve scrape or sampler file)

Every command also accepts ``--log-level``/``--log-json`` (structured
logging to stderr) -- the flags are attached globally in :func:`main`.
"""

from __future__ import annotations

import argparse
import sys


def _parse_inject(spec: str | None) -> dict[str, float]:
    """Parse ``--inject "numeric=0.001,comm=0.01,io=0.2"`` into rates."""
    rates = {"numeric": 0.0, "comm": 0.0, "io": 0.0}
    if not spec:
        return rates
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            site, value = part.split("=")
            rates[site.strip()]  # KeyError on unknown site
            rates[site.strip()] = float(value)
        except (ValueError, KeyError):
            raise SystemExit(
                f"bad --inject entry {part!r}; expected site=rate with site "
                f"in {sorted(rates)}"
            ) from None
        if not 0.0 <= rates[site.strip()] <= 1.0:
            raise SystemExit(
                f"bad --inject entry {part!r}: rate must be a probability "
                f"in [0, 1], got {rates[site.strip()]}"
            )
    return rates


def _make_resilience(args: argparse.Namespace):
    """Build a ResilienceConfig from CLI flags, or None when inert."""
    from repro.resilience import ResilienceConfig, RetryPolicy

    rates = _parse_inject(getattr(args, "inject", None))
    if not any(rates.values()) and not getattr(args, "resilient", False):
        return None
    return ResilienceConfig(
        seed=args.inject_seed,
        numeric_rate=rates["numeric"],
        comm_rate=rates["comm"],
        io_rate=rates["io"],
        retry=RetryPolicy(
            max_attempts=args.retry_attempts,
            backoff=args.retry_backoff,
            dt_floor=args.dt_floor,
        ),
        max_rollbacks=args.max_rollbacks,
    )


def _transport_name(value: str) -> str:
    """Validate ``--transport`` against the links registry at parse time.

    Registry-driven (not a hardcoded ``choices=``) so plugged-in
    transports are accepted and the error names what actually exists.
    """
    from repro.parallel.links import registered_transports

    if value not in registered_transports():
        raise argparse.ArgumentTypeError(
            f"unknown transport {value!r}; registered transports: "
            f"{', '.join(registered_transports())}"
        )
    return value


def _backend_name(value: str) -> str:
    """Validate ``--backend`` against the backend registry at parse time.

    Registry-driven (not a hardcoded ``choices=``) so plugged-in
    backends -- the optional ``jit`` tier today, a GPU tier tomorrow --
    are accepted without CLI edits and the error names what exists.
    """
    from repro.backend import available_backends

    if value not in available_backends():
        raise argparse.ArgumentTypeError(
            f"unknown backend {value!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    return value


def _add_backend_flag(p: argparse.ArgumentParser, default: str = "vector") -> None:
    p.add_argument("--backend", type=_backend_name, default=default,
                   metavar="NAME",
                   help="execution backend: vector (SVE analogue, default), "
                        "scalar (no-SVE), or jit (compiled fused loops; "
                        f"needs numba) [default: {default}]")


def _add_transport_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--transport", type=_transport_name, default=None,
                   metavar="NAME",
                   help="comm transport: in-process threads (default) or "
                        "one forked process per rank over shared memory; "
                        "unset falls back to $REPRO_TRANSPORT "
                        "(registered: threads, mp)")


def _resolve_transport(args: argparse.Namespace) -> str:
    from repro.parallel.links import (
        TRANSPORT_ENV,
        TransportUnavailableError,
        get_transport,
        registered_transports,
    )

    try:
        return get_transport(getattr(args, "transport", None)).name
    except TransportUnavailableError as exc:
        # An explicit flag was validated at parse time, so reaching
        # here means a bad $REPRO_TRANSPORT (or a platform without the
        # requested transport) -- fail at the front door, not inside
        # run_spmd.
        raise SystemExit(
            f"repro: {exc} (check --transport / ${TRANSPORT_ENV}; "
            f"registered transports: {', '.join(registered_transports())})"
        ) from None


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--inject", metavar="SITE=RATE[,...]", default=None,
                   help='fault rates, e.g. "numeric=0.001,comm=0.01,io=0.2"')
    p.add_argument("--inject-seed", type=int, default=0,
                   help="chaos seed (replays exactly per seed+rank)")
    p.add_argument("--resilient", action="store_true",
                   help="arm recovery layers even with no injection")
    p.add_argument("--retry-attempts", type=int, default=3,
                   help="step attempts before escalating to rollback")
    p.add_argument("--retry-backoff", type=float, default=0.5,
                   help="dt multiplier per step retry")
    p.add_argument("--dt-floor", type=float, default=1e-12,
                   help="smallest dt the backoff may reach")
    p.add_argument("--max-rollbacks", type=int, default=2,
                   help="checkpoint-rollback budget for the whole run")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.problems import GaussianPulseProblem
    from repro.v2d import Simulation, V2DConfig, run_parallel

    cfg = V2DConfig(
        nx1=args.nx1, nx2=args.nx2, nsteps=args.nsteps, dt=args.dt,
        nprx1=args.nprx1, nprx2=args.nprx2,
        backend=args.backend, precond=args.precond,
        ganged=not args.classic, fused=not args.unfused,
        solver_tol=args.tol,
        checkpoint_path=args.checkpoint_path,
        checkpoint_interval=args.checkpoint_interval,
        resilience=_make_resilience(args),
        trace=bool(getattr(args, "trace", None)),
        transport=_resolve_transport(args),
    )
    problem = GaussianPulseProblem()
    with _run_sampler(args):
        if cfg.nranks == 1:
            reports = [Simulation(cfg, problem).run()]
        else:
            reports = run_parallel(cfg, problem)
    report = reports[0]
    print(report.summary())
    if args.profile:
        print()
        print(report.flat_profile())
    if getattr(args, "trace", None):
        code = _export_run_trace(reports, args.trace, problem.name)
        if code != 0:
            return code
    return 0 if report.all_converged else 1


def _run_sampler(args: argparse.Namespace):
    """``--telemetry PATH``: arm the gate and sample OpenMetrics to PATH.

    Returns a context manager wrapping the run; a no-op when the flag
    is unset so the default path stays bitwise-identical.
    """
    from contextlib import nullcontext

    path = getattr(args, "telemetry", None)
    if not path:
        return nullcontext()
    from repro.monitor import telemetry

    telemetry.set_enabled(True)
    return telemetry.Telemetry(path, interval=1.0)


def _export_run_trace(reports, path: str, problem_name: str) -> int:
    """Merge per-rank tracers, validate, write; 0 on a clean trace."""
    import sys as _sys

    from repro.monitor.trace import merged_payload, validate_trace, write_trace

    tracers = [rep.tracer for rep in reports if rep.tracer is not None]
    if not tracers:
        print("repro: no tracer attached to any rank report", file=_sys.stderr)
        return 1
    payload = merged_payload(
        tracers,
        metadata={"problem": problem_name, "nranks": len(reports)},
    )
    problems = validate_trace(payload)
    out = write_trace(payload, path)
    nevents = sum(len(t) for t in tracers)
    print(f"wrote {out}: {nevents} events over {len(tracers)} rank track(s)")
    if problems:
        print(f"trace validation failed ({len(problems)} problem(s)):",
              file=_sys.stderr)
        for msg in problems[:10]:
            print(f"  {msg}", file=_sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run the Gaussian pulse with tracing armed and export the timeline."""
    from repro.monitor.trace import merge_summaries
    from repro.problems import GaussianPulseProblem
    from repro.v2d import Simulation, V2DConfig, run_parallel

    cfg = V2DConfig(
        nx1=args.nx1, nx2=args.nx2, nsteps=args.nsteps, dt=args.dt,
        nprx1=args.nprx1, nprx2=args.nprx2,
        backend=args.backend, precond=args.precond,
        solver_tol=args.tol,
        trace=True,
        transport=_resolve_transport(args),
    )
    problem = GaussianPulseProblem()
    if cfg.nranks == 1:
        reports = [Simulation(cfg, problem).run()]
    else:
        reports = run_parallel(cfg, problem)
    code = _export_run_trace(reports, args.output, problem.name)

    tracers = [rep.tracer for rep in reports if rep.tracer is not None]
    summary = merge_summaries([t.summary() for t in tracers])
    spans = sorted(summary["spans"].items(), key=lambda kv: -kv[1]["us"])
    if spans:
        print(f"  {'span':<16} {'count':>8} {'total ms':>10}")
        for name, agg in spans[:12]:
            print(f"  {name:<16} {int(agg['count']):>8} "
                  f"{agg['us'] / 1000.0:>10.2f}")
    if summary["instants"]:
        marks = ", ".join(
            f"{name} x{n}" for name, n in sorted(summary["instants"].items())
        )
        print(f"  instants: {marks}")
    if code != 0:
        return code
    return 0 if reports[0].all_converged else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos sweep: clean baseline, then the same run under faults.

    Exits 0 only when the faulted run completes, the recovery machinery
    demonstrably engaged, and the final solution stays within tolerance
    of the fault-free baseline.
    """
    import tempfile

    from repro.problems import GaussianPulseProblem
    from repro.resilience import ResilienceReport
    from repro.v2d import Simulation, V2DConfig, run_parallel

    problem = GaussianPulseProblem()
    common = dict(
        nx1=args.nx1, nx2=args.nx2, nsteps=args.nsteps, dt=args.dt,
        nprx1=args.nprx1, nprx2=args.nprx2, precond=args.precond,
        backend=args.backend, solver_tol=args.tol, profile=False,
        transport=_resolve_transport(args),
    )

    def execute(cfg: V2DConfig):
        if cfg.nranks == 1:
            return [Simulation(cfg, problem).run()]
        return run_parallel(cfg, problem)

    baseline = execute(V2DConfig(**common))[0]
    err_ref = baseline.solution_error
    print(f"baseline: error {err_ref:.6e}, "
          f"energy {baseline.final_energy:.6e}")

    rc = _make_resilience(args)
    if rc is None:
        print("chaos: no fault rates given (--inject) -- nothing to sweep")
        return 2
    with tempfile.TemporaryDirectory() as tmp:
        cfg = V2DConfig(
            **common,
            checkpoint_path=f"{tmp}/chaos-ck",
            checkpoint_interval=max(1, args.nsteps // 4),
            resilience=rc,
        )
        reports = execute(cfg)

    merged = ResilienceReport()
    for rep in reports:
        if rep.resilience is not None:
            merged.merge(rep.resilience)
    chaos = reports[0]
    err = chaos.solution_error
    print(f"chaos:    error {err:.6e}, energy {chaos.final_energy:.6e}")
    print(merged.summary())

    import numpy as np

    tol = max(2.0 * err_ref, err_ref + args.error_margin)
    completed = chaos.nsteps >= args.nsteps
    recovered = merged.total_recoveries > 0
    accurate = err is not None and np.isfinite(err) and err <= tol
    print(
        f"verdict: completed={completed} recoveries={merged.total_recoveries} "
        f"error-ok={accurate} (tolerance {tol:.3e})"
    )
    return 0 if (completed and recovered and accurate) else 1


def _cmd_driver(args: argparse.Namespace) -> int:
    from repro.kernels import KernelDriver
    from repro.kernels.driver import format_table2, run_driver_spmd

    if args.ranks > 1:
        result = run_driver_spmd(
            args.ranks, n=args.n, reps=args.reps, backend=args.backend,
            transport=getattr(args, "transport", None),
            band_offset=min(200, args.n - 1),
        )
        print(result.table())
        return 0
    driver = KernelDriver(n=args.n, reps=args.reps,
                          band_offset=min(200, args.n - 1))
    no_sve, sve, _ratios = driver.compare()
    print(format_table2(no_sve, sve))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.perfmodel import CostModel

    model = CostModel()
    print(
        f"Future-work projection: problem scaled {args.scale}x per "
        f"direction ({200 * args.scale}x{100 * args.scale} zones)"
    )
    print(f"{'Np':>4} {'topology':>10} {'fujitsu':>9} {'cray-opt':>9}")
    fu = model.scaling_study("fujitsu", scale=args.scale)
    cr = model.scaling_study("cray-opt", scale=args.scale)
    for f, c in zip(fu, cr):
        print(
            f"{f.np_:>4} {f.nprx1:>5}x{f.nprx2:<4} {f.total:>9.2f} {c.total:>9.2f}"
        )
    return 0


def _report_cmd(name: str):
    def run(_args: argparse.Namespace) -> int:
        from repro.perfmodel import (
            breakdown_report,
            dilution_report,
            table1_report,
            table2_report,
        )
        from repro.perfmodel.calibrate import calibration_report

        if name == "fig1":
            from repro.linalg import pattern_report

            print(pattern_report(200, 100, 2))
            return 0
        if name == "roofline":
            from repro.perfmodel import RooflineModel

            print(RooflineModel().report())
            return 0
        fn = {
            "table1": table1_report,
            "table2": table2_report,
            "breakdown": breakdown_report,
            "dilution": dilution_report,
            "calibration": calibration_report,
        }[name]
        print(fn())
        return 0

    return run


class _VersionAction(argparse.Action):
    """``--version`` with the git fingerprint resolved only on demand
    (running git on every CLI invocation would be wasted work)."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.perf.schema import version_string

        print(f"{parser.prog} {version_string()}")
        parser.exit()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="V2D / SVE study reproduction"
    )
    parser.add_argument(
        "--version", action=_VersionAction,
        help="show version, git revision and dirty flag",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "table2", "breakdown", "dilution", "calibration",
                 "fig1", "roofline"):
        p = sub.add_parser(name, help=f"print the {name} report")
        p.set_defaults(fn=_report_cmd(name))

    p = sub.add_parser("scaling", help="future-work scaling projection")
    p.add_argument("--scale", type=int, default=2)
    p.set_defaults(fn=_cmd_scaling)

    p = sub.add_parser("run", help="run the Gaussian-pulse problem")
    p.add_argument("--nx1", type=int, default=48)
    p.add_argument("--nx2", type=int, default=48)
    p.add_argument("--nsteps", type=int, default=5)
    p.add_argument("--dt", type=float, default=2e-4)
    p.add_argument("--nprx1", type=int, default=1)
    p.add_argument("--nprx2", type=int, default=1)
    _add_backend_flag(p)
    p.add_argument("--precond", choices=("spai", "jacobi", "none"), default="spai")
    p.add_argument("--classic", action="store_true",
                   help="textbook BiCGSTAB instead of ganged reductions")
    p.add_argument("--unfused", action="store_true",
                   help="separate kernel launches instead of the fused hot path")
    p.add_argument("--tol", type=float, default=1e-10)
    p.add_argument("--profile", action="store_true")
    p.add_argument("--checkpoint-path", default=None)
    p.add_argument("--checkpoint-interval", type=int, default=0)
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="arm the tracer and write the merged per-rank "
                        "timeline (Chrome trace-event JSON) to PATH")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="arm live telemetry and sample OpenMetrics to "
                        "PATH every second (poll with `repro top --file`)")
    _add_transport_flag(p)
    _add_resilience_flags(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "trace",
        help="traced Gaussian-pulse run exporting a Perfetto timeline",
    )
    p.add_argument("--nx1", type=int, default=48)
    p.add_argument("--nx2", type=int, default=48)
    p.add_argument("--nsteps", type=int, default=5)
    p.add_argument("--dt", type=float, default=2e-4)
    p.add_argument("--nprx1", type=int, default=1)
    p.add_argument("--nprx2", type=int, default=1)
    _add_backend_flag(p)
    p.add_argument("--precond", choices=("spai", "jacobi", "none"), default="spai")
    p.add_argument("--tol", type=float, default=1e-10)
    p.add_argument("--output", default="trace.json",
                   help="trace artifact path (default: trace.json)")
    _add_transport_flag(p)
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "chaos", help="seeded fault-injection sweep vs a clean baseline"
    )
    p.add_argument("--nx1", type=int, default=32)
    p.add_argument("--nx2", type=int, default=16)
    p.add_argument("--nsteps", type=int, default=6)
    p.add_argument("--dt", type=float, default=2e-4)
    p.add_argument("--nprx1", type=int, default=1)
    p.add_argument("--nprx2", type=int, default=1)
    p.add_argument("--precond", choices=("spai", "jacobi", "none"),
                   default="jacobi")
    _add_backend_flag(p)
    p.add_argument("--tol", type=float, default=1e-10)
    p.add_argument("--error-margin", type=float, default=1e-3,
                   help="absolute slack allowed over the baseline error")
    _add_transport_flag(p)
    _add_resilience_flags(p)
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("driver", help="the Sec. II-F kernel driver")
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--reps", type=int, default=50)
    p.add_argument("--ranks", type=int, default=1,
                   help="run the driver on an SPMD job of this many ranks")
    _add_backend_flag(p, default="scalar")
    _add_transport_flag(p)
    p.set_defaults(fn=_cmd_driver)

    from repro.campaign.cli import add_campaign_parser
    from repro.monitor.log import add_logging_flags, configure_from_args
    from repro.monitor.top import add_top_parser
    from repro.perf.cli import add_perf_parser
    from repro.serve.cli import add_serve_parser, add_submit_parser

    add_campaign_parser(sub)
    add_perf_parser(sub)
    add_serve_parser(sub)
    add_submit_parser(sub)
    add_top_parser(sub)

    # Structured-logging flags ride on every verb (aliases share parser
    # objects, so dedupe by identity before attaching).
    seen: set[int] = set()
    for verb in sub.choices.values():
        if id(verb) not in seen:
            seen.add(id(verb))
            add_logging_flags(verb)

    args = parser.parse_args(argv)
    configure_from_args(args)
    try:
        return args.fn(args)
    except KeyError as exc:
        from repro.backend.jit import NUMBA_HINT

        # The backend *name* validates at parse time; whether the jit
        # tier can actually run is decided when the backend is built.
        # Surface that one failure as a front-door message, not a
        # traceback.
        if exc.args and exc.args[0] == NUMBA_HINT:
            raise SystemExit(f"repro: {NUMBA_HINT}") from None
        raise


if __name__ == "__main__":
    sys.exit(main())
