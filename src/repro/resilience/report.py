"""Resilience observability: injected faults and recoveries by layer.

Everything the harness does is counted -- injections by site,
recoveries at the transport, solver, step and run layers, and the wall
time spent off the production (fused) path -- so a chaos sweep can
assert "the run completed *and* the machinery actually worked" rather
than "nothing happened to fail".
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.monitor.counters import Counters


@dataclass
class ResilienceReport:
    """Per-run (or rank-merged) resilience accounting."""

    faults_numeric: int = 0
    faults_comm: int = 0
    faults_io: int = 0
    comm_retransmits: int = 0
    solver_escalations: int = 0
    solver_fallbacks: int = 0
    step_retries: int = 0
    rollbacks: int = 0
    io_recoveries: int = 0
    degraded_solves: int = 0
    degraded_seconds: float = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_counters(
        cls,
        counters: Counters,
        degraded_solves: int = 0,
        degraded_seconds: float = 0.0,
    ) -> "ResilienceReport":
        return cls(
            faults_numeric=counters.faults_numeric,
            faults_comm=counters.faults_comm,
            faults_io=counters.faults_io,
            comm_retransmits=counters.comm_retransmits,
            solver_escalations=counters.solver_escalations,
            solver_fallbacks=counters.solver_fallbacks,
            step_retries=counters.step_retries,
            rollbacks=counters.rollbacks,
            io_recoveries=counters.io_recoveries,
            degraded_solves=degraded_solves,
            degraded_seconds=degraded_seconds,
        )

    @property
    def total_injected(self) -> int:
        return self.faults_numeric + self.faults_comm + self.faults_io

    @property
    def total_recoveries(self) -> int:
        """Recovery actions across every layer.

        In decomposed runs, lockstep events (retries, rollbacks,
        escalations) are counted once per participating rank, the same
        sum-over-ranks convention as the other merged counters.
        """
        return (
            self.comm_retransmits
            + self.solver_escalations
            + self.solver_fallbacks
            + self.step_retries
            + self.rollbacks
            + self.io_recoveries
        )

    # ------------------------------------------------------------------
    def merge(self, other: "ResilienceReport") -> None:
        """Accumulate ``other`` into ``self`` (e.g. across ranks)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def to_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["total_injected"] = self.total_injected
        out["total_recoveries"] = self.total_recoveries
        return out

    def summary(self) -> str:
        lines = [
            "resilience:",
            f"  injected faults: {self.total_injected} "
            f"(numeric {self.faults_numeric}, comm {self.faults_comm}, "
            f"io {self.faults_io})",
            f"  recoveries: {self.total_recoveries} "
            f"(transport {self.comm_retransmits}, "
            f"solver {self.solver_escalations}+{self.solver_fallbacks}, "
            f"step {self.step_retries}, rollback {self.rollbacks}, "
            f"io {self.io_recoveries})",
        ]
        if self.degraded_solves:
            lines.append(
                f"  degraded mode: {self.degraded_solves} solves, "
                f"{self.degraded_seconds:.3f} s off the fused path"
            )
        return "\n".join(lines)
