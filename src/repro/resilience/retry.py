"""Step-level recovery: exponential dt backoff.

When a timestep fails validation (non-finite or unphysical state that
even the solver-level ladder could not repair), the driver rolls the
in-memory state back to the start of the step and retries with a
smaller dt -- a stiffer implicit system is better conditioned and a
smaller step moves the iterate less, so transient corruption usually
washes out.  The policy bounds the attempts, the shrink factor, and
the absolute dt floor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RetryPolicy:
    """Bounds for the step-level dt-backoff retry loop.

    Parameters
    ----------
    max_attempts:
        Total tries per step, including the first (1 disables retry).
    backoff:
        dt multiplier applied per retry, in (0, 1].
    dt_floor:
        Absolute lower bound on the retried dt.
    """

    max_attempts: int = 3
    backoff: float = 0.5
    dt_floor: float = 1e-12

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 < self.backoff <= 1.0:
            raise ValueError("backoff must be in (0, 1]")
        if self.dt_floor <= 0.0:
            raise ValueError("dt_floor must be positive")

    def next_dt(self, dt: float) -> float:
        """The dt for the next attempt after a failure at ``dt``."""
        return max(dt * self.backoff, self.dt_floor)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff": self.backoff,
            "dt_floor": self.dt_floor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)
