"""Solver-level recovery: the escalation ladder.

BiCGSTAB already restarts itself on breakdown (``rho ~ 0``); when a
solve still comes back failed -- not converged, or with a non-finite
iterate, the signature of injected numeric/comm corruption -- the
ladder degrades outward through progressively more conservative
methods:

1. **fused BiCGSTAB** (the production hot path),
2. **unfused ganged BiCGSTAB** from the pristine initial guess (same
   math, separate kernel launches -- sidesteps corruption localized in
   the fused path or its reused workspace),
3. **GMRES(m)** (monotone residuals, no breakdowns) as the fallback of
   last resort.

Every attempt is recorded in :class:`SolveStats` -- method, outcome,
and wall time -- so diagnostics can report degraded-mode time.  In
decomposed runs the accept/escalate decision is made *globally* (one
MIN all-reduce of a validity flag) so every rank walks the ladder in
lockstep; a corrupted flag contribution compares false and simply
escalates everywhere, never diverges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.kernels.fused import SolverWorkspace
from repro.kernels.suite import KernelSuite
from repro.linalg.bicgstab import SolveResult, bicgstab
from repro.linalg.gmres import gmres
from repro.linalg.operators import LinearOperator
from repro.linalg.spai import Preconditioner
from repro.monitor import flight, telemetry
from repro.monitor.counters import Counters
from repro.monitor.trace import Tracer, get_metrics
from repro.parallel.comm import Communicator, ReduceOp

Array = np.ndarray

#: Ladder rungs, in escalation order.
LADDER = ("bicgstab-fused", "bicgstab-unfused", "gmres")


@dataclass
class SolveAttempt:
    """One rung of the ladder: which method ran, and how it went."""

    method: str
    result: SolveResult
    ok: bool
    seconds: float


@dataclass
class SolveStats:
    """Full escalation record for one linear solve."""

    site: int = 0
    attempts: list[SolveAttempt] = field(default_factory=list)

    @property
    def final(self) -> SolveResult:
        return self.attempts[-1].result

    @property
    def ok(self) -> bool:
        return self.attempts[-1].ok

    @property
    def escalations(self) -> int:
        """Ladder rungs taken beyond the first attempt."""
        return len(self.attempts) - 1

    @property
    def degraded(self) -> bool:
        return len(self.attempts) > 1

    @property
    def degraded_seconds(self) -> float:
        """Wall time spent past the production path."""
        return sum(a.seconds for a in self.attempts[1:])

    @property
    def methods(self) -> tuple[str, ...]:
        return tuple(a.method for a in self.attempts)


def solution_ok(
    result: SolveResult,
    comm: Communicator | None = None,
    *,
    global_check: bool = False,
) -> bool:
    """Whether a solve result is acceptable (converged and finite).

    With ``global_check`` in decomposed runs, the local verdicts are
    combined by a MIN all-reduce so every rank returns the same answer;
    a NaN-corrupted flag fails the ``>= 1.0`` comparison on every rank
    alike, which escalates conservatively instead of diverging.
    """
    ok = bool(result.converged) and bool(np.all(np.isfinite(result.x)))
    if global_check and comm is not None and comm.size > 1:
        flag = comm.allreduce(1.0 if ok else 0.0, op=ReduceOp.MIN)
        ok = bool(flag >= 1.0)
    return ok


def solve_with_escalation(
    op: LinearOperator,
    b: Array,
    x0: Array | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 1000,
    M: Preconditioner | None = None,
    suite: KernelSuite | None = None,
    comm: Communicator | None = None,
    ganged: bool = True,
    fused: bool = True,
    workspace: SolverWorkspace | None = None,
    gmres_restart: int = 30,
    counters: Counters | None = None,
    site: int = 0,
    tracer: Tracer | None = None,
    trace_rank: int = 0,
) -> SolveStats:
    """Run the solver ladder; returns the per-attempt record.

    The first rung honours the caller's ``ganged``/``fused`` choice; a
    failure degrades to the unfused ganged iteration (when the first
    rung was fused) and then to GMRES.  Escalations are counted into
    ``counters`` (``solver_escalations`` / ``solver_fallbacks``).
    Every retry restarts from the caller's pristine ``x0`` -- the
    solvers never mutate it -- so corruption in a failed iterate
    cannot leak into the next rung.
    """
    stats = SolveStats(site=site)

    def attempt(method: str, run) -> bool:
        t0 = time.perf_counter()
        if tracer is not None:
            with tracer.span(
                f"solve_attempt:{method}", rank=trace_rank,
                cat="resilience", args={"site": site},
            ):
                result = run()
        else:
            result = run()
        seconds = time.perf_counter() - t0
        ok = solution_ok(result, comm, global_check=True)
        stats.attempts.append(SolveAttempt(method, result, ok, seconds))
        return ok

    def mark(event: str) -> None:
        if tracer is not None:
            tracer.instant(
                event, rank=trace_rank, cat="resilience", args={"site": site}
            )
        if telemetry.enabled():
            last = stats.attempts[-1]
            flight.record(
                trace_rank, "escalation", event, site=site,
                failed_method=last.method, iterations=last.result.iterations,
                seconds=round(last.seconds, 6),
            )
            get_metrics().inc(f"repro.resilience.{event}s")

    use_fused = fused and ganged
    first = "bicgstab-fused" if use_fused else (
        "bicgstab-unfused" if ganged else "bicgstab-classic"
    )
    if attempt(first, lambda: bicgstab(
        op, b, x0=x0, tol=tol, maxiter=maxiter, M=M, suite=suite, comm=comm,
        ganged=ganged, fused=use_fused,
        workspace=workspace if use_fused else None,
        tracer=tracer, trace_rank=trace_rank,
    )):
        return stats

    if use_fused:
        if counters is not None:
            counters.solver_escalations += 1
        mark("solver_escalation")
        if attempt("bicgstab-unfused", lambda: bicgstab(
            op, b, x0=x0, tol=tol, maxiter=maxiter, M=M, suite=suite, comm=comm,
            ganged=True, fused=False,
            tracer=tracer, trace_rank=trace_rank,
        )):
            return stats

    if counters is not None:
        counters.solver_fallbacks += 1
    mark("solver_fallback")
    attempt("gmres", lambda: gmres(
        op, b, x0=x0, tol=tol, maxiter=maxiter, restart=gmres_restart,
        M=M, suite=suite, comm=comm,
    ))
    return stats
