"""Deterministic, seedable fault injection.

The harness models the transient-fault classes that long A64FX-class
campaigns contend with (and that the stellar-merger and FLASH
supernova production studies report handling as a matter of course):

* **numeric** -- silent data corruption inside a kernel: a NaN, an
  Inf, a flipped bit in a double, or a bit-flip-sized magnitude
  perturbation, applied to the output of a backend primitive.
* **comm** -- a message lost, corrupted, or delayed on the wire.
* **io** -- a checkpoint write that fails outright or is torn
  (truncated) mid-write.

Determinism: every site draws from its own ``numpy`` PCG64 stream
seeded by ``(seed, rank, site)``, so a chaos run replays exactly given
the same seed and the same call sequence, and the comm stream is not
perturbed by how many kernels ran (and vice versa).

:class:`FaultyBackend` is the kernel-level injection site: a proxy
around any :class:`~repro.backend.base.Backend` that corrupts the
output of the compute primitives (the five V2D routines and their
fused forms) with a per-launch probability.  It can be installed
explicitly, or process-wide through
:func:`repro.backend.dispatch.install_fault_wrapper`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend.base import Array, Backend
from repro.monitor.counters import Counters

#: Injection sites, in stream-seeding order.
SITES = ("numeric", "comm", "io")

#: How a numeric fault corrupts a value.
NUMERIC_KINDS = ("nan", "inf", "perturb", "bitflip")

#: What happens to a faulted message.
COMM_KINDS = ("drop", "corrupt", "delay")

#: What happens to a faulted checkpoint write.
IO_KINDS = ("fail", "truncate")


class FaultInjector:
    """Seeded fault source shared by every injection site of one rank.

    Parameters
    ----------
    seed, rank:
        Stream seeds; runs replay exactly for equal values.
    numeric_rate, comm_rate, io_rate:
        Per-event fault probabilities (per kernel launch / message /
        checkpoint write) in ``[0, 1]``.
    numeric_kinds:
        Subset of :data:`NUMERIC_KINDS` to draw corruption styles from.
    counters:
        Optional :class:`~repro.monitor.counters.Counters` receiving
        ``faults_*`` increments, so injections surface in the standard
        diagnostics.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        rank: int = 0,
        numeric_rate: float = 0.0,
        comm_rate: float = 0.0,
        io_rate: float = 0.0,
        numeric_kinds: Sequence[str] = NUMERIC_KINDS,
        counters: Counters | None = None,
    ) -> None:
        rates = {"numeric": numeric_rate, "comm": comm_rate, "io": io_rate}
        for site, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{site} fault rate must be in [0, 1], got {rate}")
        unknown = set(numeric_kinds) - set(NUMERIC_KINDS)
        if unknown or not numeric_kinds:
            raise ValueError(
                f"numeric_kinds must be a non-empty subset of {NUMERIC_KINDS}"
            )
        self.seed = int(seed)
        self.rank = int(rank)
        self.rates = rates
        self.numeric_kinds = tuple(numeric_kinds)
        self.counters = counters
        self._rng = {
            site: np.random.default_rng([self.seed, self.rank, i])
            for i, site in enumerate(SITES)
        }
        self.injected: dict[str, int] = {site: 0 for site in SITES}
        self.by_kind: dict[str, int] = {}

    # ------------------------------------------------------------------
    def rng(self, site: str) -> np.random.Generator:
        return self._rng[site]

    def armed(self, site: str) -> bool:
        """Whether this site can fire at all."""
        return self.rates[site] > 0.0

    def fire(self, site: str) -> str | None:
        """One Bernoulli draw for ``site``; the fault kind, or ``None``.

        Firing is counted (locally and in ``counters``) the moment it
        happens, so injected-fault totals are exact even when a
        downstream layer masks the fault.
        """
        rate = self.rates[site]
        if rate <= 0.0:
            return None
        rng = self._rng[site]
        if rng.random() >= rate:
            return None
        if site == "numeric":
            kind = str(rng.choice(self.numeric_kinds))
        elif site == "comm":
            kind = str(rng.choice(COMM_KINDS))
        else:
            kind = str(rng.choice(IO_KINDS))
        self.injected[site] += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        c = self.counters
        if c is not None:
            c.faults_injected += 1
            if site == "numeric":
                c.faults_numeric += 1
            elif site == "comm":
                c.faults_comm += 1
            else:
                c.faults_io += 1
        return kind

    # ------------------------------------------------------------------
    def numeric_kind(self, site: str = "numeric") -> str:
        """Draw a corruption style from ``site``'s stream."""
        return str(self._rng[site].choice(self.numeric_kinds))

    def corrupt_value(self, x: float, kind: str, site: str = "numeric") -> float:
        """Return ``x`` corrupted in the requested style."""
        rng = self._rng[site]
        if kind == "nan":
            return float("nan")
        if kind == "inf":
            return float("inf") if rng.random() < 0.5 else float("-inf")
        if kind == "perturb":
            # Exponent-bit-flip-sized magnitude error.
            base = x if x != 0.0 else 1.0
            return float(base * 2.0 ** int(rng.integers(20, 60)))
        if kind == "bitflip":
            bits = np.array([x], dtype=np.float64).view(np.uint64)
            bits ^= np.uint64(1) << np.uint64(int(rng.integers(0, 64)))
            return float(bits.view(np.float64)[0])
        raise ValueError(f"unknown numeric fault kind {kind!r}")

    def corrupt_array(self, arr: Array, kind: str, site: str = "numeric") -> None:
        """Corrupt one element of ``arr`` in place (float arrays only)."""
        if arr.size == 0 or arr.dtype.kind != "f":
            return
        rng = self._rng[site]
        loc = np.unravel_index(int(rng.integers(arr.size)), arr.shape)
        arr[loc] = self.corrupt_value(float(arr[loc]), kind, site=site)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(seed={self.seed}, rank={self.rank}, "
            f"rates={self.rates}, injected={self.injected})"
        )


class FaultyBackend(Backend):
    """Backend proxy that corrupts compute-kernel outputs.

    Each compute primitive (DPROD/DAXPY/DSCAL/DDAXPY/MATVEC and the
    fused pairings) makes one ``fire("numeric")`` draw per launch; on a
    hit, one element of the output (or the scalar result) is corrupted
    in the drawn style.  Data-movement primitives (copy/fill/scale/
    add/sub/mul) pass through untouched so the blast radius matches
    the paper's five instrumented routines.
    """

    def __init__(self, inner: Backend, injector: FaultInjector) -> None:
        super().__init__(vector_bits=inner.vector_bits)
        self.inner = inner
        self.injector = injector
        self.name = f"{inner.name}+faults"
        self.vectorized = inner.vectorized

    def vector_op_count(self, n: int) -> int:
        return self.inner.vector_op_count(n)

    # ------------------------------------------------------------------
    def _arr(self, out: Array) -> Array:
        kind = self.injector.fire("numeric")
        if kind is not None:
            self.injector.corrupt_array(out, kind)
        return out

    def _val(self, v: float) -> float:
        kind = self.injector.fire("numeric")
        if kind is not None:
            return self.injector.corrupt_value(float(v), kind)
        return v

    # ------------------------------------------------------------------
    # Corrupted compute primitives
    # ------------------------------------------------------------------
    def dot(self, x, y):
        return self._val(self.inner.dot(x, y))

    def multi_dot(self, pairs):
        return self._arr(self.inner.multi_dot(pairs))

    def norm2(self, x):
        return self._val(self.inner.norm2(x))

    def axpy(self, a, x, y, out=None, work=None):
        return self._arr(self.inner.axpy(a, x, y, out=out, work=work))

    def dscal(self, c, d, y, out=None, work=None):
        return self._arr(self.inner.dscal(c, d, y, out=out, work=work))

    def ddaxpy(self, a, x, b, y, z, out=None, work=None):
        return self._arr(self.inner.ddaxpy(a, x, b, y, z, out=out, work=work))

    def stencil_apply(self, diag, west, east, south, north, x, out=None, work=None):
        return self._arr(
            self.inner.stencil_apply(diag, west, east, south, north, x, out=out, work=work)
        )

    def banded_matvec(self, offsets, bands, x, out=None):
        return self._arr(self.inner.banded_matvec(offsets, bands, x, out=out))

    def axpy_dot(self, a, x, y, w=None, out=None, work=None):
        out, d = self.inner.axpy_dot(a, x, y, w=w, out=out, work=work)
        return self._arr(out), d

    def dscal_dot(self, c, d, y, w=None, out=None, work=None):
        out, dd = self.inner.dscal_dot(c, d, y, w=w, out=out, work=work)
        return self._arr(out), dd

    def stencil_apply_dots(self, diag, west, east, south, north, x, dots, out=None):
        out, vals = self.inner.stencil_apply_dots(
            diag, west, east, south, north, x, dots, out=out
        )
        return self._arr(out), vals

    # ------------------------------------------------------------------
    # Clean pass-throughs (data movement)
    # ------------------------------------------------------------------
    def scale(self, alpha, x, out=None):
        return self.inner.scale(alpha, x, out=out)

    def copy(self, x, out=None):
        return self.inner.copy(x, out=out)

    def fill(self, x, value):
        return self.inner.fill(x, value)

    def add(self, x, y, out=None):
        return self.inner.add(x, y, out=out)

    def sub(self, x, y, out=None):
        return self.inner.sub(x, y, out=out)

    def mul(self, x, y, out=None):
        return self.inner.mul(x, y, out=out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyBackend({self.inner!r})"
