"""Resilience configuration: what to inject, how to recover.

Attaching a :class:`ResilienceConfig` to a
:class:`~repro.v2d.config.V2DConfig` arms the whole stack: numeric
faults wrap the execution backend, comm faults wrap the communicator,
io faults strike checkpoint writes, and the three recovery layers
(solver escalation, step retry, run rollback) come online.  With no
resilience config attached (the default) every hook is inert and the
run is bit-identical to an unwired build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.monitor.counters import Counters
from repro.resilience.faults import NUMERIC_KINDS, FaultInjector
from repro.resilience.retry import RetryPolicy


@dataclass
class ResilienceConfig:
    """Fault-injection rates and recovery-policy knobs.

    Parameters
    ----------
    seed:
        Chaos seed; together with the rank it fixes every fault draw.
    numeric_rate, comm_rate, io_rate:
        Per-event injection probabilities (0 disables a site).
    numeric_kinds:
        Corruption styles for numeric/comm payload faults.
    escalation:
        Arm the solver-level ladder (fused -> unfused -> GMRES).
    retry:
        Step-level dt-backoff policy.
    max_rollbacks:
        Run-level checkpoint-rollback budget (0 disables rollback).
    """

    seed: int = 0
    numeric_rate: float = 0.0
    comm_rate: float = 0.0
    io_rate: float = 0.0
    numeric_kinds: tuple[str, ...] = NUMERIC_KINDS
    escalation: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_rollbacks: int = 2

    def __post_init__(self) -> None:
        for name in ("numeric_rate", "comm_rate", "io_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be non-negative")
        self.numeric_kinds = tuple(self.numeric_kinds)
        unknown = set(self.numeric_kinds) - set(NUMERIC_KINDS)
        if unknown or not self.numeric_kinds:
            raise ValueError(
                f"numeric_kinds must be a non-empty subset of {NUMERIC_KINDS}"
            )

    # ------------------------------------------------------------------
    @property
    def injection_enabled(self) -> bool:
        return self.numeric_rate > 0 or self.comm_rate > 0 or self.io_rate > 0

    def make_injector(
        self, rank: int = 0, counters: Counters | None = None
    ) -> FaultInjector | None:
        """This rank's seeded injector; ``None`` when nothing injects."""
        if not self.injection_enabled:
            return None
        return FaultInjector(
            seed=self.seed,
            rank=rank,
            numeric_rate=self.numeric_rate,
            comm_rate=self.comm_rate,
            io_rate=self.io_rate,
            numeric_kinds=self.numeric_kinds,
            counters=counters,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "numeric_rate": self.numeric_rate,
            "comm_rate": self.comm_rate,
            "io_rate": self.io_rate,
            "numeric_kinds": list(self.numeric_kinds),
            "escalation": self.escalation,
            "retry": self.retry.to_dict(),
            "max_rollbacks": self.max_rollbacks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceConfig":
        kw = dict(data)
        if "numeric_kinds" in kw:
            kw["numeric_kinds"] = tuple(kw["numeric_kinds"])
        if "retry" in kw and not isinstance(kw["retry"], RetryPolicy):
            kw["retry"] = RetryPolicy.from_dict(kw["retry"])
        return cls(**kw)
