"""Communication fault injection: the ``FaultyCommunicator``.

Wraps a :class:`~repro.parallel.comm.Communicator` so every outgoing
message makes one fault draw.  Three things can happen to a faulted
message:

* **drop** -- the message is lost on the wire.  The wrapper models the
  reliable-transport response: the loss is detected (missing ack) and
  the payload retransmitted, counted as a transport-layer recovery
  (``comm_retransmits``).  Blocking matched receives therefore never
  deadlock -- exactly the guarantee MPI's reliable transport gives the
  application.
* **corrupt** -- one numeric element of the payload is corrupted
  before delivery.  Corruption is restricted to payloads where the
  downstream control flow stays rank-consistent: point-to-point user
  traffic (halo strips) and root-bound reduction contributions, whose
  combined result is re-broadcast identically to every rank.  A
  corrupting fault drawn for any other payload (broadcast fan-out,
  scatter, control tuples) is expressed as a drop instead, so a fault
  can never make ranks *disagree* about control flow and deadlock the
  simulated world.
* **delay** -- counted only: with blocking matched receives a late
  delivery is semantically invisible, so the event exercises the
  accounting path without changing results.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.parallel.comm import _COLL_TAG, Communicator
from repro.resilience.faults import FaultInjector

#: Collective tags whose payloads are rank-consistent to corrupt:
#: contributions sent *to* a reduction root (reduce, allreduce_batch),
#: combined there and re-broadcast identically to every rank.
_CORRUPTIBLE_COLL_TAGS = frozenset({_COLL_TAG + 4, _COLL_TAG + 5})


def _is_numeric_payload(payload: Any) -> bool:
    if isinstance(payload, np.ndarray):
        return payload.dtype.kind == "f" and payload.size > 0
    if isinstance(payload, (float, np.floating)):
        return True
    if isinstance(payload, list) and payload:
        return all(_is_numeric_payload(p) for p in payload)
    return False


class FaultyCommunicator(Communicator):
    """A communicator endpoint with an unreliable (but recovering) wire."""

    def __init__(self, inner: Communicator, injector: FaultInjector) -> None:
        super().__init__(inner.world, inner.rank, counters=inner.counters)
        self.injector = injector

    # ------------------------------------------------------------------
    def _corruptible(self, payload: Any, tag: int) -> bool:
        if not (tag < _COLL_TAG or tag in _CORRUPTIBLE_COLL_TAGS):
            return False
        return _is_numeric_payload(payload)

    def _corrupt(self, payload: Any) -> Any:
        inj = self.injector
        kind = inj.numeric_kind(site="comm")
        if isinstance(payload, np.ndarray):
            corrupted = payload.copy()
            inj.corrupt_array(corrupted, kind, site="comm")
            return corrupted
        if isinstance(payload, list):
            out = list(payload)
            idx = int(inj.rng("comm").integers(len(out)))
            out[idx] = self._corrupt(out[idx])
            return out
        return inj.corrupt_value(float(payload), kind, site="comm")

    # ------------------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        kind = self.injector.fire("comm")
        if kind == "corrupt" and not self._corruptible(payload, tag):
            # The fault still strikes the message, but an uncorruptible
            # control payload is modelled as lost instead of garbled.
            kind = "drop"
        if kind == "corrupt":
            payload = self._corrupt(payload)
        elif kind == "drop":
            # Lost on the wire; the reliable transport detects the
            # missing ack and retransmits -- the delivery below is the
            # retransmission.
            if self.counters is not None:
                self.counters.comm_retransmits += 1
        # "delay" (and None) fall through: delivery order is unchanged.
        super().send(payload, dest, tag)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyCommunicator(rank={self.rank}, size={self.size})"
