"""Fault injection + layered recovery.

Long campaigns on A64FX-class machines contend with transient faults,
solver breakdowns and interrupted jobs; production radiation-hydro
studies treat checkpoint/restart discipline and failure handling as
prerequisites, not afterthoughts.  This package gives the reproduction
both halves of that story:

* a deterministic, seedable **fault-injection harness**
  (:class:`FaultInjector`) with three sites -- kernel-level numeric
  corruption (:class:`FaultyBackend`), message-level comm faults
  (:class:`FaultyCommunicator`), and checkpoint-write io faults -- and
* a **layered recovery policy**: BiCGSTAB breakdown restarts, the
  solver escalation ladder (fused -> unfused -> GMRES,
  :func:`solve_with_escalation`), step-level dt backoff
  (:class:`RetryPolicy`), and run-level checkpoint rollback, each
  observable through :class:`ResilienceReport`.

Arm everything by attaching a :class:`ResilienceConfig` to the run
configuration; with none attached the hooks are inert and results are
bit-identical to an unwired build.
"""

from repro.resilience.config import ResilienceConfig
from repro.resilience.comm import FaultyCommunicator
from repro.resilience.errors import (
    NonFiniteStateError,
    ResilienceError,
    RollbackExhaustedError,
    StepRetryExhaustedError,
)
from repro.resilience.escalation import (
    SolveAttempt,
    SolveStats,
    solution_ok,
    solve_with_escalation,
)
from repro.resilience.faults import (
    COMM_KINDS,
    IO_KINDS,
    NUMERIC_KINDS,
    FaultInjector,
    FaultyBackend,
)
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import RetryPolicy

__all__ = [
    "COMM_KINDS",
    "IO_KINDS",
    "NUMERIC_KINDS",
    "FaultInjector",
    "FaultyBackend",
    "FaultyCommunicator",
    "NonFiniteStateError",
    "ResilienceConfig",
    "ResilienceError",
    "ResilienceReport",
    "RetryPolicy",
    "RollbackExhaustedError",
    "SolveAttempt",
    "SolveStats",
    "StepRetryExhaustedError",
    "solution_ok",
    "solve_with_escalation",
]
