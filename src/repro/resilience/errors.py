"""Typed failure taxonomy for the resilience layer.

Each exception marks the boundary at which a failure was *detected* so
the matching recovery layer can act: a :class:`NonFiniteStateError`
escapes a timestep and is handled by the step-level dt-backoff retry;
a :class:`StepRetryExhaustedError` escapes the retry loop and is
handled by the run-level checkpoint rollback; a
:class:`RollbackExhaustedError` means every layer gave up and the run
aborts loudly instead of committing garbage.
"""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base class for failures surfaced by the recovery machinery."""


class NonFiniteStateError(ResilienceError):
    """A solve or step produced non-finite (or unphysical) state.

    Raised at the transport-integrator boundary *before* the offending
    solution is committed, so the failure is attributed to the step and
    solve site that produced it instead of propagating silently.
    """

    def __init__(self, message: str, *, site: int = 0, step: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.step = step


class StepRetryExhaustedError(ResilienceError):
    """A timestep kept failing through every dt-backoff retry."""


class RollbackExhaustedError(ResilienceError):
    """The run-level checkpoint-rollback budget is spent."""
