"""Problem protocol.

A problem supplies initial data (and problem-specific physics choices)
for a mesh tile; the simulation driver owns everything else.  Problems
must be *tile-aware*: ``initial_state`` receives the tile's mesh (whose
coordinates are global), so a decomposed run initializes exactly the
same global field as a serial one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.grid.mesh import Mesh2D
from repro.parallel.halo import BoundaryCondition
from repro.transport.fld import FluxLimiter
from repro.transport.groups import RadiationBasis
from repro.transport.opacity import ConstantOpacity, OpacityModel

Array = np.ndarray


@dataclass
class ProblemState:
    """Initial data on one tile."""

    E: Array                 # (ncomp, nx1, nx2) radiation energy density
    rho: Array               # (nx1, nx2) material density
    temp: Array              # (nx1, nx2) material temperature
    hydro_primitive: Array | None = None  # (4, nx1, nx2) if the problem runs hydro


class Problem(ABC):
    """Base class for test problems."""

    #: short identifier used in reports and checkpoint names
    name: str = "problem"
    #: whether the hydrodynamics module participates
    uses_hydro: bool = False

    @abstractmethod
    def initial_state(self, mesh: Mesh2D, basis: RadiationBasis) -> ProblemState:
        """Initial data on (this tile of) the mesh."""

    def opacity(self) -> OpacityModel:
        """Opacity model (constant by default)."""
        return ConstantOpacity(kappa_a=1.0)

    def limiter(self) -> FluxLimiter:
        return FluxLimiter.LEVERMORE_POMRANING

    def boundary_condition(self) -> BoundaryCondition | dict[str, BoundaryCondition]:
        return BoundaryCondition.DIRICHLET0

    def analytic_solution(
        self, mesh: Mesh2D, basis: RadiationBasis, t: float
    ) -> Array | None:
        """Closed-form radiation field at time ``t``, if one exists."""
        return None
