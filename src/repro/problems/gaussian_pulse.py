"""The paper's radiation test problem: a diffusing 2-D Gaussian pulse.

"The test diffusive radiation transport problem ... involves the
diffusion of a 2-D Gaussian pulse of radiation and does not involve
hydrodynamic evolution.  This particular test problem was chosen ...
because the principal computational effort is expended in the solution
of a large, sparse, memory-bandwidth-limited linear system" (Sec. II-A).

With a constant total opacity and the unlimited (``lambda = 1/3``)
diffusion coefficient, the evolution is the linear heat equation with
``D = c / (3 kappa_t)``, whose 2-D Green's-function solution is::

    E(r, t) = Q / (4 pi D (t + t0)) * exp( -r^2 / (4 D (t + t0)) )

so a pulse initialized at width ``sqrt(2 D t0)`` stays Gaussian -- the
integration tests compare against this closed form.  Each species
carries an independent pulse (species 1 at ``amplitude_ratio`` of
species 0), optionally exchanging energy when the simulation enables a
coupling rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.mesh import Mesh2D
from repro.parallel.halo import BoundaryCondition
from repro.problems.base import Problem, ProblemState
from repro.transport.fld import FluxLimiter
from repro.transport.groups import RadiationBasis
from repro.transport.opacity import ConstantOpacity, OpacityModel

Array = np.ndarray


@dataclass
class GaussianPulseProblem(Problem):
    """Gaussian radiation pulse in a quiescent medium.

    Parameters
    ----------
    q_total:
        Pulse energy ``Q`` (per species-0 pulse).
    t0:
        Age of the initial pulse in the Green's-function sense; sets
        the initial width ``sigma^2 = 2 D t0``.
    kappa:
        Constant total opacity; ``D = c / (3 kappa)``.
    c_light:
        Speed of light in problem units.
    center:
        Pulse centre in (x1, x2); defaults to the domain centre used by
        the driver.
    amplitude_ratio:
        Species-1 pulse amplitude relative to species 0.
    floor:
        Additive energy floor keeping the field positive far from the
        pulse (the FLD Knudsen ratio divides by E).
    """

    name: str = "gaussian-pulse"
    uses_hydro: bool = False
    q_total: float = 1.0
    t0: float = 0.01
    kappa: float = 10.0
    c_light: float = 1.0
    center: tuple[float, float] = (0.5, 0.5)
    amplitude_ratio: float = 0.5
    floor: float = 1e-10

    def __post_init__(self) -> None:
        if self.t0 <= 0 or self.kappa <= 0 or self.q_total <= 0:
            raise ValueError("t0, kappa and q_total must be positive")

    @property
    def diffusivity(self) -> float:
        """The linear-limit diffusion coefficient ``c / (3 kappa)``."""
        return self.c_light / (3.0 * self.kappa)

    def _pulse(self, mesh: Mesh2D, t: float) -> Array:
        x1, x2 = mesh.centers()
        r2 = (x1 - self.center[0]) ** 2 + (x2 - self.center[1]) ** 2
        d4t = 4.0 * self.diffusivity * (t + self.t0)
        return self.q_total / (np.pi * d4t) * np.exp(-r2 / d4t)

    def initial_state(self, mesh: Mesh2D, basis: RadiationBasis) -> ProblemState:
        pulse = self._pulse(mesh, 0.0)
        E = np.empty((basis.ncomp,) + mesh.shape)
        for u in range(basis.ncomp):
            s, _g = basis.unpack(u)
            amp = 1.0 if s == 0 else self.amplitude_ratio
            E[u] = amp * pulse + self.floor
        return ProblemState(
            E=E, rho=np.ones(mesh.shape), temp=np.ones(mesh.shape)
        )

    def opacity(self) -> OpacityModel:
        # Pure scattering keeps the evolution conservative (no
        # absorption sink), matching the linear-diffusion analytic form.
        return ConstantOpacity(kappa_a=1e-14, kappa_s=self.kappa)

    def limiter(self) -> FluxLimiter:
        # The analytic solution lives in the unlimited diffusion limit.
        return FluxLimiter.DIFFUSION

    def boundary_condition(self) -> BoundaryCondition:
        return BoundaryCondition.DIRICHLET0

    def analytic_solution(
        self, mesh: Mesh2D, basis: RadiationBasis, t: float
    ) -> Array:
        """Green's-function solution at time ``t`` (all components)."""
        pulse = self._pulse(mesh, t)
        E = np.empty((basis.ncomp,) + mesh.shape)
        for u in range(basis.ncomp):
            s, _g = basis.unpack(u)
            amp = 1.0 if s == 0 else self.amplitude_ratio
            E[u] = amp * pulse + self.floor
        return E
