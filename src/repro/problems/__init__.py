"""Test problems.

* :mod:`repro.problems.gaussian_pulse` -- the paper's radiation test
  problem: diffusion of a 2-D Gaussian pulse, no hydrodynamics, with a
  closed-form solution in the linear (constant-D) limit.
* :mod:`repro.problems.sedov_blast` -- a point-energy blast wave
  (hydro-only workload, the kind V2D's supernova target implies).
* :mod:`repro.problems.radiative_shock` -- a coupled hydro + radiation
  configuration exercising matter coupling.
"""

from repro.problems.base import Problem, ProblemState
from repro.problems.gaussian_pulse import GaussianPulseProblem
from repro.problems.radiative_shock import RadiativeShockProblem
from repro.problems.sedov_blast import SedovBlastProblem

__all__ = [
    "Problem",
    "ProblemState",
    "GaussianPulseProblem",
    "SedovBlastProblem",
    "RadiativeShockProblem",
]
