"""Test problems.

* :mod:`repro.problems.gaussian_pulse` -- the paper's radiation test
  problem: diffusion of a 2-D Gaussian pulse, no hydrodynamics, with a
  closed-form solution in the linear (constant-D) limit.
* :mod:`repro.problems.sedov_blast` -- a point-energy blast wave
  (hydro-only workload, the kind V2D's supernova target implies).
* :mod:`repro.problems.radiative_shock` -- a coupled hydro + radiation
  configuration exercising matter coupling.
"""

from repro.problems.base import Problem, ProblemState
from repro.problems.gaussian_pulse import GaussianPulseProblem
from repro.problems.radiative_shock import RadiativeShockProblem
from repro.problems.sedov_blast import SedovBlastProblem

#: Problems addressable by name (campaign specs, CLI flags).
PROBLEMS: dict[str, type[Problem]] = {
    GaussianPulseProblem.name: GaussianPulseProblem,
    SedovBlastProblem.name: SedovBlastProblem,
    RadiativeShockProblem.name: RadiativeShockProblem,
}


def get_problem(name: str) -> Problem:
    """Instantiate the named test problem.

    Accepts both the canonical hyphenated names (``gaussian-pulse``)
    and underscore spellings (``gaussian_pulse``).
    """
    key = name.replace("_", "-")
    try:
        return PROBLEMS[key]()
    except KeyError:
        raise ValueError(
            f"unknown problem {name!r}; available: {sorted(PROBLEMS)}"
        ) from None


__all__ = [
    "Problem",
    "ProblemState",
    "PROBLEMS",
    "get_problem",
    "GaussianPulseProblem",
    "SedovBlastProblem",
    "RadiativeShockProblem",
]
