"""Radiative shock: the coupled hydro + radiation configuration.

A dense, hot slab drives a shock into a cold ambient medium while its
radiation diffuses ahead of the shock front and pre-heats the upstream
gas -- the textbook radiation-hydrodynamics interaction and the kind
of multi-physics interleaving that, per the paper's conclusion, keeps
whole-code SVE speedups far below kernel-level speedups.

The problem exercises every module at once: the hydro sweeps, the
three-solve radiation step with matter coupling, and (when decomposed)
the halo machinery for both field types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.mesh import Mesh2D
from repro.hydro.solver import HydroBC
from repro.parallel.halo import BoundaryCondition
from repro.problems.base import Problem, ProblemState
from repro.transport.fld import FluxLimiter
from repro.transport.groups import RadiationBasis
from repro.transport.opacity import OpacityModel, PowerLawOpacity

Array = np.ndarray


@dataclass
class RadiativeShockProblem(Problem):
    """Hot driver slab launching a radiative shock along x1.

    Parameters
    ----------
    rho_driver, rho_ambient:
        Densities of the slab (x1 < ``interface``) and the ambient gas.
    p_driver, p_ambient:
        Pressures; the driver is strongly over-pressured.  Material
        temperatures follow the one-fluid relation ``T = p / rho``
        (unit gas constant), keeping the radiation source consistent
        with the hydro state the driver feeds back each step.
    interface:
        x1 position of the initial discontinuity (domain units).
    """

    name: str = "radiative-shock"
    uses_hydro: bool = True
    rho_driver: float = 4.0
    rho_ambient: float = 1.0
    p_driver: float = 10.0
    p_ambient: float = 0.1
    interface: float = 0.25
    a_rad: float = 1.0

    def __post_init__(self) -> None:
        if self.rho_driver <= 0 or self.rho_ambient <= 0:
            raise ValueError("densities must be positive")
        if not 0.0 < self.interface < 1.0:
            raise ValueError("interface must be inside the unit domain")

    @property
    def t_driver(self) -> float:
        return self.p_driver / self.rho_driver

    @property
    def t_ambient(self) -> float:
        return self.p_ambient / self.rho_ambient

    def initial_state(self, mesh: Mesh2D, basis: RadiationBasis) -> ProblemState:
        x1, _x2 = mesh.centers()
        driver = x1 < self.interface

        w = np.empty((4,) + mesh.shape)
        w[0] = np.where(driver, self.rho_driver, self.rho_ambient)
        w[1] = 0.0
        w[2] = 0.0
        w[3] = np.where(driver, self.p_driver, self.p_ambient)

        temp = w[3] / w[0]  # one-fluid T = p / rho (unit gas constant)
        # Radiation initially in equilibrium with the local matter.
        E = np.empty((basis.ncomp,) + mesh.shape)
        fracs = basis.groups.planck_fractions_field(temp)
        for u in range(basis.ncomp):
            _s, g = basis.unpack(u)
            E[u] = self.a_rad * temp**4 * fracs[g] + 1e-10

        return ProblemState(E=E, rho=w[0].copy(), temp=temp, hydro_primitive=w)

    def opacity(self) -> OpacityModel:
        # Kramers-like: optically thick in the cold dense shell, thin in
        # the hot driver -- the gradient that lets radiation run ahead.
        return PowerLawOpacity(k0=5.0, a_rho=1.0, a_t=-1.5, scatter_fraction=0.3)

    def limiter(self) -> FluxLimiter:
        return FluxLimiter.LEVERMORE_POMRANING

    def boundary_condition(self) -> dict[str, BoundaryCondition]:
        return {
            "west": BoundaryCondition.REFLECT,
            "east": BoundaryCondition.DIRICHLET0,
            "south": BoundaryCondition.REFLECT,
            "north": BoundaryCondition.REFLECT,
        }

    def hydro_bc(self) -> dict[str, HydroBC]:
        return {
            "west": HydroBC.REFLECT,
            "east": HydroBC.OUTFLOW,
            "south": HydroBC.REFLECT,
            "north": HydroBC.REFLECT,
        }
