"""Sedov-like point blast (hydro-only workload).

V2D was "designed primarily for the purpose of simulating core
collapse supernovae"; the canonical hydro stress test for such codes
is a point energy deposition driving a strong blast wave into a cold
uniform medium.  We deposit energy in a small disk at the domain
centre and let the HLLC solver evolve it.

The test suite checks the physically robust properties rather than the
full self-similar profile: the shock stays circular (symmetry), it
expands monotonically, and total mass/energy are conserved in a closed
box.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.mesh import Mesh2D
from repro.hydro.solver import HydroBC
from repro.problems.base import Problem, ProblemState
from repro.transport.groups import RadiationBasis

Array = np.ndarray


@dataclass
class SedovBlastProblem(Problem):
    """Point blast into a cold uniform medium.

    Parameters
    ----------
    e_blast:
        Deposited energy.
    r_init:
        Radius of the deposition disk (in domain units).
    rho0, p0:
        Ambient density and (small) pressure.
    """

    name: str = "sedov-blast"
    uses_hydro: bool = True
    e_blast: float = 1.0
    r_init: float = 0.06
    rho0: float = 1.0
    p0: float = 1e-5
    gamma: float = 1.4
    center: tuple[float, float] = (0.5, 0.5)

    def __post_init__(self) -> None:
        if self.e_blast <= 0 or self.r_init <= 0 or self.rho0 <= 0:
            raise ValueError("blast parameters must be positive")

    def initial_state(self, mesh: Mesh2D, basis: RadiationBasis) -> ProblemState:
        x1, x2 = mesh.centers()
        r2 = (x1 - self.center[0]) ** 2 + (x2 - self.center[1]) ** 2
        inside = r2 <= self.r_init**2

        w = np.empty((4,) + mesh.shape)
        w[0] = self.rho0
        w[1] = 0.0
        w[2] = 0.0
        # Pressure from depositing e_blast uniformly over the disk area.
        area = np.pi * self.r_init**2
        p_blast = (self.gamma - 1.0) * self.e_blast / area
        w[3] = np.where(inside, p_blast, self.p0)

        shape = (basis.ncomp,) + mesh.shape
        return ProblemState(
            E=np.full(shape, 1e-10),
            rho=w[0].copy(),
            temp=np.full(mesh.shape, 1e-3),
            hydro_primitive=w,
        )

    def hydro_bc(self) -> HydroBC:
        return HydroBC.REFLECT

    @staticmethod
    def shock_radius(mesh: Mesh2D, rho: Array, center: tuple[float, float]) -> float:
        """Radius of the density maximum (the shell), for diagnostics."""
        x1, x2 = mesh.centers()
        r = np.sqrt((x1 - center[0]) ** 2 + (x2 - center[1]) ** 2)
        k = np.unravel_index(np.argmax(rho), rho.shape)
        return float(r[k])
