"""Checkpoint/restart on ``.npz`` archives.

A checkpoint stores the global radiation field, material state, clock
and step counter.  In decomposed runs the tiles are gathered to rank 0
before writing (one collective gather per field -- the message pattern
of a collective parallel HDF5 write) and scattered after reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.parallel.cart import CartComm

Array = np.ndarray

#: format marker stored in every archive
FORMAT_VERSION = 1


@dataclass
class Checkpoint:
    """In-memory image of a saved simulation state."""

    E: Array
    rho: Array
    temp: Array
    time: float
    step: int
    meta: dict[str, str]

    @property
    def ncomp(self) -> int:
        return self.E.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return self.E.shape[1], self.E.shape[2]


def gather_global_field(local: Array, cart: CartComm | None) -> Array | None:
    """Gather per-tile arrays into the global array on rank 0.

    ``local`` is ``(..., tile_nx1, tile_nx2)``; returns the assembled
    ``(..., nx1, nx2)`` on rank 0 and ``None`` elsewhere.  Serial runs
    (``cart is None``) return the input unchanged.
    """
    if cart is None:
        return local
    pieces = cart.comm.gather((cart.tile.i1, cart.tile.i2, local), root=0)
    if pieces is None:
        return None
    d = cart.decomp
    lead = local.shape[:-2]
    out = np.zeros(lead + (d.nx1, d.nx2), dtype=local.dtype)
    for (i1, i2, arr) in pieces:
        out[..., i1[0] : i1[1], i2[0] : i2[1]] = arr
    return out


def scatter_global_field(global_arr: Array | None, cart: CartComm | None) -> Array:
    """Inverse of :func:`gather_global_field` (root holds the array)."""
    if cart is None:
        assert global_arr is not None
        return global_arr
    if cart.rank == 0:
        assert global_arr is not None
        tiles = [
            global_arr[..., t.i1[0] : t.i1[1], t.i2[0] : t.i2[1]].copy()
            for t in cart.decomp.tiles()
        ]
    else:
        tiles = None
    return cart.comm.scatter(tiles, root=0)


def save_checkpoint(
    path: str | Path,
    E: Array,
    rho: Array,
    temp: Array,
    time: float,
    step: int,
    cart: CartComm | None = None,
    meta: dict[str, str] | None = None,
) -> Path | None:
    """Write a checkpoint; returns the path on the writing rank.

    In decomposed runs only rank 0 touches the filesystem; other ranks
    participate in the gathers and return ``None``.
    """
    ge = gather_global_field(E, cart)
    gr = gather_global_field(rho, cart)
    gt = gather_global_field(temp, cart)
    if cart is not None and cart.rank != 0:
        return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = dict(meta or {})
    np.savez_compressed(
        path,
        format_version=FORMAT_VERSION,
        E=ge,
        rho=gr,
        temp=gt,
        time=float(time),
        step=int(step),
        meta_keys=np.array(sorted(meta), dtype=object),
        meta_vals=np.array([meta[k] for k in sorted(meta)], dtype=object),
    )
    return path


def load_checkpoint(path: str | Path, cart: CartComm | None = None) -> Checkpoint:
    """Read a checkpoint; every rank receives its own tile.

    In decomposed runs rank 0 reads the archive and scatters tiles; the
    returned :class:`Checkpoint` then holds *tile-local* fields.
    """
    if cart is None or cart.rank == 0:
        with np.load(path, allow_pickle=True) as z:
            version = int(z["format_version"])
            if version != FORMAT_VERSION:
                raise ValueError(f"unsupported checkpoint version {version}")
            E, rho, temp = z["E"], z["rho"], z["temp"]
            time, step = float(z["time"]), int(z["step"])
            meta = dict(zip(z["meta_keys"].tolist(), z["meta_vals"].tolist()))
    else:
        E = rho = temp = None
        time = step = meta = None

    if cart is not None:
        time, step, meta = cart.comm.bcast((time, step, meta), root=0)
        E = scatter_global_field(E, cart)
        rho = scatter_global_field(rho, cart)
        temp = scatter_global_field(temp, cart)
    return Checkpoint(E=E, rho=rho, temp=temp, time=time, step=step, meta=meta)
