"""Checkpoint/restart on ``.npz`` archives.

A checkpoint stores the global radiation field, material state, clock
and step counter.  In decomposed runs the tiles are gathered to rank 0
before writing (one collective gather per field -- the message pattern
of a collective parallel HDF5 write) and scattered after reading.

Crash safety: the archive is written to a temporary file in the same
directory and atomically renamed into place, so a crash (or injected
io fault) mid-write can never tear an existing checkpoint -- the
previous one stays intact and loadable.  Every archive carries a CRC32
content checksum that :func:`load_checkpoint` verifies; truncation or
bit rot raises :class:`CheckpointCorruptError` instead of surfacing a
raw zip/numpy trace, and a missing file or missing/ill-shaped fields
raise :class:`CheckpointNotFoundError` / :class:`CheckpointFormatError`
with an actionable message.
"""

from __future__ import annotations

import os
import pickle
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.io.atomic import crc32_update, tmp_path_for
from repro.parallel.cart import CartComm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.faults import FaultInjector

Array = np.ndarray

#: format marker stored in every archive (2 = checksummed archives;
#: version-1 archives without a checksum still load)
FORMAT_VERSION = 2

#: archive members every checkpoint must carry
_REQUIRED_FIELDS = ("format_version", "E", "rho", "temp", "time", "step")


class CheckpointError(Exception):
    """Base class for checkpoint I/O failures."""


class CheckpointNotFoundError(CheckpointError, FileNotFoundError):
    """The requested checkpoint file does not exist."""


class CheckpointCorruptError(CheckpointError):
    """The archive is truncated or its content checksum mismatches."""


class CheckpointFormatError(CheckpointError, ValueError):
    """The archive is readable but not a valid checkpoint."""


class CheckpointWriteError(CheckpointError, OSError):
    """A checkpoint write failed (or was fault-injected to fail)."""


@dataclass
class Checkpoint:
    """In-memory image of a saved simulation state."""

    E: Array
    rho: Array
    temp: Array
    time: float
    step: int
    meta: dict[str, str]

    @property
    def ncomp(self) -> int:
        return self.E.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return self.E.shape[1], self.E.shape[2]


def gather_global_field(local: Array, cart: CartComm | None) -> Array | None:
    """Gather per-tile arrays into the global array on rank 0.

    ``local`` is ``(..., tile_nx1, tile_nx2)``; returns the assembled
    ``(..., nx1, nx2)`` on rank 0 and ``None`` elsewhere.  Serial runs
    (``cart is None``) return the input unchanged.
    """
    if cart is None:
        return local
    pieces = cart.comm.gather((cart.tile.i1, cart.tile.i2, local), root=0)
    if pieces is None:
        return None
    d = cart.decomp
    lead = local.shape[:-2]
    out = np.zeros(lead + (d.nx1, d.nx2), dtype=local.dtype)
    for (i1, i2, arr) in pieces:
        out[..., i1[0] : i1[1], i2[0] : i2[1]] = arr
    return out


def scatter_global_field(global_arr: Array | None, cart: CartComm | None) -> Array:
    """Inverse of :func:`gather_global_field` (root holds the array)."""
    if cart is None:
        assert global_arr is not None
        return global_arr
    if cart.rank == 0:
        assert global_arr is not None
        tiles = [
            global_arr[..., t.i1[0] : t.i1[1], t.i2[0] : t.i2[1]].copy()
            for t in cart.decomp.tiles()
        ]
    else:
        tiles = None
    return cart.comm.scatter(tiles, root=0)


def _content_checksum(E: Array, rho: Array, temp: Array, time: float, step: int) -> int:
    """CRC32 over the physical content of a checkpoint."""
    crc = 0
    for arr in (E, rho, temp):
        crc = crc32_update(np.ascontiguousarray(arr, dtype=np.float64).tobytes(), crc)
    crc = crc32_update(np.float64(time).tobytes(), crc)
    crc = crc32_update(np.int64(step).tobytes(), crc)
    return crc


def save_checkpoint(
    path: str | Path,
    E: Array,
    rho: Array,
    temp: Array,
    time: float,
    step: int,
    cart: CartComm | None = None,
    meta: dict[str, str] | None = None,
    injector: "FaultInjector | None" = None,
) -> Path | None:
    """Write a checkpoint; returns the path on the writing rank.

    In decomposed runs only rank 0 touches the filesystem; other ranks
    participate in the gathers and return ``None``.  The write is
    atomic: data lands in ``<name>.tmp`` first and is renamed over the
    target only once complete, so an interrupted (or fault-injected)
    write leaves any previous checkpoint at ``path`` untouched.

    ``injector`` is the io fault-injection hook: a fired ``"fail"``
    fault aborts before anything is written; a fired ``"truncate"``
    fault models a torn write -- the temp file is chopped and the
    rename never happens.  Both raise :class:`CheckpointWriteError`.
    """
    ge = gather_global_field(E, cart)
    gr = gather_global_field(rho, cart)
    gt = gather_global_field(temp, cart)
    if cart is not None and cart.rank != 0:
        return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = dict(meta or {})
    kind = injector.fire("io") if injector is not None else None
    if kind == "fail":
        raise CheckpointWriteError(f"injected io fault: write of {path} failed")
    crc = _content_checksum(ge, gr, gt, time, step)
    tmp = tmp_path_for(path)
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                format_version=FORMAT_VERSION,
                E=ge,
                rho=gr,
                temp=gt,
                time=float(time),
                step=int(step),
                checksum=np.uint32(crc),
                meta_keys=np.array(sorted(meta), dtype=object),
                meta_vals=np.array([meta[k] for k in sorted(meta)], dtype=object),
            )
            fh.flush()
            os.fsync(fh.fileno())
        if kind == "truncate":
            # Torn write: half the archive made it to disk, the crash
            # happened before the atomic rename -- path is untouched.
            size = tmp.stat().st_size
            with open(tmp, "r+b") as fh:
                fh.truncate(max(size // 2, 1))
            raise CheckpointWriteError(
                f"injected io fault: write of {path} torn mid-archive"
            )
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_checkpoint(path: str | Path, cart: CartComm | None = None) -> Checkpoint:
    """Read a checkpoint; every rank receives its own tile.

    In decomposed runs rank 0 reads the archive and scatters tiles; the
    returned :class:`Checkpoint` then holds *tile-local* fields.

    Raises
    ------
    CheckpointNotFoundError
        No file at ``path`` (on the reading rank).
    CheckpointCorruptError
        Unreadable archive, or content checksum mismatch (truncation,
        bit rot, torn write).
    CheckpointFormatError
        Valid archive but wrong version, missing fields, or
        ill-shaped arrays.
    """
    if cart is None or cart.rank == 0:
        E, rho, temp, time, step, meta = _read_archive(Path(path))
    else:
        E = rho = temp = None
        time = step = meta = None

    if cart is not None:
        time, step, meta = cart.comm.bcast((time, step, meta), root=0)
        E = scatter_global_field(E, cart)
        rho = scatter_global_field(rho, cart)
        temp = scatter_global_field(temp, cart)
    return Checkpoint(E=E, rho=rho, temp=temp, time=time, step=step, meta=meta)


def _read_archive(path: Path):
    if not path.exists():
        raise CheckpointNotFoundError(
            f"checkpoint not found: {path} (was the run checkpointed, "
            f"and is the path the one passed to save_checkpoint?)"
        )
    try:
        z = np.load(path, allow_pickle=True)
    except (zipfile.BadZipFile, pickle.UnpicklingError, OSError, ValueError,
            EOFError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} is not a readable archive "
            f"(truncated or torn write?): {exc}"
        ) from exc
    with z:
        missing = [k for k in _REQUIRED_FIELDS if k not in z.files]
        if missing:
            raise CheckpointFormatError(
                f"checkpoint {path} is missing required fields {missing}; "
                f"found {sorted(z.files)}"
            )
        try:
            version = int(z["format_version"])
            if version not in (1, FORMAT_VERSION):
                raise CheckpointFormatError(
                    f"unsupported checkpoint version {version} in {path} "
                    f"(this build reads versions 1 and {FORMAT_VERSION})"
                )
            E, rho, temp = z["E"], z["rho"], z["temp"]
            time, step = float(z["time"]), int(z["step"])
            meta = dict(zip(z["meta_keys"].tolist(), z["meta_vals"].tolist())) \
                if "meta_keys" in z.files else {}
            stored_crc = int(z["checksum"]) if "checksum" in z.files else None
        except (zipfile.BadZipFile, zlib.error, OSError, EOFError) as exc:
            raise CheckpointCorruptError(
                f"checkpoint {path} is truncated or corrupt: {exc}"
            ) from exc
    if E.ndim != 3:
        raise CheckpointFormatError(
            f"checkpoint {path}: E must be (ncomp, nx1, nx2), got shape {E.shape}"
        )
    for name, arr in (("rho", rho), ("temp", temp)):
        if arr.shape != E.shape[1:]:
            raise CheckpointFormatError(
                f"checkpoint {path}: {name} shape {arr.shape} does not match "
                f"the grid {E.shape[1:]} of E"
            )
    if stored_crc is not None:
        crc = _content_checksum(E, rho, temp, time, step)
        if crc != stored_crc:
            raise CheckpointCorruptError(
                f"checkpoint {path} failed its content checksum "
                f"(stored {stored_crc:#010x}, computed {crc:#010x}); "
                f"the archive was corrupted after writing"
            )
    return E, rho, temp, time, step, meta
