"""Checkpoint / restart I/O (the HDF5 stand-in).

V2D uses HDF5 for parallel input and output.  Without the HDF5 C
library we substitute NumPy ``.npz`` archives with the same code path:
each rank contributes its tile, tiles are gathered collectively to
rank 0 (the analogue of a collective parallel write), and restart
scatters them back.

Writes are crash-safe (temp file + atomic rename) and archives carry a
content checksum verified on load; failures surface as the typed
``Checkpoint*Error`` hierarchy below.
"""

from repro.io.atomic import atomic_write_bytes, crc32_update, tmp_path_for
from repro.io.checkpoint import (
    Checkpoint,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointFormatError,
    CheckpointNotFoundError,
    CheckpointWriteError,
    load_checkpoint,
    save_checkpoint,
    gather_global_field,
)

__all__ = [
    "atomic_write_bytes",
    "crc32_update",
    "tmp_path_for",
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointNotFoundError",
    "CheckpointWriteError",
    "save_checkpoint",
    "load_checkpoint",
    "gather_global_field",
]
