"""Crash-safe file writes and content checksums.

The one write discipline every durable artifact in this codebase uses
(checkpoints in :mod:`repro.io.checkpoint`, cache entries in
:mod:`repro.campaign.cache`): data lands in a ``<name>.tmp`` sibling
first, is fsynced, and is renamed over the target only once complete.
A crash -- or an injected io fault -- mid-write can therefore never
tear an existing artifact; the previous one stays intact and loadable.

Checksums use CRC32 (:func:`crc32_update`) so every consumer shares
one notion of "content checksum" and one failure mode: a mismatch
means the artifact was corrupted *after* a successful atomic write
(bit rot, manual truncation), never a torn write.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

#: Suffix of the temporary sibling an atomic write stages into.
TMP_SUFFIX = ".tmp"


def tmp_path_for(path: Path) -> Path:
    """The temporary staging sibling for an atomic write to ``path``."""
    return path.with_name(path.name + TMP_SUFFIX)


def crc32_update(data: bytes, crc: int = 0) -> int:
    """Fold ``data`` into a running CRC32 (start with ``crc=0``)."""
    return zlib.crc32(data, crc)


def atomic_write_bytes(path: str | Path, data: bytes, fsync: bool = True) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path.

    Creates parent directories as needed.  On any failure the target is
    untouched and the temporary sibling is removed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = tmp_path_for(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path
