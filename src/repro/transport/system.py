"""Assembly of the implicit MFLD linear system.

Backward-Euler discretization of the multigroup flux-limited diffusion
equation for each radiation component ``u`` (species x group)::

    dE_u/dt = div( D_u grad E_u ) - c kappa_a,u (E_u - B_u(T))
              + sum_u' C[u,u'] (E_u' - E_u)

with the FLD diffusion coefficient ``D_u = c lambda(R_u) / kappa_t,u``.
One implicit step of size ``dt`` yields, per zone ``(i, j)``::

    [1 + dt c kappa_a + dt sum_u' C[u,u']] E_u
      - dt/V_ij [ A D (E_nb - E_u) / d  over the four faces ]
      - dt sum_{u' != u} C[u,u'] E_u'
    = E_u^n + dt c kappa_a B_u(T)

which is exactly the five-banded (plus pointwise coupling) system of
the paper's Fig. 1: ``x1 * x2 * ncomp`` coupled equations.  The
coefficients are produced directly as
:class:`~repro.kernels.stencil.StencilCoefficients` -- the matrix is
never assembled (Sec. I-C).

Face diffusion coefficients use the harmonic mean of the adjacent zone
values (continuity of flux across material discontinuities); physical
boundary faces reuse the boundary-zone value, so that a REFLECT ghost
yields exact zero-flux and a DIRICHLET0 ghost a vacuum sink at one zone
spacing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.mesh import Mesh2D
from repro.kernels.stencil import StencilCoefficients
from repro.transport.fld import FluxLimiter, knudsen_number, limiter_lambda
from repro.transport.groups import RadiationBasis
from repro.transport.opacity import OpacityModel

Array = np.ndarray


@dataclass(frozen=True)
class RadiationSystem:
    """One implicit radiation step's linear system ``A E = rhs``."""

    coeffs: StencilCoefficients
    rhs: Array
    dt: float
    c_light: float

    @property
    def ncomp(self) -> int:
        return self.coeffs.nspec

    @property
    def shape(self) -> tuple[int, int]:
        return self.coeffs.shape

    @property
    def nunknowns(self) -> int:
        return self.coeffs.nunknowns


def _harmonic(a: Array, b: Array, floor: float = 1e-300) -> Array:
    """Harmonic mean, safe at zero."""
    return 2.0 * a * b / np.maximum(a + b, floor)


def diffusion_coefficient(
    epad: Array,
    kappa_t: Array,
    mesh: Mesh2D,
    limiter: FluxLimiter | str = FluxLimiter.LEVERMORE_POMRANING,
    c_light: float = 1.0,
) -> Array:
    """Zone-centred FLD coefficient ``D = c lambda(R) / kappa_t``."""
    R = knudsen_number(epad, kappa_t, mesh.dx1, mesh.dx2)
    lam = limiter_lambda(limiter, R)
    return c_light * lam / kappa_t


def build_radiation_system(
    mesh: Mesh2D,
    epad: Array,
    rho: Array,
    temp: Array,
    dt: float,
    basis: RadiationBasis,
    opacity: OpacityModel,
    limiter: FluxLimiter | str = FluxLimiter.LEVERMORE_POMRANING,
    coupling: Array | None = None,
    c_light: float = 1.0,
    a_rad: float = 1.0,
    emission: bool = True,
    t_ref: float = 1.0,
    e_rhs: Array | None = None,
) -> RadiationSystem:
    """Build the backward-Euler MFLD system for one step.

    Parameters
    ----------
    mesh:
        This tile's mesh (geometry factors).
    epad:
        Ghost-filled radiation energy density ``(ncomp, nx1+2, nx2+2)``
        at the old time level (used for the FLD nonlinearity and the
        right-hand side).
    rho, temp:
        Material density and temperature, ``(nx1, nx2)``.
    dt:
        Timestep.
    basis:
        Species/group structure; ``basis.ncomp`` must match ``epad``.
    opacity:
        Opacity model.
    coupling:
        Optional ``(ncomp, ncomp)`` inter-component exchange-rate
        matrix (zero diagonal); see
        :meth:`RadiationBasis.pair_coupling_matrix`.
    c_light, a_rad:
        Speed of light and radiation constant (problem units).
    emission:
        Include the thermal emission source ``dt c kappa_a B(T)``.
    t_ref:
        Reference temperature for the group Planck fractions.
    e_rhs:
        Old-time radiation field for the right-hand side
        ``(ncomp, nx1, nx2)``.  Defaults to the interior of ``epad``;
        pass it explicitly when ``epad`` holds a *predictor* state used
        only to evaluate the flux-limiter nonlinearity (otherwise the
        corrector would advance from the predicted state, double
        stepping).
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    n1, n2 = mesh.shape
    ncomp = basis.ncomp
    if epad.shape != (ncomp, n1 + 2, n2 + 2):
        raise ValueError(
            f"epad shape {epad.shape} != {(ncomp, n1 + 2, n2 + 2)}"
        )
    if rho.shape != (n1, n2) or temp.shape != (n1, n2):
        raise ValueError("rho/temp must be interior-shaped")
    if coupling is not None:
        if coupling.shape != (ncomp, ncomp):
            raise ValueError(f"coupling must be ({ncomp},{ncomp})")
        if np.any(np.diag(coupling) != 0.0):
            raise ValueError("coupling matrix must have zero diagonal")

    kappa_a = opacity.absorption(rho, temp, basis)
    kappa_t = opacity.total(rho, temp, basis)
    D = diffusion_coefficient(epad, kappa_t, mesh, limiter, c_light)

    vol = mesh.volumes                       # (n1, n2)
    a1 = mesh.areas_x1                       # (n1+1, n2)
    a2 = mesh.areas_x2                       # (n1, n2+1)

    # Centre-to-centre distances across each face (+ ghost mirrors at
    # the physical boundary).
    d1 = np.concatenate([[mesh.dx1[0]], np.diff(mesh.x1c), [mesh.dx1[-1]]])  # (n1+1,)
    d2 = np.concatenate([[mesh.dx2[0]], np.diff(mesh.x2c), [mesh.dx2[-1]]])  # (n2+1,)

    # Face diffusion coefficients per component.
    df1 = np.empty((ncomp, n1 + 1, n2))
    df1[:, 1:-1, :] = _harmonic(D[:, :-1, :], D[:, 1:, :])
    df1[:, 0, :] = D[:, 0, :]
    df1[:, -1, :] = D[:, -1, :]
    df2 = np.empty((ncomp, n1, n2 + 1))
    df2[:, :, 1:-1] = _harmonic(D[:, :, :-1], D[:, :, 1:])
    df2[:, :, 0] = D[:, :, 0]
    df2[:, :, -1] = D[:, :, -1]

    # Transmissibilities dt * A * D / (d * V) per face, per component.
    tw = dt * a1[None, :-1, :] * df1[:, :-1, :] / (d1[None, :-1, None] * vol[None])
    te = dt * a1[None, 1:, :] * df1[:, 1:, :] / (d1[None, 1:, None] * vol[None])
    ts = dt * a2[None, :, :-1] * df2[:, :, :-1] / (d2[None, None, :-1] * vol[None])
    tn = dt * a2[None, :, 1:] * df2[:, :, 1:] / (d2[None, None, 1:] * vol[None])

    diag = 1.0 + dt * c_light * kappa_a + tw + te + ts + tn
    coup = None
    if coupling is not None and coupling.any():
        coup = np.zeros((ncomp, ncomp, n1, n2))
        for u in range(ncomp):
            row_sum = 0.0
            for up in range(ncomp):
                if up == u or coupling[u, up] == 0.0:
                    continue
                coup[u, up] = -dt * coupling[u, up]
                row_sum += dt * coupling[u, up]
            diag[u] += row_sum

    coeffs = StencilCoefficients(
        diag=diag, west=-tw, east=-te, south=-ts, north=-tn, coupling=coup
    )

    if e_rhs is None:
        rhs = epad[:, 1:-1, 1:-1].copy()
    else:
        if e_rhs.shape != (ncomp, n1, n2):
            raise ValueError(f"e_rhs shape {e_rhs.shape} != {(ncomp, n1, n2)}")
        rhs = e_rhs.copy()
    if emission:
        fracs = basis.groups.planck_fractions_field(temp, t_ref=t_ref)  # (ng, n1, n2)
        b_field = a_rad * temp[None] ** 4 * fracs                       # per group
        for u in range(ncomp):
            _s, g = basis.unpack(u)
            rhs[u] += dt * c_light * kappa_a[u] * b_field[g]

    return RadiationSystem(coeffs=coeffs, rhs=rhs, dt=dt, c_light=c_light)
