"""Adaptive timestep control for the implicit radiation solve.

Implicit diffusion is unconditionally stable, so the step is limited by
*accuracy*: production codes like V2D cap the fractional change of the
radiation energy density per step and grow/shrink dt accordingly.  The
controller implements the standard recipe::

    change  = max_zones |E_new - E_old| / (E_old + floor)
    dt_next = dt * clip(target / change, shrink_limit, growth_limit)

with the max taken globally (one all-reduce) in decomposed runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.comm import Communicator, ReduceOp

Array = np.ndarray


@dataclass
class TimestepController:
    """Fractional-change timestep governor.

    Parameters
    ----------
    target:
        Desired max fractional change per step (e.g. 0.1 = 10 %).
    growth_limit, shrink_limit:
        Bounds on the per-step dt ratio.
    dt_min, dt_max:
        Absolute clamps.
    floor:
        Energy floor in the relative-change denominator.
    """

    target: float = 0.1
    growth_limit: float = 1.5
    shrink_limit: float = 0.3
    dt_min: float = 1e-12
    dt_max: float = 1e3
    floor: float = 1e-12

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError("target change must be positive")
        if not 0 < self.shrink_limit <= 1 <= self.growth_limit:
            raise ValueError("need shrink_limit <= 1 <= growth_limit")
        if self.dt_min <= 0 or self.dt_max <= self.dt_min:
            raise ValueError("need 0 < dt_min < dt_max")

    def max_change(
        self, e_old: Array, e_new: Array, comm: Communicator | None = None
    ) -> float:
        """Largest fractional zone change (global across ranks)."""
        if e_old.shape != e_new.shape:
            raise ValueError("field shapes differ")
        local = float(
            np.max(np.abs(e_new - e_old) / (np.abs(e_old) + self.floor))
        )
        if comm is not None and comm.size > 1:
            return float(comm.allreduce(local, op=ReduceOp.MAX))
        return local

    def next_dt(
        self,
        dt: float,
        e_old: Array,
        e_new: Array,
        comm: Communicator | None = None,
    ) -> float:
        """The recommended next step size."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        change = self.max_change(e_old, e_new, comm)
        if change == 0.0:
            factor = self.growth_limit
        else:
            factor = float(np.clip(self.target / change, self.shrink_limit,
                                   self.growth_limit))
        return float(np.clip(dt * factor, self.dt_min, self.dt_max))
