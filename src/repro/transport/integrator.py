"""Implicit radiation time integrator: three solves per step.

"Each time step requires the solution of three unique x1 x x2 x 2
linear systems via the BiCGSTAB algorithm" (paper Sec. II-D).  We
realize those three systems as the standard treatment of FLD's two
nonlinearities (the limiter and the matter coupling):

1. **Predictor** -- diffusion coefficients frozen at ``E^n``; solve for
   a provisional ``E*``.
2. **Corrector** -- diffusion coefficients re-evaluated at ``E*`` (the
   flux-limiter nonlinearity); solve again from the same explicit
   state.
3. **Matter-coupling** -- the material temperature is advanced by a
   linearized implicit emission-absorption balance using the corrected
   field, and the radiation system is re-solved with the updated
   emission source.

Each solve applies the same matrix-free stencil operator (with halo
exchange in decomposed runs), so a run of ``nsteps`` steps performs
``3 * nsteps`` BiCGSTAB solves -- the paper's 100-step problem is 300
linear systems.

Every phase is instrumented with the TAU-style profiler under the
region names the Sec. II-E breakdown uses (``MATVEC``, ``PRECOND``,
``BiCGSTAB``, ``build_system``, ``halo_exchange``, ``matter_update``).
"""

from __future__ import annotations

from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.grid.field import Field
from repro.grid.mesh import Mesh2D
from repro.kernels.fused import SolverWorkspace
from repro.kernels.suite import KernelSuite
from repro.linalg.bicgstab import SolveResult, bicgstab
from repro.linalg.operators import LinearOperator, StencilOperator
from repro.linalg.spai import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
    SPAIPreconditioner,
)
from repro.monitor.profiler import Profiler
from repro.monitor.trace import Tracer
from repro.parallel.cart import CartComm
from repro.parallel.halo import BoundaryCondition, HaloExchanger
from repro.resilience.errors import NonFiniteStateError
from repro.resilience.escalation import SolveStats, solve_with_escalation
from repro.transport.fld import FluxLimiter
from repro.transport.groups import RadiationBasis
from repro.transport.opacity import OpacityModel
from repro.transport.system import RadiationSystem, build_radiation_system

Array = np.ndarray

#: Preconditioner choices by config name.
PRECONDITIONERS = ("spai", "jacobi", "none")


def _instrument_scope(
    name: str,
    rank: int,
    profiler: Profiler | None,
    tracer: Tracer | None,
    cat: str = "integrator",
):
    """Context manager entering the profiler region and/or tracer span."""
    if profiler is None and tracer is None:
        return nullcontext()
    stack = ExitStack()
    if profiler is not None:
        stack.enter_context(profiler.region(name, rank=rank))
    if tracer is not None:
        stack.enter_context(tracer.span(name, rank=rank, cat=cat))
    return stack


class _ProfiledOperator(LinearOperator):
    """Wrap an operator so every apply lands in a profiler region
    and/or a tracer span."""

    def __init__(
        self,
        op: LinearOperator,
        profiler: Profiler | None,
        name: str,
        rank: int,
        tracer: Tracer | None = None,
    ) -> None:
        self._op = op
        self._profiler = profiler
        self._name = name
        self._rank = rank
        self._tracer = tracer

    @property
    def operand_shape(self) -> tuple[int, ...]:
        return self._op.operand_shape

    def _scope(self):
        return _instrument_scope(
            self._name, self._rank, self._profiler, self._tracer, cat="kernel"
        )

    def apply(self, x: Array, out: Array | None = None) -> Array:
        with self._scope():
            return self._op.apply(x, out=out)

    def apply_dots(self, x, dots, out: Array | None = None):
        with self._scope():
            return self._op.apply_dots(x, dots, out=out)


class _ProfiledPreconditioner(Preconditioner):
    def __init__(
        self,
        M: Preconditioner,
        profiler: Profiler | None,
        rank: int,
        tracer: Tracer | None = None,
    ) -> None:
        self._M = M
        self._profiler = profiler
        self._rank = rank
        self._tracer = tracer

    def apply(self, x: Array, out: Array | None = None) -> Array:
        with _instrument_scope(
            "PRECOND", self._rank, self._profiler, self._tracer, cat="kernel"
        ):
            return self._M.apply(x, out=out)


@dataclass
class StepReport:
    """Diagnostics for one radiation step."""

    step: int
    time: float
    dt: float
    solves: list[SolveResult] = dc_field(default_factory=list)
    total_energy: float = 0.0
    temp_min: float = 0.0
    temp_max: float = 0.0
    retries: int = 0              # step-level dt-backoff retries taken

    @property
    def iterations(self) -> int:
        return sum(s.iterations for s in self.solves)

    @property
    def converged(self) -> bool:
        return all(s.converged for s in self.solves)


class RadiationIntegrator:
    """Advances the MFLD radiation field (and matter temperature).

    Parameters
    ----------
    mesh:
        This rank's tile mesh.
    basis:
        Species/group structure.
    opacity:
        Opacity model.
    limiter:
        Flux limiter.
    bc:
        Physical-boundary condition (all sides or per-side dict).
    cart:
        Optional Cartesian topology for decomposed runs.
    suite:
        Kernel suite (execution backend).
    precond:
        ``"spai"`` (paper default), ``"jacobi"`` or ``"none"``.
    coupling_rate:
        Inter-species exchange rate (0 decouples the species blocks).
    couple_matter:
        Evolve the material temperature via emission-absorption
        exchange (solve 3 still runs with a frozen-T source otherwise).
    tracer:
        Optional :class:`~repro.monitor.trace.Tracer`; mirrors the
        profiler regions as timeline spans (and threads through to the
        halo exchanger, solver and escalation ladder).  ``None`` keeps
        every hot path on its uninstrumented branch.
    escalate:
        Arm solver-level recovery: a failed or non-finite solve walks
        the escalation ladder (fused -> unfused -> GMRES) and each
        step's committed state passes a global validity gate.  Off by
        default -- the un-armed integrator is bit-identical to one
        without the resilience machinery.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        basis: RadiationBasis,
        opacity: OpacityModel,
        limiter: FluxLimiter | str = FluxLimiter.LEVERMORE_POMRANING,
        bc: BoundaryCondition | dict[str, BoundaryCondition] = BoundaryCondition.DIRICHLET0,
        cart: CartComm | None = None,
        suite: KernelSuite | None = None,
        precond: str = "spai",
        solver_tol: float = 1e-8,
        solver_maxiter: int = 500,
        ganged: bool = True,
        fused: bool = True,
        coupling_rate: float = 0.0,
        couple_matter: bool = False,
        c_light: float = 1.0,
        a_rad: float = 1.0,
        cv: float = 1.0,
        emission: bool = False,
        profiler: Profiler | None = None,
        tracer: Tracer | None = None,
        escalate: bool = False,
    ) -> None:
        if precond not in PRECONDITIONERS:
            raise ValueError(f"precond must be one of {PRECONDITIONERS}")
        self.mesh = mesh
        self.basis = basis
        self.opacity = opacity
        self.limiter = limiter
        self.bc = bc
        self.cart = cart
        self.suite = suite if suite is not None else KernelSuite()
        self.precond_name = precond
        self.solver_tol = solver_tol
        self.solver_maxiter = solver_maxiter
        self.ganged = ganged
        self.fused = fused
        # One workspace for every solve of every step: the fused solver
        # reuses its scratch vectors instead of reallocating them.
        self._workspace = SolverWorkspace()
        self.coupling = (
            basis.pair_coupling_matrix(coupling_rate) if coupling_rate > 0 else None
        )
        self.couple_matter = couple_matter
        self.c_light = c_light
        self.a_rad = a_rad
        self.cv = cv
        self.emission = emission
        self.profiler = profiler
        self.tracer = tracer
        # Solver-level recovery: degrade fused -> unfused -> GMRES
        # instead of committing a failed solve.
        self.escalate = escalate
        self.solve_stats: list[SolveStats] = []
        self.degraded_solves = 0
        self.degraded_seconds = 0.0
        self.rank = cart.rank if cart is not None else 0

        n1, n2 = mesh.shape
        self.E = Field(basis.ncomp, (n1, n2), nghost=1)
        self.rho = np.ones((n1, n2))
        self.temp = np.ones((n1, n2))
        self.time = 0.0
        self.step_count = 0
        self._halo = (
            HaloExchanger(cart, bc, tracer=tracer) if cart is not None else None
        )

    # ------------------------------------------------------------------
    @property
    def comm(self):
        return self.cart.comm if self.cart is not None else None

    def set_state(
        self, E: Array, rho: Array | None = None, temp: Array | None = None
    ) -> None:
        """Load the initial radiation field and material state."""
        if E.shape != self.E.interior.shape:
            raise ValueError(f"E shape {E.shape} != {self.E.interior.shape}")
        self.E.interior = E
        if rho is not None:
            self.rho[...] = rho
        if temp is not None:
            self.temp[...] = temp

    def _fill_ghosts(self, fld: Field) -> None:
        with _instrument_scope(
            "halo_exchange", self.rank, self.profiler, self.tracer, cat="halo"
        ):
            if self._halo is not None:
                self._halo.exchange(fld)
            else:
                for side in ("west", "east", "south", "north"):
                    bc = self.bc if isinstance(self.bc, BoundaryCondition) else self.bc[side]
                    if bc is BoundaryCondition.DIRICHLET0:
                        fld.zero_side(side)
                    else:
                        fld.reflect_side(side)

    def _build(
        self, epad: Array, dt: float, temp: Array, e_rhs: Array | None = None
    ) -> RadiationSystem:
        with _instrument_scope(
            "build_system", self.rank, self.profiler, self.tracer
        ):
            return self._build_inner(epad, dt, temp, e_rhs)

    def _build_inner(
        self, epad: Array, dt: float, temp: Array, e_rhs: Array | None
    ) -> RadiationSystem:
        return build_radiation_system(
            self.mesh,
            epad,
            self.rho,
            temp,
            dt,
            self.basis,
            self.opacity,
            limiter=self.limiter,
            coupling=self.coupling,
            c_light=self.c_light,
            a_rad=self.a_rad,
            emission=self.emission,
            e_rhs=e_rhs,
        )

    def _make_preconditioner(self, system: RadiationSystem) -> Preconditioner:
        if self.precond_name == "spai":
            M: Preconditioner = SPAIPreconditioner.from_stencil(
                system.coeffs, bc=BoundaryCondition.DIRICHLET0, suite=self.suite
            )
        elif self.precond_name == "jacobi":
            M = JacobiPreconditioner.from_stencil(system.coeffs, suite=self.suite)
        else:
            M = IdentityPreconditioner()
        if self.profiler is not None or self.tracer is not None:
            M = _ProfiledPreconditioner(
                M, self.profiler, self.rank, tracer=self.tracer
            )
        return M

    def _solve(self, system: RadiationSystem, x0: Array, site: int) -> SolveResult:
        op: LinearOperator = StencilOperator(
            system.coeffs, suite=self.suite, bc=self.bc, cart=self.cart,
            tracer=self.tracer,
        )
        if self.profiler is not None or self.tracer is not None:
            op = _ProfiledOperator(
                op, self.profiler, "MATVEC", self.rank, tracer=self.tracer
            )
        M = self._make_preconditioner(system)

        def run() -> SolveResult:
            if self.escalate:
                stats = solve_with_escalation(
                    op,
                    system.rhs,
                    x0=x0,
                    tol=self.solver_tol,
                    maxiter=self.solver_maxiter,
                    M=M,
                    suite=self.suite,
                    comm=self.comm,
                    ganged=self.ganged,
                    fused=self.fused,
                    workspace=self._workspace,
                    counters=self.suite.counters,
                    site=site,
                    tracer=self.tracer,
                    trace_rank=self.rank,
                )
                self.solve_stats.append(stats)
                if stats.degraded:
                    self.degraded_solves += 1
                    self.degraded_seconds += stats.degraded_seconds
                if not stats.ok:
                    raise NonFiniteStateError(
                        f"solve site {site} failed after escalation through "
                        f"{'/'.join(stats.methods)}",
                        site=site,
                        step=self.step_count + 1,
                    )
                return stats.final
            return bicgstab(
                op,
                system.rhs,
                x0=x0,
                tol=self.solver_tol,
                maxiter=self.solver_maxiter,
                M=M,
                suite=self.suite,
                comm=self.comm,
                ganged=self.ganged,
                fused=self.fused,
                workspace=self._workspace,
                tracer=self.tracer,
                trace_rank=self.rank,
            )

        if self.profiler is not None or self.tracer is not None:
            # Distinct call-site regions: the paper's Arm MAP run
            # attributed 31-33% of total time to each of the three
            # BiCGSTAB call sites; the shared inner "BiCGSTAB" region
            # still merges them in the TAU-style flat profile.
            with _instrument_scope(
                f"solve_site_{site}", self.rank, self.profiler, self.tracer,
                cat="solver",
            ):
                with _instrument_scope(
                    "BiCGSTAB", self.rank, self.profiler, self.tracer,
                    cat="solver",
                ):
                    return run()
        return run()

    # ------------------------------------------------------------------
    def _guard_solution(self, res: SolveResult, site: int) -> Array:
        """Reject a non-finite solve before it reaches the state.

        This is the always-on boundary check between the linear solver
        and the transport state: a NaN/Inf iterate never propagates
        into ``E``/``temp`` regardless of whether any resilience
        machinery is armed.  Finite solutions pass through untouched.
        """
        if not np.all(np.isfinite(res.x)):
            raise NonFiniteStateError(
                f"solve site {site} produced a non-finite radiation field "
                f"(iterations={res.iterations}, converged={res.converged})",
                site=site,
                step=self.step_count + 1,
            )
        return res.x

    def _validate_step(self, e_new: Array, temp_new: Array) -> None:
        """Physical-validity gate before committing a step.

        Only armed in ``escalate`` mode (it costs one batched global
        reduction in decomposed runs).  The flag is combined by a MIN
        all-reduce so every rank accepts or retries in lockstep; any
        non-finite contribution fails the comparison conservatively.
        """
        emin = float(e_new.min())
        escale = float(np.abs(e_new).max())
        ok = (
            bool(np.all(np.isfinite(temp_new)))
            and np.isfinite(emin)
            and np.isfinite(escale)
            and emin >= -1e-8 * max(1.0, escale)
        )
        if self.comm is not None and self.comm.size > 1:
            from repro.parallel.comm import ReduceOp

            flag = self.comm.allreduce(1.0 if ok else 0.0, op=ReduceOp.MIN)
            ok = bool(flag >= 1.0)
        if not ok:
            raise NonFiniteStateError(
                f"step {self.step_count + 1} failed validation: "
                f"min(E) = {emin:.3e} against scale {escale:.3e}",
                step=self.step_count + 1,
            )

    # ------------------------------------------------------------------
    def _matter_update(self, E: Array, dt: float) -> Array:
        """Linearized implicit temperature update; returns new T.

        Solves, pointwise, ``rho cv dT/dt = sum_u c kappa_a (E_u - B_u(T))``
        with ``B(T^{n+1})`` linearized about ``T^n``:
        ``B(T+dT) ~ B(T) + 4 a T^3 dT``.
        """
        kappa_a = self.opacity.absorption(self.rho, self.temp, self.basis)
        fracs = self.basis.groups.planck_fractions_field(self.temp)
        heating = np.zeros_like(self.temp)
        dBdT_sum = np.zeros_like(self.temp)
        for u in range(self.basis.ncomp):
            _s, g = self.basis.unpack(u)
            b_u = self.a_rad * self.temp**4 * fracs[g]
            heating += self.c_light * kappa_a[u] * (E[u] - b_u)
            dBdT_sum += self.c_light * kappa_a[u] * 4.0 * self.a_rad * self.temp**3
        denom = self.rho * self.cv + dt * dBdT_sum
        dT = dt * heating / denom
        return np.maximum(self.temp + dT, 1e-12)

    def step(self, dt: float) -> StepReport:
        """Advance one timestep (three BiCGSTAB solves)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        report = StepReport(step=self.step_count + 1, time=self.time + dt, dt=dt)
        e_old = self.E.interior.copy()

        # --- Solve 1: predictor (D from E^n) --------------------------
        self._fill_ghosts(self.E)
        sys1 = self._build(self.E.data, dt, self.temp)
        res1 = self._solve(sys1, x0=e_old, site=1)
        report.solves.append(res1)
        e_star = self._guard_solution(res1, site=1)

        # --- Solve 2: corrector (D from E*, RHS still from E^n) -------
        work = Field(self.basis.ncomp, self.mesh.shape, nghost=1)
        work.interior = e_star
        self._fill_ghosts(work)
        sys2 = self._build(work.data, dt, self.temp, e_rhs=e_old)
        res2 = self._solve(sys2, x0=e_star, site=2)
        report.solves.append(res2)
        e_corr = self._guard_solution(res2, site=2)

        # --- Matter update + Solve 3 (emission at T^{n+1}) ------------
        with _instrument_scope(
            "matter_update", self.rank, self.profiler, self.tracer
        ):
            new_temp = (
                self._matter_update(e_corr, dt) if self.couple_matter else self.temp
            )

        work.interior = e_corr
        self._fill_ghosts(work)
        sys3 = self._build(work.data, dt, new_temp, e_rhs=e_old)
        res3 = self._solve(sys3, x0=e_corr, site=3)
        report.solves.append(res3)
        e_new = self._guard_solution(res3, site=3)
        if self.escalate:
            self._validate_step(e_new, new_temp)

        # Commit.
        self.E.interior = e_new
        self.temp = new_temp
        self.time += dt
        self.step_count += 1

        report.total_energy = self.total_energy()
        tmin, tmax = float(self.temp.min()), float(self.temp.max())
        if self.comm is not None and self.comm.size > 1:
            from repro.parallel.comm import ReduceOp

            # One batched reduction round carries both extrema.
            tmin, tmax = self.comm.allreduce_batch(
                [tmin, tmax], ops=[ReduceOp.MIN, ReduceOp.MAX]
            )
        report.temp_min, report.temp_max = float(tmin), float(tmax)
        return report

    def total_energy(self) -> float:
        """Volume-integrated radiation energy (global in decomposed runs)."""
        local = float(np.sum(self.E.interior * self.mesh.volumes[None]))
        if self.comm is not None and self.comm.size > 1:
            return float(self.comm.allreduce(local))
        return local
