"""Opacity models.

The diffusion coefficient of FLD is set by the total opacity
``kappa_t = kappa_a + kappa_s`` and the emission-absorption exchange by
``kappa_a``.  Models return per-component opacity fields (units of
inverse length after multiplying by density) given the material state.

Three models cover the use cases:

* :class:`ConstantOpacity` -- the linear constant-coefficient limit the
  Gaussian-pulse test problem uses (it makes the diffusion equation
  linear, giving a closed-form solution to validate against).
* :class:`PowerLawOpacity` -- ``kappa = k0 (rho/rho0)^a (T/T0)^b eps^c``,
  the standard analytic parametrization (Kramers-like for photons,
  ``eps^2`` energy dependence for neutrinos).
* :class:`TabulatedOpacity` -- log-log interpolation in temperature,
  standing in for the microphysical tables a production code reads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.transport.groups import RadiationBasis

Array = np.ndarray


class OpacityModel(ABC):
    """Per-component opacities from the material state.

    Both methods return ``(ncomp, nx1, nx2)`` arrays of opacity
    (inverse mean-free-path = ``kappa * rho`` is formed by the caller;
    here ``kappa`` already includes any density dependence the model
    wants, so the system builder uses it directly as inverse length).
    """

    @abstractmethod
    def absorption(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        """Absorption opacity ``kappa_a`` per component."""

    @abstractmethod
    def scattering(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        """Scattering opacity ``kappa_s`` per component."""

    def total(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        """``kappa_t = kappa_a + kappa_s`` (transport opacity)."""
        return self.absorption(rho, temp, basis) + self.scattering(rho, temp, basis)

    @staticmethod
    def _broadcast(value: Array, rho: Array, ncomp: int) -> Array:
        out = np.empty((ncomp,) + rho.shape)
        out[...] = value
        return out


@dataclass(frozen=True)
class ConstantOpacity(OpacityModel):
    """Spatially and spectrally constant opacities."""

    kappa_a: float = 1.0
    kappa_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kappa_a < 0 or self.kappa_s < 0:
            raise ValueError("opacities must be non-negative")
        if self.kappa_a + self.kappa_s <= 0:
            raise ValueError("total opacity must be positive (else D diverges)")

    def absorption(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        return self._broadcast(self.kappa_a, rho, basis.ncomp)

    def scattering(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        return self._broadcast(self.kappa_s, rho, basis.ncomp)


@dataclass(frozen=True)
class PowerLawOpacity(OpacityModel):
    """``kappa = k0 (rho/rho0)^a_rho (T/T0)^a_T (eps_g/eps0)^a_eps``.

    ``scatter_fraction`` splits the total into absorption vs scattering.
    Kramers photon opacity is ``a_rho=1, a_T=-3.5``; neutrino-like
    energy dependence is ``a_eps=2``.
    """

    k0: float = 1.0
    rho0: float = 1.0
    t0: float = 1.0
    eps0: float = 1.0
    a_rho: float = 0.0
    a_t: float = 0.0
    a_eps: float = 0.0
    scatter_fraction: float = 0.0
    floor: float = 1e-10

    def __post_init__(self) -> None:
        if not 0.0 <= self.scatter_fraction <= 1.0:
            raise ValueError("scatter_fraction must be in [0, 1]")
        if self.k0 <= 0:
            raise ValueError("k0 must be positive")

    def _total(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        base = (
            self.k0
            * np.power(np.maximum(rho, self.floor) / self.rho0, self.a_rho)
            * np.power(np.maximum(temp, self.floor) / self.t0, self.a_t)
        )
        out = np.empty((basis.ncomp,) + rho.shape)
        centers = basis.groups.centers
        for u in range(basis.ncomp):
            _s, g = basis.unpack(u)
            out[u] = base * (centers[g] / self.eps0) ** self.a_eps
        return np.maximum(out, self.floor)

    def absorption(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        return (1.0 - self.scatter_fraction) * self._total(rho, temp, basis)

    def scattering(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        return self.scatter_fraction * self._total(rho, temp, basis)


@dataclass(frozen=True)
class TabulatedOpacity(OpacityModel):
    """Log-log temperature interpolation of tabulated opacities.

    Parameters
    ----------
    temps:
        Strictly increasing table temperatures (> 0).
    kappa_a_table, kappa_s_table:
        Opacity values at those temperatures (> 0 for absorption).
    """

    temps: tuple[float, ...]
    kappa_a_table: tuple[float, ...]
    kappa_s_table: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        t = np.asarray(self.temps, dtype=float)
        ka = np.asarray(self.kappa_a_table, dtype=float)
        if t.shape != ka.shape or t.ndim != 1 or t.shape[0] < 2:
            raise ValueError("temps and kappa_a_table must be equal-length (>= 2)")
        if np.any(np.diff(t) <= 0) or np.any(t <= 0):
            raise ValueError("temps must be positive and increasing")
        if np.any(ka <= 0):
            raise ValueError("tabulated absorption opacity must be positive")
        if self.kappa_s_table is not None:
            ks = np.asarray(self.kappa_s_table, dtype=float)
            if ks.shape != t.shape or np.any(ks < 0):
                raise ValueError("kappa_s_table malformed")

    def _interp(self, table: Array, temp: Array) -> Array:
        t = np.asarray(self.temps)
        logk = np.interp(
            np.log(np.maximum(temp, t[0] * 1e-6)), np.log(t), np.log(np.maximum(table, 1e-300))
        )
        return np.exp(logk)

    def absorption(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        vals = self._interp(np.asarray(self.kappa_a_table), temp)
        return self._broadcast(vals, rho, basis.ncomp)

    def scattering(self, rho: Array, temp: Array, basis: RadiationBasis) -> Array:
        if self.kappa_s_table is None:
            return np.zeros((basis.ncomp,) + rho.shape)
        vals = self._interp(np.asarray(self.kappa_s_table), temp)
        return self._broadcast(vals, rho, basis.ncomp)
