"""Energy-group and species bookkeeping.

V2D evolves the radiation energy density "across a spectrum of
energies" for multiple species (for core-collapse supernovae: neutrino
flavours).  The unknowns of the linear system are radiation
*components*: one per (species, energy group) pair, stored as the
leading axis of every field, so the paper's test problem -- 2 species,
one (grey) group each -- has ``x1 * x2 * 2`` unknowns.

:class:`EnergyGroups` carries the group edges and the normalized Planck
(blackbody) fractions used for emission sources; :class:`RadiationBasis`
flattens (species, group) pairs into component indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

Array = np.ndarray


@lru_cache(maxsize=None)
def _planck_cdf_table(npts: int = 2048) -> tuple[Array, Array]:
    """Cumulative normalized Planck integral P(x) on a log grid."""
    x = np.geomspace(1e-6, 60.0, npts)
    f = x**3 / np.expm1(x)
    cdf = np.concatenate([[0.0], np.cumsum(0.5 * (f[1:] + f[:-1]) * np.diff(x))])
    cdf *= 15.0 / np.pi**4
    return x, np.minimum(cdf, 1.0)


def planck_cdf(x: Array) -> Array:
    """Vectorized ``P(x) = (15/pi^4) int_0^x t^3/(e^t-1) dt`` (in [0, 1])."""
    grid, cdf = _planck_cdf_table()
    xc = np.clip(np.asarray(x, dtype=float), grid[0], grid[-1])
    return np.interp(xc, grid, cdf)


def planck_integral(x_lo: float, x_hi: float) -> float:
    """Normalized Planck integral over ``x = E/kT`` in ``[x_lo, x_hi]``.

    Returns the fraction of blackbody energy in the band:
    ``(15/pi^4) * int x^3/(e^x - 1) dx``; the full integral is 1.
    """
    if x_hi <= x_lo:
        raise ValueError("need x_hi > x_lo")
    lo, hi = planck_cdf(np.array([x_lo, x_hi]))
    return float(hi - lo)


@dataclass(frozen=True)
class EnergyGroups:
    """Energy-group structure: ``ngroups`` bins between ``edges``.

    ``edges`` are in units of a reference temperature (i.e. the group
    boundary divided by ``k T_ref``); a single "grey" group is
    ``EnergyGroups.grey()``.
    """

    edges: tuple[float, ...]

    def __post_init__(self) -> None:
        e = np.asarray(self.edges, dtype=float)
        if e.ndim != 1 or e.shape[0] < 2:
            raise ValueError("need at least two group edges")
        if np.any(np.diff(e) <= 0) or e[0] < 0:
            raise ValueError("group edges must be non-negative and increasing")
        object.__setattr__(self, "edges", tuple(float(v) for v in e))

    @staticmethod
    def grey() -> "EnergyGroups":
        """A single group spanning (effectively) the whole spectrum."""
        return EnergyGroups(edges=(1e-4, 50.0))

    @staticmethod
    def logarithmic(ngroups: int, lo: float = 0.05, hi: float = 30.0) -> "EnergyGroups":
        """Log-spaced groups, the standard multigroup discretization."""
        if ngroups < 1:
            raise ValueError("need at least one group")
        return EnergyGroups(edges=tuple(np.geomspace(lo, hi, ngroups + 1)))

    @property
    def ngroups(self) -> int:
        return len(self.edges) - 1

    @property
    def centers(self) -> Array:
        e = np.asarray(self.edges)
        return np.sqrt(e[:-1] * e[1:])  # geometric centres (log spacing)

    @property
    def widths(self) -> Array:
        e = np.asarray(self.edges)
        return np.diff(e)

    def planck_fractions(self, t_ratio: float = 1.0) -> Array:
        """Fraction of blackbody energy per group at ``T = t_ratio*T_ref``.

        Group edges scale as ``x = edge / t_ratio``.
        """
        if t_ratio <= 0:
            raise ValueError("temperature ratio must be positive")
        e = np.asarray(self.edges) / t_ratio
        return np.array(
            [planck_integral(e[g], e[g + 1]) for g in range(self.ngroups)]
        )

    def planck_fractions_field(self, temp: Array, t_ref: float = 1.0) -> Array:
        """Per-zone group fractions: ``(ngroups,) + temp.shape``.

        Uses the precomputed Planck CDF, so the cost is one
        interpolation per group edge regardless of grid size.
        """
        if t_ref <= 0:
            raise ValueError("reference temperature must be positive")
        t = np.maximum(np.asarray(temp, dtype=float), 1e-30) / t_ref
        e = np.asarray(self.edges)
        cdfs = [planck_cdf(e[g] / t) for g in range(len(e))]
        return np.stack([cdfs[g + 1] - cdfs[g] for g in range(self.ngroups)])


@dataclass(frozen=True)
class RadiationBasis:
    """The component basis: species x energy groups.

    Component ordering: group index fastest, species slowest, i.e.
    ``u = s * ngroups + g``.  For the paper's test problem
    (2 species x 1 grey group) this is simply components 0 and 1.
    """

    species: tuple[str, ...] = ("nu_e", "nu_e_bar")
    groups: EnergyGroups = field(default_factory=EnergyGroups.grey)

    def __post_init__(self) -> None:
        if len(self.species) < 1:
            raise ValueError("need at least one species")
        if len(set(self.species)) != len(self.species):
            raise ValueError("species names must be unique")

    @property
    def nspecies(self) -> int:
        return len(self.species)

    @property
    def ngroups(self) -> int:
        return self.groups.ngroups

    @property
    def ncomp(self) -> int:
        return self.nspecies * self.ngroups

    def index(self, species: int | str, group: int = 0) -> int:
        """Component index of (species, group)."""
        s = self.species.index(species) if isinstance(species, str) else species
        if not 0 <= s < self.nspecies:
            raise ValueError(f"species index {s} out of range")
        if not 0 <= group < self.ngroups:
            raise ValueError(f"group index {group} out of range")
        return s * self.ngroups + group

    def unpack(self, comp: int) -> tuple[int, int]:
        """Inverse of :meth:`index`: component -> (species, group)."""
        if not 0 <= comp < self.ncomp:
            raise ValueError(f"component {comp} out of range")
        return divmod(comp, self.ngroups)

    def component_names(self) -> list[str]:
        return [
            f"{self.species[s]}[g{g}]"
            for s in range(self.nspecies)
            for g in range(self.ngroups)
        ]

    def pair_coupling_matrix(self, rate: float) -> Array:
        """Symmetric species-exchange matrix ``(ncomp, ncomp)``.

        Couples equal-group components of *different* species at
        ``rate`` (e.g. neutrino pair processes exchanging energy
        between nu and nu-bar).  Zero diagonal; the system builder adds
        the conservative counterpart to the diagonal.
        """
        if rate < 0:
            raise ValueError("coupling rate must be non-negative")
        C = np.zeros((self.ncomp, self.ncomp))
        for s in range(self.nspecies):
            for sp in range(self.nspecies):
                if s == sp:
                    continue
                for g in range(self.ngroups):
                    C[self.index(s, g), self.index(sp, g)] = rate
        return C
