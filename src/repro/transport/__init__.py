"""Multigroup flux-limited diffusion (MFLD) radiation transport.

V2D "solves the equations of Eulerian hydrodynamics and multi-species
flux-limited diffusive radiation transport in two spatial dimensions"
(paper Sec. I-C); the radiation test problem evolves the radiation
energy density of 2 species on a 200 x 100 grid, with three implicit
linear solves per timestep.

* :mod:`repro.transport.groups` -- energy-group and species bookkeeping
  (the "multigroup / multi-species" structure; components are the
  leading axis of every radiation field).
* :mod:`repro.transport.opacity` -- absorption/scattering opacity
  models (constant, power-law, tabulated).
* :mod:`repro.transport.fld` -- flux limiters (Levermore-Pomraning,
  Larsen, plain diffusion) bridging the diffusion and free-streaming
  limits.
* :mod:`repro.transport.system` -- assembles the backward-Euler MFLD
  linear system as matrix-free stencil coefficients + right-hand side.
* :mod:`repro.transport.integrator` -- the implicit time integrator
  performing the paper's three BiCGSTAB solves per step.
"""

from repro.transport.fld import FluxLimiter, knudsen_number, limiter_lambda
from repro.transport.groups import EnergyGroups, RadiationBasis
from repro.transport.integrator import RadiationIntegrator, StepReport
from repro.transport.opacity import (
    ConstantOpacity,
    OpacityModel,
    PowerLawOpacity,
    TabulatedOpacity,
)
from repro.transport.system import RadiationSystem, build_radiation_system
from repro.transport.timestep import TimestepController

__all__ = [
    "EnergyGroups",
    "RadiationBasis",
    "OpacityModel",
    "ConstantOpacity",
    "PowerLawOpacity",
    "TabulatedOpacity",
    "FluxLimiter",
    "limiter_lambda",
    "knudsen_number",
    "RadiationSystem",
    "build_radiation_system",
    "RadiationIntegrator",
    "StepReport",
    "TimestepController",
]
