"""Flux limiters for flux-limited diffusion.

Pure diffusion (``D = c / 3 kappa_t``) violates causality in optically
thin regions, letting radiation propagate faster than ``c``.  FLD
repairs this with a limiter ``lambda(R)`` interpolating between the
diffusion limit (``lambda -> 1/3`` as ``R -> 0``) and free streaming
(``lambda -> 1/R`` as ``R -> inf``), where ``R = |grad E| / (kappa_t E)``
is the local Knudsen-like ratio::

    D = c * lambda(R) / kappa_t      (flux F = -D grad E, |F| <= c E)

Implemented limiters:

* ``LEVERMORE_POMRANING`` -- the rational approximation
  ``lambda = (2 + R) / (6 + 3R + R^2)`` to Levermore & Pomraning (1981),
  the limiter family V2D's methods paper uses.
* ``LARSEN2`` -- Larsen's n=2 limiter ``lambda = (9 + R^2)^(-1/2)``.
* ``DIFFUSION`` -- no limiting, ``lambda = 1/3`` (the linear limit the
  Gaussian-pulse analytic solution lives in).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

Array = np.ndarray


class FluxLimiter(Enum):
    DIFFUSION = "diffusion"
    LEVERMORE_POMRANING = "levermore-pomraning"
    LARSEN2 = "larsen2"


def limiter_lambda(limiter: FluxLimiter | str, R: Array) -> Array:
    """Evaluate ``lambda(R)`` elementwise (R must be non-negative)."""
    if isinstance(limiter, str):
        limiter = FluxLimiter(limiter)
    R = np.asarray(R, dtype=float)
    if np.any(R < 0):
        raise ValueError("Knudsen ratio R must be non-negative")
    if limiter is FluxLimiter.DIFFUSION:
        return np.full_like(R, 1.0 / 3.0)
    if limiter is FluxLimiter.LEVERMORE_POMRANING:
        return (2.0 + R) / (6.0 + 3.0 * R + R * R)
    if limiter is FluxLimiter.LARSEN2:
        return 1.0 / np.sqrt(9.0 + R * R)
    raise ValueError(f"unknown limiter {limiter!r}")  # pragma: no cover


def knudsen_number(
    epad: Array, kappa_t: Array, dx1: Array, dx2: Array, floor: float = 1e-30
) -> Array:
    """Zone-centred ``R = |grad E| / (kappa_t * E)`` per component.

    Parameters
    ----------
    epad:
        Ghost-filled radiation field ``(ncomp, nx1+2, nx2+2)``.
    kappa_t:
        Total opacity (inverse length), ``(ncomp, nx1, nx2)``.
    dx1, dx2:
        Zone widths, broadcastable to ``(nx1, nx2)`` (1-D per-direction
        arrays are reshaped).
    floor:
        Energy floor preventing division blow-up in empty zones.
    """
    interior = epad[:, 1:-1, 1:-1]
    d1 = np.asarray(dx1, dtype=float)
    d2 = np.asarray(dx2, dtype=float)
    if d1.ndim == 1:
        d1 = d1[:, None]
    if d2.ndim == 1:
        d2 = d2[None, :]
    ge1 = (epad[:, 2:, 1:-1] - epad[:, :-2, 1:-1]) / (2.0 * d1)
    ge2 = (epad[:, 1:-1, 2:] - epad[:, 1:-1, :-2]) / (2.0 * d2)
    grad = np.sqrt(ge1 * ge1 + ge2 * ge2)
    return grad / (kappa_t * np.maximum(interior, floor))
