"""Campaign engine: sharded scaling studies with a result cache.

The paper's contribution is a *study* -- compilers x SVE x eleven
process topologies -- not one run, and this package is the layer that
runs studies as a service:

* :mod:`repro.campaign.spec` -- declarative :class:`CampaignSpec`
  (grid/list expansion over problem, topology, backend, resilience and
  solver knobs) with deterministic per-job names and seeds.
* :mod:`repro.campaign.hashing` -- canonical content hashes of
  (config, problem, code version): the cache key.
* :mod:`repro.campaign.cache` -- content-addressed, CRC-checked,
  atomically-written result store under ``.repro-cache/``.
* :mod:`repro.campaign.scheduler` -- the work queue: cache
  short-circuit, longest-first hand-out over a process pool, bounded
  retries, failure quarantine.
* :mod:`repro.campaign.worker` -- the process-pool unit of execution.
* :mod:`repro.campaign.aggregate` -- campaign-level tables and the
  ``BENCH_campaign.json`` artifact.
* :mod:`repro.campaign.cli` -- ``repro campaign run|status|report|clean``.
"""

from repro.campaign.aggregate import (
    build_bench_payload,
    campaign_report,
    stable_payload,
    topology_heatmap,
    write_bench,
)
from repro.campaign.cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache
from repro.campaign.hashing import CACHE_SCHEMA, canonical_json, derive_seed, job_key
from repro.campaign.scheduler import (
    JOB_OK,
    JOB_QUARANTINED,
    CampaignResult,
    CampaignScheduler,
    JobRecord,
    estimate_cost,
)
from repro.campaign.spec import CampaignSpec, CampaignSpecError, JobSpec
from repro.campaign.worker import execute_job

__all__ = [
    "CampaignSpec",
    "CampaignSpecError",
    "JobSpec",
    "CampaignScheduler",
    "CampaignResult",
    "JobRecord",
    "JOB_OK",
    "JOB_QUARANTINED",
    "estimate_cost",
    "execute_job",
    "ResultCache",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "CACHE_SCHEMA",
    "canonical_json",
    "job_key",
    "derive_seed",
    "build_bench_payload",
    "campaign_report",
    "stable_payload",
    "topology_heatmap",
    "write_bench",
]
