"""Campaign-level aggregation: fold job results into study tables.

Takes the per-job payloads a :class:`~repro.campaign.scheduler.
CampaignScheduler` run produced and builds the machine-readable
``BENCH_campaign.json`` plus the human tables (the campaign analogue
of the paper's Table I): per-job outcome rows, merged PAPI-style
counters, a strong-scaling speedup column and a topology heatmap.

The payload keeps a strict determinism split: everything timing-
derived (wall seconds, speedups, scheduler attempts, cache hit/miss
bookkeeping) lives under the keys listed in :data:`VOLATILE_KEYS` or
inside per-job ``timing`` subtrees, and :func:`stable_payload` strips
exactly those -- two runs of the same spec against the same code
version agree bitwise on the stable view, whether results were
computed or served from cache.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.campaign.hashing import code_version
from repro.campaign.scheduler import CampaignResult
from repro.io.atomic import atomic_write_bytes
from repro.monitor.counters import Counters
from repro.monitor.trace import merge_summaries
from repro.v2d.job import TIMING_KEY, strip_timing

#: Top-level payload keys that vary run-to-run even for identical
#: results (scheduling and wall-clock facts).
VOLATILE_KEYS = ("timing", "ran", "workers", "cache")

#: Per-job record keys that vary run-to-run.
VOLATILE_JOB_KEYS = ("cache_hit", "attempts")


def build_bench_payload(result: CampaignResult) -> dict[str, Any]:
    """The ``BENCH_campaign.json`` payload for one campaign run."""
    totals = Counters()
    jobs: list[dict[str, Any]] = []
    for rec in result.records:
        entry: dict[str, Any] = {
            "name": rec.job.name,
            "key": rec.job.key,
            "problem": rec.job.problem,
            "seed": rec.job.seed,
            "status": rec.status,
            "cache_hit": rec.cache_hit,
            "attempts": rec.attempts,
        }
        if rec.error is not None:
            entry["error"] = rec.error
        if rec.result is not None:
            entry["result"] = rec.result
            totals.merge_snapshot(rec.result.get("counters", {}))
        jobs.append(entry)
    payload: dict[str, Any] = {
        "bench": "campaign",
        "campaign": result.spec.name,
        "campaign_key": result.spec.campaign_key(),
        "code_version": code_version(),
        "njobs": result.n_jobs,
        "ok": result.n_ok,
        "quarantined": result.n_quarantined,
        "counters": totals.snapshot(),
        "jobs": jobs,
        # -- volatile (scheduling / wall clock) ------------------------
        "ran": result.ran,
        "workers": result.workers,
        "cache": {
            "hits": result.cache_stats.hits,
            "misses": result.cache_stats.misses,
            "corrupt": result.cache_stats.corrupt,
        },
        "timing": {
            "wall_seconds": result.wall_seconds,
            "speedup": _speedups(jobs),
        },
    }
    trace = _trace_rollup(jobs)
    if trace is not None:
        payload["timing"]["trace"] = trace
    return payload


def _trace_rollup(jobs: list[dict[str, Any]]) -> dict[str, Any] | None:
    """Campaign-wide merge of per-job trace summaries, when any exist."""
    summaries = []
    for entry in jobs:
        result = entry.get("result")
        if not result:
            continue
        summ = result.get(TIMING_KEY, {}).get("trace")
        if summ:
            summaries.append(summ)
    if not summaries:
        return None
    return merge_summaries(summaries)


def stable_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """The deterministic view of a bench payload.

    Strips every timing/scheduling field (:data:`VOLATILE_KEYS`,
    :data:`VOLATILE_JOB_KEYS` and per-result ``timing`` subtrees); the
    remainder is bitwise-identical between a cold and a warm run of
    the same spec at the same code version.
    """
    out = {k: v for k, v in payload.items() if k not in VOLATILE_KEYS}
    out["jobs"] = []
    for entry in payload.get("jobs", ()):
        job = {k: v for k, v in entry.items() if k not in VOLATILE_JOB_KEYS}
        if "result" in job and isinstance(job["result"], dict):
            job["result"] = strip_timing(job["result"])
        out["jobs"].append(job)
    return out


def write_bench(payload: dict[str, Any], path: str | Path) -> Path:
    """Atomically write the payload as pretty-printed JSON."""
    body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    return atomic_write_bytes(path, body.encode())


def ledger_results(payload: dict[str, Any]) -> list[Any]:
    """Fold one campaign payload into performance-ledger entries.

    One :class:`~repro.perf.schema.BenchResult` per completed job
    (wall seconds as a ``time`` metric, iterations/convergence as
    deterministic ``count`` metrics) plus one campaign-total entry,
    all under suite ``campaign`` -- so scaling studies land in the
    same ``BENCH_history.jsonl`` stream the bench suites write and
    the same regression gate watches them.
    """
    from repro.perf.schema import BenchResult, Metric, environment_fingerprint

    env = environment_fingerprint()  # one git/interpreter probe per payload
    campaign = str(payload.get("campaign", "campaign"))
    out: list[Any] = []
    for entry in payload.get("jobs", ()):
        result = entry.get("result")
        if not result:
            continue
        metrics: dict[str, Metric] = {
            "converged": Metric(
                1.0 if result.get("converged") else 0.0, kind="count"
            ),
        }
        wall = result.get(TIMING_KEY, {}).get("wall_seconds")
        if wall is not None:
            metrics["wall_seconds"] = Metric(float(wall), kind="time", unit="s")
        if result.get("iterations") is not None:
            metrics["iterations"] = Metric(
                float(result["iterations"]), kind="count"
            )
        if result.get("solution_error") is not None:
            metrics["solution_error"] = Metric(
                float(result["solution_error"]), kind="value"
            )
        out.append(
            BenchResult(
                suite="campaign",
                name=f"{campaign}/{entry['name']}",
                metrics=metrics,
                config={
                    "problem": entry.get("problem"),
                    "seed": entry.get("seed"),
                    "nranks": result.get("nranks"),
                    "campaign_key": payload.get("campaign_key"),
                },
                counters=result.get("counters") or None,
                env=env,
            )
        )
    totals: dict[str, Metric] = {
        "njobs": Metric(float(payload.get("njobs", 0)), kind="count"),
        "ok": Metric(float(payload.get("ok", 0)), kind="count"),
        "quarantined": Metric(
            float(payload.get("quarantined", 0)), kind="count"
        ),
    }
    wall = payload.get("timing", {}).get("wall_seconds")
    if wall is not None:
        totals["wall_seconds"] = Metric(float(wall), kind="time", unit="s")
    out.append(
        BenchResult(
            suite="campaign",
            name=f"{campaign}/_total",
            metrics=totals,
            config={"campaign_key": payload.get("campaign_key")},
            counters=payload.get("counters") or None,
            env=env,
        )
    )
    return out


# ----------------------------------------------------------------------
# Derived tables
# ----------------------------------------------------------------------
def _wall(entry: dict[str, Any]) -> float | None:
    result = entry.get("result")
    if not result:
        return None
    return result.get(TIMING_KEY, {}).get("wall_seconds")


def _speedups(jobs: list[dict[str, Any]]) -> dict[str, float]:
    """Strong-scaling speedup vs the serial (1x1) job, when present."""
    serial = None
    for entry in jobs:
        result = entry.get("result")
        if result and result.get("nranks") == 1 and _wall(entry):
            serial = _wall(entry)
            break
    if not serial:
        return {}
    out = {}
    for entry in jobs:
        wall = _wall(entry)
        if wall:
            out[entry["name"]] = serial / wall
    return out


def topology_heatmap(jobs: list[dict[str, Any]]) -> str:
    """Text heatmap of wall seconds over the (nprx1, nprx2) plane.

    Cells show seconds; the shade character under each cell ranks it
    within the campaign (``@`` slowest ... ``.`` fastest), the text
    stand-in for the paper's per-topology comparison.
    """
    cells: dict[tuple[int, int], float] = {}
    for entry in jobs:
        result = entry.get("result")
        wall = _wall(entry)
        if result and wall is not None:
            cells[(result["nprx1"], result["nprx2"])] = wall
    if not cells:
        return "(no completed jobs with timing)"
    n1s = sorted({k[0] for k in cells})
    n2s = sorted({k[1] for k in cells})
    lo, hi = min(cells.values()), max(cells.values())
    shades = " .:-=+*#%@"

    def shade(v: float) -> str:
        if hi <= lo:
            return shades[0]
        frac = (v - lo) / (hi - lo)
        return shades[min(len(shades) - 1, int(frac * (len(shades) - 1)))]

    width = 9
    lines = ["wall seconds by topology (NPRX1 across, NPRX2 down):"]
    lines.append("  nprx2\\nprx1" + "".join(f"{n1:>{width}}" for n1 in n1s))
    for n2 in n2s:
        row = f"  {n2:>11}"
        for n1 in n1s:
            v = cells.get((n1, n2))
            row += f"{'-':>{width}}" if v is None else f"{v:>{width}.3f}"
        lines.append(row)
        row = " " * 13
        for n1 in n1s:
            v = cells.get((n1, n2))
            row += f"{'':>{width}}" if v is None else f"{shade(v):>{width}}"
        lines.append(row.rstrip())
    return "\n".join(lines)


def campaign_report(payload: dict[str, Any]) -> str:
    """Human-readable campaign summary (the ``report`` verb's output)."""
    jobs = payload.get("jobs", [])
    speedup = payload.get("timing", {}).get("speedup", {})
    lines = [
        f"CAMPAIGN {payload.get('campaign')} "
        f"[key {str(payload.get('campaign_key'))[:12]}..., "
        f"code {payload.get('code_version')}]",
        f"  jobs: {payload.get('njobs')}  ok: {payload.get('ok')}  "
        f"quarantined: {payload.get('quarantined')}",
    ]
    cache = payload.get("cache")
    if cache is not None:
        lines.append(
            f"  cache: {cache.get('hits', 0)} hits, "
            f"{cache.get('misses', 0)} misses, "
            f"{cache.get('corrupt', 0)} corrupt"
        )
    wall = payload.get("timing", {}).get("wall_seconds")
    if wall is not None:
        lines.append(f"  campaign wall time: {wall:.2f} s")
    lines.append("")
    header = (
        f"  {'job':<36} {'status':<12} {'iters':>6} {'conv':>5} "
        f"{'error':>10} {'wall[s]':>8} {'speedup':>8}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for entry in jobs:
        result = entry.get("result") or {}
        status = entry["status"]
        if entry.get("cache_hit"):
            status += " (hit)"
        err = result.get("solution_error")
        wall = _wall(entry)
        sp = speedup.get(entry["name"])
        lines.append(
            f"  {entry['name']:<36} {status:<12} "
            f"{result.get('iterations', '-'):>6} "
            f"{str(result.get('converged', '-')):>5} "
            f"{('%.3e' % err) if err is not None else '-':>10} "
            f"{('%.3f' % wall) if wall is not None else '-':>8} "
            f"{('%.2f' % sp) if sp is not None else '-':>8}"
        )
        if entry.get("error"):
            lines.append(f"      !! {entry['error']}")
    counters = payload.get("counters", {})
    if counters.get("linear_solves"):
        lines.append("")
        lines.append(
            f"  totals: {counters['linear_solves']} solves, "
            f"{counters.get('solver_iterations', 0)} iterations, "
            f"{counters.get('messages_sent', 0)} messages, "
            f"{counters.get('reductions', 0)} reductions"
        )
    lines.append("")
    lines.append(topology_heatmap(jobs))
    return "\n".join(lines)
