"""``repro campaign`` -- run/status/report/clean over campaign specs.

The CLI face of the campaign engine::

    repro campaign run    SPEC [--workers N] [--cache-dir D] [--output F]
    repro campaign status SPEC [--cache-dir D]
    repro campaign report [F | SPEC --cache-dir D]
    repro campaign clean  [SPEC] [--cache-dir D] [--yes]

``run`` prints live per-job progress and writes ``BENCH_campaign.json``
(path via ``--output``); its exit status is 0 only when no job ended
quarantined.  ``status`` shows, without running anything, which jobs
the cache would serve.  ``report`` re-renders the tables from a bench
file.  ``clean`` drops the spec's cache entries (or the whole cache).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.campaign.aggregate import build_bench_payload, campaign_report, write_bench
from repro.campaign.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.spec import CampaignSpec, CampaignSpecError

#: Default bench artifact name (next to the invoking directory, the
#: convention the other BENCH_*.json emitters follow).
DEFAULT_OUTPUT = "BENCH_campaign.json"


def _load_spec(path: str) -> CampaignSpec:
    try:
        return CampaignSpec.from_file(path)
    except CampaignSpecError as exc:
        raise SystemExit(f"repro campaign: {exc}") from None


def cmd_run(args: argparse.Namespace) -> int:
    from repro.monitor.trace import Tracer, validate_trace, write_trace

    spec = _load_spec(args.spec)
    cache = ResultCache(args.cache_dir)
    tracer = Tracer("repro campaign") if args.trace else None
    scheduler = CampaignScheduler(
        spec,
        cache=cache,
        workers=args.workers,
        progress=lambda msg: print(msg, flush=True),
        tracer=tracer,
    )
    result = scheduler.run()
    payload = build_bench_payload(result)
    out = write_bench(payload, args.output)
    print(result.summary())
    print(f"cache hits: {result.n_cache_hits}/{result.n_jobs}")
    print(f"wrote {out}")
    if not args.no_ledger:
        from repro.campaign.aggregate import ledger_results
        from repro.perf.ledger import Ledger

        ledger = Ledger(args.ledger)
        n = ledger.append_all(ledger_results(payload))
        print(f"appended {n} entries to {ledger.history_path}")
    if tracer is not None:
        trace_payload = tracer.to_payload(
            metadata={"campaign": spec.name, "njobs": result.n_jobs}
        )
        problems = validate_trace(trace_payload)
        trace_out = write_trace(trace_payload, args.trace)
        print(f"wrote {trace_out} ({len(tracer)} events)")
        if problems:
            print(f"trace validation failed: {problems[0]}", file=sys.stderr)
            return 1
    return 0 if result.n_quarantined == 0 else 1


def cmd_status(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    cache = ResultCache(args.cache_dir)
    jobs = spec.expand()
    cached = 0
    print(f"campaign '{spec.name}': {len(jobs)} jobs "
          f"(cache: {cache.root})")
    for job in jobs:
        if not job.valid:
            state = "invalid"
        elif cache.contains(job.key):
            state = "cached"
            cached += 1
        else:
            state = "pending"
        print(f"  {job.name:<40} {state:<8} {job.key[:12]}...")
    print(f"{cached}/{len(jobs)} jobs would be served from cache")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    source = Path(args.source)
    if source.suffix == ".toml" or _looks_like_spec(source):
        # Re-aggregate straight from the cache, no execution.
        spec = _load_spec(args.source)
        cache = ResultCache(args.cache_dir)
        scheduler = CampaignScheduler(spec, cache=cache, workers=1)
        jobs = spec.expand()
        if not all(job.valid and cache.contains(job.key) for job in jobs):
            print(
                "repro campaign report: not every job of this spec is "
                "cached; run `repro campaign run` first", file=sys.stderr,
            )
            return 1
        payload = build_bench_payload(scheduler.run())
    else:
        try:
            payload = json.loads(source.read_text())
        except FileNotFoundError:
            print(f"repro campaign report: no such file: {source}",
                  file=sys.stderr)
            return 1
        except json.JSONDecodeError as exc:
            print(f"repro campaign report: {source} is not valid JSON: {exc}",
                  file=sys.stderr)
            return 1
    print(campaign_report(payload))
    return 0


def _looks_like_spec(path: Path) -> bool:
    """A JSON file is a spec (not a bench payload) iff its "campaign"
    entry is the spec's section mapping rather than the bench's name."""
    if path.suffix != ".json":
        return False
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(data, dict) and isinstance(data.get("campaign"), dict)


def cmd_clean(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.spec is not None:
        spec = _load_spec(args.spec)
        keys = [job.key for job in spec.expand()]
        removed = cache.clean(keys)
        print(f"removed {removed} cache entries of campaign '{spec.name}'")
    else:
        if not args.yes:
            print(
                "repro campaign clean: refusing to drop the whole cache "
                "without --yes (pass a SPEC to clean one campaign)",
                file=sys.stderr,
            )
            return 2
        removed = cache.clean()
        print(f"removed {removed} cache entries from {cache.root}")
    return 0


# ----------------------------------------------------------------------
def add_campaign_parser(sub: argparse._SubParsersAction) -> None:
    """Wire the ``campaign`` subcommand tree onto the main parser."""
    p = sub.add_parser(
        "campaign",
        help="run scaling-study campaigns with a content-addressed cache",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    verbs = p.add_subparsers(dest="verb", required=True)

    def common(vp: argparse.ArgumentParser) -> None:
        vp.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR,
            help=f"result-cache root (default: {DEFAULT_CACHE_DIR})",
        )

    vp = verbs.add_parser("run", help="execute a campaign spec")
    vp.add_argument("spec", help="campaign spec file (.toml or .json)")
    vp.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: the spec's setting)")
    vp.add_argument("--output", default=DEFAULT_OUTPUT,
                    help=f"bench artifact path (default: {DEFAULT_OUTPUT})")
    vp.add_argument("--trace", metavar="PATH", default=None,
                    help="write the scheduler's job-lifecycle timeline "
                         "(Chrome trace-event JSON) to PATH")
    vp.add_argument("--ledger", default="benchmarks/_reports",
                    help="performance-ledger directory campaign results "
                         "are appended to (default: benchmarks/_reports)")
    vp.add_argument("--no-ledger", action="store_true",
                    help="skip the performance-ledger append")
    common(vp)
    vp.set_defaults(fn=cmd_run)

    vp = verbs.add_parser("status", help="show which jobs the cache covers")
    vp.add_argument("spec", help="campaign spec file (.toml or .json)")
    common(vp)
    vp.set_defaults(fn=cmd_status)

    vp = verbs.add_parser(
        "report", help="render tables from a bench file or a cached spec"
    )
    vp.add_argument("source",
                    help="BENCH_campaign.json, or a spec file to "
                         "re-aggregate from cache")
    common(vp)
    vp.set_defaults(fn=cmd_report)

    vp = verbs.add_parser("clean", help="drop cache entries")
    vp.add_argument("spec", nargs="?", default=None,
                    help="spec whose entries to drop (omit for the "
                         "whole cache, requires --yes)")
    vp.add_argument("--yes", action="store_true",
                    help="confirm dropping the entire cache")
    common(vp)
    vp.set_defaults(fn=cmd_clean)
