"""The unit of execution a campaign worker process runs.

:func:`execute_job` is the only function that crosses the
``concurrent.futures`` process boundary, so it is module-level, takes
one plain-dict payload and returns one plain-dict outcome -- nothing
that needs pickling beyond JSON-shaped data.  It never raises: every
failure mode (invalid config, solver blow-up, aborted SPMD world) is
folded into a ``status="failed"`` record the scheduler can retry or
quarantine while the rest of the campaign keeps running.
"""

from __future__ import annotations

import traceback
from typing import Any

from repro.v2d.job import run_job

#: Per-rank watchdog for decomposed in-job runs, so one wedged job
#: cannot stall its worker process forever (the scheduler's own
#: timeout then quarantines it).
JOB_SPMD_TIMEOUT = 600.0


def execute_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one job payload; always returns an outcome record.

    ``payload`` carries the resolved :class:`~repro.campaign.spec.JobSpec`
    fields (``name``, ``problem``, ``config``, ``key``, ``valid`` ...).
    The outcome echoes ``name``/``key`` so the scheduler can match it
    back without trusting future ordering.
    """
    outcome: dict[str, Any] = {
        "name": payload.get("name", "?"),
        "key": payload.get("key", ""),
        "status": "failed",
        "result": None,
        "error": None,
    }
    if not payload.get("valid", True):
        outcome["error"] = (
            f"invalid configuration: {payload.get('invalid_reason')}"
        )
        return outcome
    try:
        result = run_job(
            payload["config"],
            problem=payload.get("problem", "gaussian-pulse"),
            timeout=payload.get("spmd_timeout", JOB_SPMD_TIMEOUT),
        )
    except Exception as exc:  # noqa: BLE001 - the whole point is containment
        tail = traceback.format_exc(limit=3).strip().splitlines()[-1]
        outcome["error"] = f"{type(exc).__name__}: {exc} ({tail})"
        return outcome
    outcome["status"] = "ok"
    outcome["result"] = result
    return outcome
