"""Declarative campaign specs and their deterministic expansion.

A :class:`CampaignSpec` describes a *study* the way the paper ran one:
a base configuration plus axes to sweep (grid mode), or an explicit
job list (list mode), over a named test problem.  :meth:`expand`
turns it into an ordered list of :class:`JobSpec` -- the expansion
order, per-job names, seeds and content hashes are all deterministic,
so the same spec always names the same jobs and hits the same cache
entries no matter where or how often it runs.

Spec files are TOML or JSON with up to four sections::

    [campaign]                      # name, seed, scheduling knobs
    name = "table1-topologies"
    problem = "gaussian-pulse"
    seed = 1234
    workers = 4
    retries = 1                     # resubmissions per failed job
    timeout = 300.0                 # per-job wall budget (seconds)

    [base]                          # V2DConfig fields shared by jobs
    nx1 = 50
    nx2 = 25

    [axes]                          # grid mode: cartesian product
    topology = [[1, 1], [10, 1]]    # special axis -> (nprx1, nprx2)
    backend = ["vector", "scalar"]  # add "jit" where numba is installed

    [[jobs]]                        # list mode: explicit entries,
    nprx1 = 2                       # each merged over [base]
    nprx2 = 2

Axis keys are :class:`~repro.v2d.config.V2DConfig` field names, plus
two specials: ``topology`` (a ``[nprx1, nprx2]`` pair, so sweeps name
only valid factorizations instead of a product of rank counts) and
``problem``.  Grid and list mode combine: the grid expands once per
explicit job entry.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.hashing import canonical_json, derive_seed, job_key
from repro.resilience.retry import RetryPolicy
from repro.v2d.config import V2DConfig

#: V2DConfig field names a spec may set.
_CONFIG_FIELDS = {f.name for f in dataclasses.fields(V2DConfig)}

#: Axis keys with expansion semantics beyond "set this config field".
_SPECIAL_AXES = {"topology", "problem"}

#: Recognized [campaign] section keys.
_CAMPAIGN_KEYS = {"name", "problem", "seed", "workers", "retries", "timeout"}


class CampaignSpecError(ValueError):
    """The spec file or mapping is not a valid campaign description."""


@dataclass(frozen=True)
class JobSpec:
    """One fully-resolved unit of work in a campaign.

    ``config`` is the canonical full config dict (every field present,
    defaults filled) whenever the configuration is constructible; a
    config the :class:`V2DConfig` validator rejects is kept raw with
    ``valid=False`` so the campaign can quarantine it instead of
    refusing to expand.
    """

    index: int
    name: str
    problem: str
    config: dict
    seed: int
    key: str
    valid: bool = True
    invalid_reason: str | None = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class CampaignSpec:
    """A declarative scaling study: base config, sweep axes, policies."""

    name: str
    problem: str = "gaussian-pulse"
    base: dict = field(default_factory=dict)
    axes: dict[str, list] = field(default_factory=dict)
    jobs: list[dict] = field(default_factory=list)
    seed: int = 0
    workers: int = 2
    timeout: float | None = None
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(max_attempts=2))

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignSpecError("campaign needs a non-empty name")
        if self.workers < 1:
            raise CampaignSpecError("workers must be at least 1")
        if self.timeout is not None and self.timeout <= 0:
            raise CampaignSpecError("timeout must be positive (or omitted)")
        unknown = set(self.base) - _CONFIG_FIELDS
        if unknown:
            raise CampaignSpecError(
                f"[base] sets unknown config fields: {sorted(unknown)}"
            )
        for axis, values in self.axes.items():
            if axis not in _CONFIG_FIELDS | _SPECIAL_AXES:
                raise CampaignSpecError(
                    f"unknown sweep axis {axis!r}; expected a V2DConfig "
                    f"field or one of {sorted(_SPECIAL_AXES)}"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise CampaignSpecError(
                    f"axis {axis!r} must list at least one value"
                )

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, data: dict) -> "CampaignSpec":
        """Build a spec from the parsed file structure."""
        campaign = dict(data.get("campaign") or {})
        unknown = set(campaign) - _CAMPAIGN_KEYS
        if unknown:
            raise CampaignSpecError(
                f"unknown [campaign] keys: {sorted(unknown)}; "
                f"recognized: {sorted(_CAMPAIGN_KEYS)}"
            )
        if "name" not in campaign:
            raise CampaignSpecError("[campaign] must set a name")
        retries = campaign.pop("retries", 1)
        if not isinstance(retries, int) or retries < 0:
            raise CampaignSpecError("retries must be a non-negative integer")
        stray = set(data) - {"campaign", "base", "axes", "jobs"}
        if stray:
            raise CampaignSpecError(
                f"unknown top-level sections: {sorted(stray)}"
            )
        return cls(
            base=dict(data.get("base") or {}),
            axes=dict(data.get("axes") or {}),
            jobs=[dict(j) for j in (data.get("jobs") or [])],
            retry=RetryPolicy(max_attempts=retries + 1),
            **campaign,
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        """Load a ``.toml`` or ``.json`` spec file."""
        path = Path(path)
        if not path.exists():
            raise CampaignSpecError(f"campaign spec not found: {path}")
        text = path.read_text()
        if path.suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise CampaignSpecError(f"{path}: invalid TOML: {exc}") from exc
        elif path.suffix == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise CampaignSpecError(f"{path}: invalid JSON: {exc}") from exc
        else:
            raise CampaignSpecError(
                f"{path}: unsupported spec format {path.suffix!r} "
                f"(use .toml or .json)"
            )
        return cls.from_mapping(data)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def expand(self) -> list[JobSpec]:
        """The ordered, fully-resolved job list this spec names."""
        entries = self.jobs if self.jobs else [{}]
        axis_names = sorted(self.axes)
        grids = [self.axes[a] for a in axis_names]
        out: list[JobSpec] = []
        for entry in entries:
            entry = dict(entry)
            entry_name = entry.pop("name", None)
            for combo in itertools.product(*grids):
                out.append(
                    self._resolve_job(
                        index=len(out),
                        entry=entry,
                        entry_name=entry_name,
                        axis_values=dict(zip(axis_names, combo)),
                    )
                )
        return out

    def _resolve_job(
        self,
        index: int,
        entry: dict,
        entry_name: str | None,
        axis_values: dict[str, Any],
    ) -> JobSpec:
        problem = self.problem
        overrides: dict[str, Any] = dict(self.base)
        overrides.update(entry)
        name_parts: list[str] = [] if entry_name is None else [entry_name]
        for axis, value in axis_values.items():
            if axis == "topology":
                n1, n2 = value
                overrides["nprx1"], overrides["nprx2"] = int(n1), int(n2)
                name_parts.append(f"topology={n1}x{n2}")
            elif axis == "problem":
                problem = str(value)
                name_parts.append(f"problem={value}")
            else:
                overrides[axis] = value
                name_parts.append(f"{axis}={value}")
        if "problem" in entry:
            problem = str(overrides.pop("problem"))
        name = ",".join(name_parts) if name_parts else f"job{index:03d}"
        if self.jobs and entry_name is None:
            name = f"job{index:03d}" + (f":{name}" if name_parts else "")
        seed = derive_seed(self.seed, index, name)
        res = overrides.get("resilience")
        if isinstance(res, dict) and "seed" not in res:
            res = dict(res)
            res["seed"] = seed
            overrides["resilience"] = res
        # Canonicalize through V2DConfig so equivalent spellings (with
        # or without explicit defaults) hash to the same cache key; an
        # unconstructible config stays raw and is quarantined at run.
        valid, reason = True, None
        try:
            config = V2DConfig.from_dict(overrides).to_dict()
        except (ValueError, TypeError) as exc:
            config, valid, reason = dict(overrides), False, str(exc)
        return JobSpec(
            index=index,
            name=name,
            problem=problem,
            config=config,
            seed=seed,
            key=job_key(config, problem),
            valid=valid,
            invalid_reason=reason,
        )

    # ------------------------------------------------------------------
    def campaign_key(self) -> str:
        """Content hash of the whole study (order-sensitive job keys)."""
        import hashlib

        material = canonical_json([j.key for j in self.expand()])
        return hashlib.sha256(material.encode()).hexdigest()
