"""The campaign work-queue scheduler.

Turns an expanded :class:`~repro.campaign.spec.CampaignSpec` into
finished results: consults the content-addressed cache first, orders
the remaining jobs longest-first by the perfmodel cost estimate (the
LPT heuristic -- with a work-stealing pool, handing out the expensive
jobs early minimizes the makespan), and runs them on a
``concurrent.futures`` process pool with bounded per-job retries
(budgeted by the same :class:`~repro.resilience.retry.RetryPolicy`
machinery the step-level recovery uses) and a wall-clock deadline.

Failure semantics are the resilience model's, lifted one level up: a
job that exhausts its attempt budget (or the deadline) is *quarantined*
-- recorded with its error, never cached -- and the campaign continues;
one bad configuration cannot take down a study.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.campaign.cache import CacheStats, ResultCache
from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.worker import execute_job
from repro.monitor.trace import Tracer
from repro.perfmodel.costmodel import CostModel

#: Outcome states a job record can end in.
JOB_OK = "ok"
JOB_QUARANTINED = "quarantined"

ProgressFn = Callable[[str], None]


@dataclass
class JobRecord:
    """Terminal state of one job within a campaign run."""

    job: JobSpec
    status: str
    cache_hit: bool = False
    attempts: int = 0
    result: dict[str, Any] | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == JOB_OK


@dataclass
class CampaignResult:
    """Everything one scheduler invocation produced."""

    spec: CampaignSpec
    records: list[JobRecord]
    cache_stats: CacheStats
    wall_seconds: float
    workers: int
    ran: int = 0

    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def n_quarantined(self) -> int:
        return sum(1 for r in self.records if r.status == JOB_QUARANTINED)

    @property
    def n_cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    def summary(self) -> str:
        return (
            f"campaign '{self.spec.name}': {self.n_ok}/{self.n_jobs} ok, "
            f"{self.n_quarantined} quarantined, "
            f"cache hits: {self.n_cache_hits}/{self.n_jobs}, "
            f"ran {self.ran} on {self.workers} workers "
            f"in {self.wall_seconds:.2f} s"
        )


def estimate_cost(job: JobSpec) -> float:
    """Scheduling cost estimate (relative seconds) for one job."""
    cfg = job.config
    try:
        model = CostModel(
            nx1=int(cfg.get("nx1", 64)),
            nx2=int(cfg.get("nx2", 32)),
            nsteps=max(1, int(cfg.get("nsteps", 10))),
        )
        return model.estimate_job_seconds(
            nprx1=int(cfg.get("nprx1", 1)),
            nprx2=int(cfg.get("nprx2", 1)),
            backend=str(cfg.get("backend", "vector")),
        )
    except (ValueError, TypeError):
        return 0.0


class CampaignScheduler:
    """Runs one campaign: cache short-circuit, LPT queue, retries.

    With a ``tracer``, every job's lifecycle becomes an async
    ``job:<name>`` window on the scheduler's track (submit to finish),
    with instants for cache hits, retries and quarantines -- the
    campaign-level view of what the pool had in flight when.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        cache: ResultCache | None = None,
        workers: int | None = None,
        progress: ProgressFn | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.spec = spec
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers if workers is not None else spec.workers
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self._progress = progress or (lambda _msg: None)
        self.tracer = tracer
        self._job_aids: dict[int, int] = {}

    # -- trace hooks (no-ops without a tracer) -------------------------
    def _trace_begin(self, job: JobSpec) -> None:
        if self.tracer is not None:
            self._job_aids[job.index] = self.tracer.async_begin(
                f"job:{job.name}", cat="campaign",
                args={"key": job.key[:12]},
            )

    def _trace_end(self, job: JobSpec, status: str) -> None:
        if self.tracer is not None:
            aid = self._job_aids.pop(job.index, None)
            if aid is not None:
                self.tracer.async_end(
                    f"job:{job.name}", aid, cat="campaign",
                    args={"status": status},
                )

    def _trace_instant(self, name: str, job: JobSpec, **args: Any) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                name, cat="campaign", args={"job": job.name, **args}
            )

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        t0 = time.monotonic()
        jobs = self.spec.expand()
        records: dict[int, JobRecord] = {}
        runnable: list[JobSpec] = []

        for job in jobs:
            if not job.valid:
                records[job.index] = JobRecord(
                    job=job,
                    status=JOB_QUARANTINED,
                    error=f"invalid configuration: {job.invalid_reason}",
                )
                self._trace_instant(
                    "job_quarantined", job, reason="invalid config"
                )
                self._progress(
                    f"[{len(records)}/{len(jobs)}] {job.name}: quarantined "
                    f"(invalid config)"
                )
                continue
            cached = self.cache.get(job.key)
            if cached is not None:
                records[job.index] = JobRecord(
                    job=job, status=JOB_OK, cache_hit=True, result=cached
                )
                self._trace_instant("job_cached", job)
                self._progress(
                    f"[{len(records)}/{len(jobs)}] {job.name}: cached"
                )
            else:
                runnable.append(job)

        # Longest-first hand-out order: with a work-stealing pool the
        # expensive jobs must not land last or they alone set the
        # campaign makespan.
        runnable.sort(key=lambda j: (-estimate_cost(j), j.index))
        if runnable:
            self._execute(runnable, records, total=len(jobs))

        ordered = [records[j.index] for j in jobs]
        return CampaignResult(
            spec=self.spec,
            records=ordered,
            cache_stats=self.cache.stats,
            wall_seconds=time.monotonic() - t0,
            workers=min(self.workers, max(1, len(runnable))),
            ran=sum(1 for r in ordered if r.ok and not r.cache_hit),
        )

    # ------------------------------------------------------------------
    def _finish(
        self,
        records: dict[int, JobRecord],
        total: int,
        job: JobSpec,
        outcome: dict[str, Any],
        attempts: int,
    ) -> None:
        if outcome["status"] == "ok":
            self.cache.put(job.key, outcome["result"])
            records[job.index] = JobRecord(
                job=job, status=JOB_OK, attempts=attempts,
                result=outcome["result"],
            )
            note = "ok"
        else:
            records[job.index] = JobRecord(
                job=job, status=JOB_QUARANTINED, attempts=attempts,
                error=outcome["error"],
            )
            note = f"quarantined after {attempts} attempt(s): {outcome['error']}"
        self._trace_end(job, records[job.index].status)
        self._progress(f"[{len(records)}/{total}] {job.name}: {note}")

    def _execute(
        self, runnable: list[JobSpec], records: dict[int, JobRecord], total: int
    ) -> None:
        workers = min(self.workers, len(runnable))
        budget = self.spec.retry.max_attempts
        if workers == 1:
            # Inline serial path: deterministic, debuggable, no pool.
            for job in runnable:
                self._trace_begin(job)
                for attempt in range(1, budget + 1):
                    outcome = execute_job(job.to_dict())
                    if outcome["status"] == "ok" or attempt == budget:
                        self._finish(records, total, job, outcome, attempt)
                        break
                    self._trace_instant("job_retry", job, attempt=attempt)
                    self._progress(
                        f"{job.name}: attempt {attempt} failed, retrying "
                        f"({outcome['error']})"
                    )
            return

        # Deadline covering every wave of attempts; per-job timeouts
        # cannot interrupt a compute-bound worker from outside, so the
        # guarantee is campaign-level: no study waits longer than
        # timeout x waves, stragglers get quarantined.
        deadline = None
        if self.spec.timeout is not None:
            waves = math.ceil(len(runnable) / workers) * budget
            deadline = time.monotonic() + self.spec.timeout * waves

        attempts: dict[int, int] = {job.index: 0 for job in runnable}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending: dict[Future, JobSpec] = {}
            for job in runnable:
                attempts[job.index] = 1
                self._trace_begin(job)
                pending[pool.submit(execute_job, job.to_dict())] = job
            while pending:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                done, _ = wait(pending, timeout=timeout,
                               return_when=FIRST_COMPLETED)
                if not done:
                    for fut, job in pending.items():
                        fut.cancel()
                        records[job.index] = JobRecord(
                            job=job, status=JOB_QUARANTINED,
                            attempts=attempts[job.index],
                            error=f"deadline exceeded "
                                  f"({self.spec.timeout} s/job budget)",
                        )
                        self._trace_end(job, JOB_QUARANTINED)
                        self._progress(
                            f"[{len(records)}/{total}] {job.name}: "
                            f"quarantined (timeout)"
                        )
                    pool.shutdown(wait=False, cancel_futures=True)
                    return
                for fut in done:
                    job = pending.pop(fut)
                    exc = fut.exception()
                    if exc is not None:
                        # Worker process died (signal, OOM): treat as a
                        # failed attempt, not a campaign abort.
                        outcome = {
                            "name": job.name, "key": job.key,
                            "status": "failed", "result": None,
                            "error": f"worker crashed: {exc!r}",
                        }
                    else:
                        outcome = fut.result()
                    if (
                        outcome["status"] != "ok"
                        and attempts[job.index] < budget
                    ):
                        attempts[job.index] += 1
                        self._trace_instant(
                            "job_retry", job, attempt=attempts[job.index] - 1
                        )
                        self._progress(
                            f"{job.name}: attempt "
                            f"{attempts[job.index] - 1} failed, retrying "
                            f"({outcome['error']})"
                        )
                        try:
                            fut = pool.submit(execute_job, job.to_dict())
                        except Exception as resubmit_exc:  # broken pool
                            outcome["error"] = (
                                f"{outcome['error']}; resubmit failed: "
                                f"{resubmit_exc!r}"
                            )
                            self._finish(
                                records, total, job, outcome,
                                attempts[job.index],
                            )
                        else:
                            pending[fut] = job
                        continue
                    self._finish(
                        records, total, job, outcome, attempts[job.index]
                    )
