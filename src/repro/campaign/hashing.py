"""Canonical content hashing: what makes two jobs "the same run".

The result cache is content-addressed: a job's key is the SHA-256 of a
canonical JSON rendering of ``(schema, code version, problem, config)``.
Two invocations that would compute the same physics therefore collide
onto one cache entry, regardless of campaign name, job ordering,
worker count, or which spec file spelled them.

What invalidates a key (and hence forces recomputation):

* any :class:`~repro.v2d.config.V2DConfig` field, including solver
  knobs, topology, backend, and the attached resilience config;
* the problem name;
* the code version tag (``repro.__version__``) -- a release that may
  change numerics must not serve stale results;
* the cache schema (:data:`CACHE_SCHEMA`) and job payload schema
  (:data:`~repro.v2d.job.RESULT_SCHEMA`).

Deliberately *not* part of the key: scheduling policy (workers,
timeouts, retry budgets), which affects when a result materializes but
never what it contains.
"""

from __future__ import annotations

import functools
import hashlib
import json
from pathlib import Path
from typing import Any

import repro
from repro.v2d.job import RESULT_SCHEMA

#: Version of the key derivation itself; bump to orphan every entry.
CACHE_SCHEMA = 1


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """The code-version tag folded into every cache key.

    ``<__version__>+g<sha12>`` when the package sits inside a git
    checkout (with a ``.dirty`` suffix for uncommitted edits, so a
    modified tree never serves results cached by its parent commit);
    plain ``__version__`` otherwise.  Memoized per process: key
    derivation happens on every cache lookup, dedup check and campaign
    expansion, and the git subprocess must run at most once.
    """
    version = repro.__version__
    try:
        from repro.perf.schema import git_revision

        sha, dirty = git_revision(cwd=str(Path(repro.__file__).resolve().parent))
    except Exception:  # noqa: BLE001 - fingerprint is best-effort
        return version
    if not sha:
        return version
    return f"{version}+g{sha[:12]}" + (".dirty" if dirty else "")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators, no NaN.

    The canonical form is what gets hashed and checksummed, so it must
    be identical across processes and Python versions for equal input.
    ``allow_nan=False`` keeps the rendering unambiguous (NaN has no
    JSON spelling); configs never legitimately contain one.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def job_key(config: dict, problem: str, version: str | None = None) -> str:
    """Content hash (hex SHA-256) identifying one job's result."""
    material = {
        "cache_schema": CACHE_SCHEMA,
        "result_schema": RESULT_SCHEMA,
        "code_version": version if version is not None else code_version(),
        "problem": problem,
        "config": config,
    }
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()


def derive_seed(campaign_seed: int, job_index: int, job_name: str) -> int:
    """Deterministic per-job seed from the campaign seed.

    Derived from the job's position and name in the deterministic
    expansion order -- not from its config hash, which would be
    circular once the seed is folded back into the config (resilience
    injection seeds).  Stable across runs, machines and worker counts.
    """
    material = f"{campaign_seed}:{job_index}:{job_name}"
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
