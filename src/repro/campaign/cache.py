"""Content-addressed result cache and artifact store.

Finished job payloads live under ``.repro-cache/objects/<kk>/<key>.json``
where ``key`` is the job's content hash (:mod:`repro.campaign.hashing`)
and ``kk`` its first two hex digits -- the usual fan-out so a big
campaign does not pile thousands of entries into one directory.

Every entry is written through :func:`repro.io.atomic.atomic_write_bytes`
-- the same crash-safe temp-file + fsync + rename path checkpoints use
-- and carries a CRC32 over the canonical payload rendering, verified
on every read (the CRC discipline of :mod:`repro.io.checkpoint`).  A
corrupt entry is *detected, evicted and recomputed*, never trusted:
:meth:`ResultCache.get` returns ``None`` for it and removes the file
so the scheduler treats the job as a plain miss.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.campaign.hashing import canonical_json
from repro.campaign.hashing import job_key as _hash_job_key
from repro.io.atomic import atomic_write_bytes, crc32_update
from repro.monitor.trace import get_metrics

#: Default cache root, relative to the invoking directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def job_key(config: Any, problem: str) -> str:
    """The content-address key for one job (public helper).

    Accepts a :class:`~repro.v2d.config.V2DConfig` or any mapping its
    ``from_dict`` accepts, canonicalizes it through the config layer
    (so spelling variations -- omitted defaults, int-vs-float -- hash
    identically), and returns the hex SHA-256 the campaign scheduler,
    the serve dedup index and the ``.repro-cache`` store all key by.
    Code-version fingerprinting is memoized per process
    (:func:`repro.campaign.hashing.code_version`), so repeated lookups
    cost one canonical-JSON render and one SHA-256.
    """
    from repro.v2d.config import V2DConfig

    if isinstance(config, V2DConfig):
        canonical = config.to_dict()
    else:
        canonical = V2DConfig.from_dict(dict(config)).to_dict()
    return _hash_job_key(canonical, problem)


@dataclass
class CacheStats:
    """Read/write traffic of one cache instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    puts: int = 0

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.corrupt} corrupt (evicted), {self.puts} writes"
        )


class ResultCache:
    """Content-addressed store of job payloads keyed by config hash."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        """Every key currently stored (sorted, for stable reports)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return iter(())
        return iter(sorted(p.stem for p in objects.glob("*/*.json")))

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` on miss/corruption.

        A corrupt entry (unparseable, key mismatch, or CRC failure) is
        evicted so the caller recomputes instead of trusting it.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            get_metrics().inc("repro.cache.misses")
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._evict_corrupt(path)
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            self._evict_corrupt(path)
            return None
        payload = entry.get("payload")
        crc = crc32_update(canonical_json(payload).encode())
        if payload is None or crc != entry.get("crc32"):
            self._evict_corrupt(path)
            return None
        self.stats.hits += 1
        get_metrics().inc("repro.cache.hits")
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> Path:
        """Store ``payload`` under ``key`` (atomic, checksummed)."""
        body = canonical_json(payload)
        entry = {
            "key": key,
            "crc32": crc32_update(body.encode()),
            "payload": payload,
        }
        self.stats.puts += 1
        get_metrics().inc("repro.cache.puts")
        return atomic_write_bytes(
            self.path_for(key), (canonical_json(entry) + "\n").encode()
        )

    def _evict_corrupt(self, path: Path) -> None:
        self.stats.corrupt += 1
        self.stats.misses += 1
        metrics = get_metrics()
        metrics.inc("repro.cache.corrupt")
        metrics.inc("repro.cache.misses")
        path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def clean(self, keys: list[str] | None = None) -> int:
        """Remove ``keys`` (or every entry when ``None``); returns count."""
        removed = 0
        targets = self.keys() if keys is None else keys
        for key in targets:
            path = self.path_for(key)
            if path.exists():
                path.unlink()
                removed += 1
        # Prune empty fan-out directories so clean leaves no debris.
        objects = self.root / "objects"
        if objects.is_dir():
            for sub in objects.iterdir():
                if sub.is_dir() and not any(sub.iterdir()):
                    sub.rmdir()
        return removed
