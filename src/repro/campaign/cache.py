"""Content-addressed result cache and artifact store.

Finished job payloads live under ``.repro-cache/objects/<kk>/<key>.json``
where ``key`` is the job's content hash (:mod:`repro.campaign.hashing`)
and ``kk`` its first two hex digits -- the usual fan-out so a big
campaign does not pile thousands of entries into one directory.

Every entry is written through :func:`repro.io.atomic.atomic_write_bytes`
-- the same crash-safe temp-file + fsync + rename path checkpoints use
-- and carries a CRC32 over the canonical payload rendering, verified
on every read (the CRC discipline of :mod:`repro.io.checkpoint`).  A
corrupt entry is *detected, evicted and recomputed*, never trusted:
:meth:`ResultCache.get` returns ``None`` for it and removes the file
so the scheduler treats the job as a plain miss.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.campaign.hashing import canonical_json
from repro.io.atomic import atomic_write_bytes, crc32_update

#: Default cache root, relative to the invoking directory.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass
class CacheStats:
    """Read/write traffic of one cache instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    puts: int = 0

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.corrupt} corrupt (evicted), {self.puts} writes"
        )


class ResultCache:
    """Content-addressed store of job payloads keyed by config hash."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        """Every key currently stored (sorted, for stable reports)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return iter(())
        return iter(sorted(p.stem for p in objects.glob("*/*.json")))

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` on miss/corruption.

        A corrupt entry (unparseable, key mismatch, or CRC failure) is
        evicted so the caller recomputes instead of trusting it.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._evict_corrupt(path)
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            self._evict_corrupt(path)
            return None
        payload = entry.get("payload")
        crc = crc32_update(canonical_json(payload).encode())
        if payload is None or crc != entry.get("crc32"):
            self._evict_corrupt(path)
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> Path:
        """Store ``payload`` under ``key`` (atomic, checksummed)."""
        body = canonical_json(payload)
        entry = {
            "key": key,
            "crc32": crc32_update(body.encode()),
            "payload": payload,
        }
        self.stats.puts += 1
        return atomic_write_bytes(
            self.path_for(key), (canonical_json(entry) + "\n").encode()
        )

    def _evict_corrupt(self, path: Path) -> None:
        self.stats.corrupt += 1
        self.stats.misses += 1
        path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def clean(self, keys: list[str] | None = None) -> int:
        """Remove ``keys`` (or every entry when ``None``); returns count."""
        removed = 0
        targets = self.keys() if keys is None else keys
        for key in targets:
            path = self.path_for(key)
            if path.exists():
                path.unlink()
                removed += 1
        # Prune empty fan-out directories so clean leaves no debris.
        objects = self.root / "objects"
        if objects.is_dir():
            for sub in objects.iterdir():
                if sub.is_dir() and not any(sub.iterdir()):
                    sub.rmdir()
        return removed
