"""The NPRX1 x NPRX2 tile decomposition.

V2D domain decomposes its grid into a Cartesian 2-D arrangement of
tiles "controlled by adjustable runtime parameters NPRX1 and NPRX2 ...
Thus the process topology may be varied to better apportion the load
among processors."  Table I's rows are exactly such topology
variations (e.g. 20 processors as 20x1, 10x2 or 5x4).

Zones are split as evenly as possible: with ``n`` zones over ``p``
tiles, the first ``n % p`` tiles get ``ceil(n/p)`` zones and the rest
``floor(n/p)``.  Ranks map to tile coordinates in row-major order with
the x1 tile index fastest, matching the dictionary ordering of the
assembled system.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property


def split_evenly(n: int, parts: int) -> list[tuple[int, int]]:
    """Balanced 1-D split: list of ``(start, stop)`` zone ranges.

    Raises ``ValueError`` when there are more parts than zones, which
    would leave idle processors holding empty tiles.
    """
    if parts < 1:
        raise ValueError("need at least one part")
    if parts > n:
        raise ValueError(f"cannot split {n} zones into {parts} non-empty tiles")
    base, extra = divmod(n, parts)
    ranges = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass(frozen=True)
class Tile:
    """One rank's rectangle of the global zone index space."""

    rank: int
    p1: int            # tile coordinate along x1 (0 .. nprx1-1)
    p2: int            # tile coordinate along x2 (0 .. nprx2-1)
    i1: tuple[int, int]  # global zone range [start, stop) along x1
    i2: tuple[int, int]  # global zone range [start, stop) along x2

    @property
    def nx1(self) -> int:
        return self.i1[1] - self.i1[0]

    @property
    def nx2(self) -> int:
        return self.i2[1] - self.i2[0]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nx1, self.nx2)

    @property
    def nzones(self) -> int:
        return self.nx1 * self.nx2

    @property
    def slice1(self) -> slice:
        return slice(self.i1[0], self.i1[1])

    @property
    def slice2(self) -> slice:
        return slice(self.i2[0], self.i2[1])

    def perimeter_zones(self, nprx1: int, nprx2: int) -> int:
        """Zones on interior tile boundaries (halo volume this tile sends).

        Faces on the physical domain boundary carry no communication.
        """
        n = 0
        if self.p1 > 0:
            n += self.nx2
        if self.p1 < nprx1 - 1:
            n += self.nx2
        if self.p2 > 0:
            n += self.nx1
        if self.p2 < nprx2 - 1:
            n += self.nx1
        return n


@dataclass(frozen=True)
class TileDecomposition:
    """Cartesian decomposition of an ``nx1 x nx2`` grid into
    ``nprx1 x nprx2`` tiles."""

    nx1: int
    nx2: int
    nprx1: int
    nprx2: int

    def __post_init__(self) -> None:
        # Validate both splits up front; split_evenly raises on
        # over-decomposition (more tiles than zones in a direction).
        split_evenly(self.nx1, self.nprx1)
        split_evenly(self.nx2, self.nprx2)

    @property
    def nranks(self) -> int:
        return self.nprx1 * self.nprx2

    @cached_property
    def _ranges1(self) -> list[tuple[int, int]]:
        return split_evenly(self.nx1, self.nprx1)

    @cached_property
    def _ranges2(self) -> list[tuple[int, int]]:
        return split_evenly(self.nx2, self.nprx2)

    # ------------------------------------------------------------------
    # Rank <-> tile-coordinate maps (x1 index fastest)
    # ------------------------------------------------------------------
    def coords_of(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return rank % self.nprx1, rank // self.nprx1

    def rank_of(self, p1: int, p2: int) -> int:
        if not (0 <= p1 < self.nprx1 and 0 <= p2 < self.nprx2):
            raise ValueError(f"tile coordinate ({p1},{p2}) out of range")
        return p2 * self.nprx1 + p1

    def tile(self, rank: int) -> Tile:
        p1, p2 = self.coords_of(rank)
        return Tile(rank=rank, p1=p1, p2=p2, i1=self._ranges1[p1], i2=self._ranges2[p2])

    def tiles(self) -> list[Tile]:
        return [self.tile(r) for r in range(self.nranks)]

    # ------------------------------------------------------------------
    # Neighbours
    # ------------------------------------------------------------------
    def neighbor(self, rank: int, d1: int, d2: int) -> int | None:
        """Rank offset by (d1, d2) tile steps, or ``None`` at the edge."""
        p1, p2 = self.coords_of(rank)
        q1, q2 = p1 + d1, p2 + d2
        if 0 <= q1 < self.nprx1 and 0 <= q2 < self.nprx2:
            return self.rank_of(q1, q2)
        return None

    def neighbors(self, rank: int) -> dict[str, int | None]:
        """The four face neighbours: west/east along x1, south/north along x2."""
        return {
            "west": self.neighbor(rank, -1, 0),
            "east": self.neighbor(rank, +1, 0),
            "south": self.neighbor(rank, 0, -1),
            "north": self.neighbor(rank, 0, +1),
        }

    # ------------------------------------------------------------------
    # Load / communication metrics (consumed by the performance model)
    # ------------------------------------------------------------------
    def max_tile_zones(self) -> int:
        """Zones on the most loaded rank (sets the parallel compute time)."""
        return max(t.nzones for t in self.tiles())

    def max_halo_zones(self) -> int:
        """Largest per-rank halo volume in zones."""
        return max(t.perimeter_zones(self.nprx1, self.nprx2) for t in self.tiles())

    def max_neighbor_count(self) -> int:
        """Most messages any rank sends per halo exchange."""
        best = 0
        for r in range(self.nranks):
            best = max(best, sum(1 for v in self.neighbors(r).values() if v is not None))
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TileDecomposition({self.nx1}x{self.nx2} zones, "
            f"{self.nprx1}x{self.nprx2} tiles)"
        )
