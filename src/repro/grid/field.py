"""Ghost-padded multi-species fields.

V2D stores solver vectors "as Fortran arrays defined with the same
spatial shape as the 2D grid".  :class:`Field` is that storage: an
``(ns, nx1 + 2g, nx2 + 2g)`` array with ``g`` ghost layers, plus zero-
copy views of the interior and of the boundary strips the halo
exchange reads and writes.
"""

from __future__ import annotations

import numpy as np

Array = np.ndarray

#: Sides in the order (axis, low/high) used across the halo machinery.
SIDES: tuple[str, ...] = ("west", "east", "south", "north")


class Field:
    """Multi-species zone-centred field with ghost zones.

    Parameters
    ----------
    nspec:
        Number of species (leading axis).
    shape:
        Interior zone shape ``(nx1, nx2)``.
    nghost:
        Ghost layers per side (the 5-point diffusion stencil needs 1;
        the MUSCL hydro reconstruction needs 2).
    """

    def __init__(self, nspec: int, shape: tuple[int, int], nghost: int = 1) -> None:
        if nspec < 1:
            raise ValueError("need at least one species")
        if nghost < 1:
            raise ValueError("need at least one ghost layer")
        nx1, nx2 = shape
        if nx1 < 1 or nx2 < 1:
            raise ValueError("interior shape must be positive")
        self.nspec = nspec
        self.nghost = nghost
        self._shape = (nx1, nx2)
        self.data = np.zeros((nspec, nx1 + 2 * nghost, nx2 + 2 * nghost))

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Interior shape ``(nx1, nx2)``."""
        return self._shape

    @property
    def interior(self) -> Array:
        """Zero-copy ``(ns, nx1, nx2)`` view of the interior zones."""
        g = self.nghost
        return self.data[:, g:-g, g:-g]

    @interior.setter
    def interior(self, values: Array) -> None:
        self.interior[...] = values

    # ------------------------------------------------------------------
    # Boundary strips (for halo exchange and boundary conditions).
    # "send" strips are interior zones adjacent to a side; "ghost"
    # strips are the ghost zones on that side.  Both are views.
    # ------------------------------------------------------------------
    def send_strip(self, side: str, width: int | None = None) -> Array:
        g = self.nghost
        w = g if width is None else width
        if not 1 <= w <= g:
            raise ValueError(f"strip width {w} outside [1, {g}]")
        if side == "west":
            return self.data[:, g : g + w, g:-g]
        if side == "east":
            return self.data[:, -g - w : -g, g:-g]
        if side == "south":
            return self.data[:, g:-g, g : g + w]
        if side == "north":
            return self.data[:, g:-g, -g - w : -g]
        raise ValueError(f"unknown side {side!r}")

    def ghost_strip(self, side: str, width: int | None = None) -> Array:
        g = self.nghost
        w = g if width is None else width
        if not 1 <= w <= g:
            raise ValueError(f"strip width {w} outside [1, {g}]")
        # The width-w ghost strip nearest the interior on each side.
        hi = None if w == g else -g + w
        if side == "west":
            return self.data[:, g - w : g, g:-g]
        if side == "east":
            return self.data[:, -g:hi, g:-g]
        if side == "south":
            return self.data[:, g:-g, g - w : g]
        if side == "north":
            return self.data[:, g:-g, -g:hi]
        raise ValueError(f"unknown side {side!r}")

    # ------------------------------------------------------------------
    def fill_ghosts_zero(self) -> None:
        """Zero every ghost zone (Dirichlet-0 exterior)."""
        g = self.nghost
        self.data[:, :g, :] = 0.0
        self.data[:, -g:, :] = 0.0
        self.data[:, :, :g] = 0.0
        self.data[:, :, -g:] = 0.0

    def reflect_side(self, side: str) -> None:
        """Mirror interior zones into this side's ghosts (Neumann-0)."""
        g = self.nghost
        if side == "west":
            self.data[:, :g, g:-g] = self.data[:, 2 * g - 1 : g - 1 : -1, g:-g]
        elif side == "east":
            self.data[:, -g:, g:-g] = self.data[:, -g - 1 : -2 * g - 1 : -1, g:-g]
        elif side == "south":
            self.data[:, g:-g, :g] = self.data[:, g:-g, 2 * g - 1 : g - 1 : -1]
        elif side == "north":
            self.data[:, g:-g, -g:] = self.data[:, g:-g, -g - 1 : -2 * g - 1 : -1]
        else:
            raise ValueError(f"unknown side {side!r}")

    def outflow_side(self, side: str) -> None:
        """Zero-gradient fill: replicate the nearest interior strip
        into this side's ghosts (free-outflow boundary)."""
        g = self.nghost
        if side == "west":
            self.data[:, :g, g:-g] = self.data[:, g : g + 1, g:-g]
        elif side == "east":
            self.data[:, -g:, g:-g] = self.data[:, -g - 1 : -g, g:-g]
        elif side == "south":
            self.data[:, g:-g, :g] = self.data[:, g:-g, g : g + 1]
        elif side == "north":
            self.data[:, g:-g, -g:] = self.data[:, g:-g, -g - 1 : -g]
        else:
            raise ValueError(f"unknown side {side!r}")

    def zero_side(self, side: str) -> None:
        """Zero this side's ghost zones (Dirichlet-0)."""
        g = self.nghost
        if side == "west":
            self.data[:, :g, :] = 0.0
        elif side == "east":
            self.data[:, -g:, :] = 0.0
        elif side == "south":
            self.data[:, :, :g] = 0.0
        elif side == "north":
            self.data[:, :, -g:] = 0.0
        else:
            raise ValueError(f"unknown side {side!r}")

    def copy(self) -> "Field":
        f = Field(self.nspec, self._shape, self.nghost)
        f.data[...] = self.data
        return f

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Field(nspec={self.nspec}, shape={self._shape}, nghost={self.nghost})"
