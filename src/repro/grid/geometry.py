"""Orthogonal coordinate systems.

V2D treats x1 and x2 as always-orthogonal directions and supports
several coordinate systems through geometry factors.  A finite-volume
discretization on an orthogonal grid needs, per zone, the cell volume
and the face areas transverse to each direction; the divergence of a
flux F is then::

    (div F)_ij = [ A1_{i+1/2} F1_{i+1/2} - A1_{i-1/2} F1_{i-1/2}
                 + A2_{j+1/2} F2_{j+1/2} - A2_{j-1/2} F2_{j-1/2} ] / V_ij

Each system maps (x1, x2) to physical coordinates:

* :class:`Cartesian`       -- x1 = x, x2 = y
* :class:`Cylindrical`     -- x1 = r (cylindrical radius), x2 = z
* :class:`SphericalPolar`  -- x1 = r (spherical radius), x2 = theta
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

Array = np.ndarray


class CoordinateSystem(ABC):
    """Geometry-factor provider for an orthogonal (x1, x2) grid.

    All methods take *face* coordinate arrays: ``x1f`` of length
    ``nx1 + 1`` and ``x2f`` of length ``nx2 + 1``, and return arrays
    broadcastable against ``(nx1, nx2)`` zone-centred fields.
    """

    name: str = "abstract"

    @abstractmethod
    def cell_volumes(self, x1f: Array, x2f: Array) -> Array:
        """``(nx1, nx2)`` zone volumes (per unit length/radian in the
        suppressed third dimension)."""

    @abstractmethod
    def face_areas_x1(self, x1f: Array, x2f: Array) -> Array:
        """``(nx1 + 1, nx2)`` areas of the faces normal to x1."""

    @abstractmethod
    def face_areas_x2(self, x1f: Array, x2f: Array) -> Array:
        """``(nx1, nx2 + 1)`` areas of the faces normal to x2."""

    def validate(self, x1f: Array, x2f: Array) -> None:
        """Reject non-monotonic or out-of-domain face coordinates."""
        if np.any(np.diff(x1f) <= 0) or np.any(np.diff(x2f) <= 0):
            raise ValueError("face coordinates must be strictly increasing")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Cartesian(CoordinateSystem):
    """Planar (x, y) geometry; all factors are products of widths."""

    name = "cartesian"

    def cell_volumes(self, x1f: Array, x2f: Array) -> Array:
        d1 = np.diff(x1f)
        d2 = np.diff(x2f)
        return np.outer(d1, d2)

    def face_areas_x1(self, x1f: Array, x2f: Array) -> Array:
        d2 = np.diff(x2f)
        return np.broadcast_to(d2, (x1f.shape[0], d2.shape[0])).copy()

    def face_areas_x2(self, x1f: Array, x2f: Array) -> Array:
        d1 = np.diff(x1f)
        return np.broadcast_to(d1[:, None], (d1.shape[0], x2f.shape[0])).copy()


class Cylindrical(CoordinateSystem):
    """(r, z) geometry, axisymmetric; per radian of azimuth.

    Volumes are ``0.5 (r_{i+1}^2 - r_i^2) dz``; radial faces have area
    ``r dz``; axial faces ``0.5 (r_{i+1}^2 - r_i^2)``.
    """

    name = "cylindrical"

    def validate(self, x1f: Array, x2f: Array) -> None:
        super().validate(x1f, x2f)
        if x1f[0] < 0:
            raise ValueError("cylindrical radius faces must satisfy r >= 0")

    def cell_volumes(self, x1f: Array, x2f: Array) -> Array:
        r2 = 0.5 * np.diff(x1f**2)
        dz = np.diff(x2f)
        return np.outer(r2, dz)

    def face_areas_x1(self, x1f: Array, x2f: Array) -> Array:
        dz = np.diff(x2f)
        return np.outer(x1f, dz)

    def face_areas_x2(self, x1f: Array, x2f: Array) -> Array:
        r2 = 0.5 * np.diff(x1f**2)
        return np.broadcast_to(r2[:, None], (r2.shape[0], x2f.shape[0])).copy()


class SphericalPolar(CoordinateSystem):
    """(r, theta) geometry, axisymmetric; per radian of azimuth.

    Volumes are ``(1/3)(r_{i+1}^3 - r_i^3)(cos th_j - cos th_{j+1})``;
    radial faces ``r^2 (cos th_j - cos th_{j+1})``; polar faces
    ``0.5 (r_{i+1}^2 - r_i^2) sin th``.
    """

    name = "spherical"

    def validate(self, x1f: Array, x2f: Array) -> None:
        super().validate(x1f, x2f)
        if x1f[0] < 0:
            raise ValueError("spherical radius faces must satisfy r >= 0")
        if x2f[0] < 0 or x2f[-1] > np.pi + 1e-12:
            raise ValueError("polar angle faces must lie in [0, pi]")

    def cell_volumes(self, x1f: Array, x2f: Array) -> Array:
        r3 = np.diff(x1f**3) / 3.0
        dmu = -np.diff(np.cos(x2f))  # cos decreases with theta
        return np.outer(r3, dmu)

    def face_areas_x1(self, x1f: Array, x2f: Array) -> Array:
        dmu = -np.diff(np.cos(x2f))
        return np.outer(x1f**2, dmu)

    def face_areas_x2(self, x1f: Array, x2f: Array) -> Array:
        r2 = 0.5 * np.diff(x1f**2)
        return np.outer(r2, np.sin(x2f))


_SYSTEMS: dict[str, type[CoordinateSystem]] = {
    "cartesian": Cartesian,
    "cylindrical": Cylindrical,
    "spherical": SphericalPolar,
}


def get_coordinate_system(name: str | CoordinateSystem) -> CoordinateSystem:
    """Look up a coordinate system by name (or pass through an instance)."""
    if isinstance(name, CoordinateSystem):
        return name
    try:
        return _SYSTEMS[name]()
    except KeyError:
        raise KeyError(
            f"unknown coordinate system {name!r}; available: {sorted(_SYSTEMS)}"
        ) from None
