"""Structured-grid substrate.

V2D is "generically written to allow various coordinate systems", with
orthogonal x1 and x2 directions, and is domain decomposed with a
Cartesian 2-D spatial tile decomposition controlled by the runtime
parameters NPRX1 and NPRX2.  This package reproduces that machinery:

* :mod:`repro.grid.geometry` -- Cartesian / cylindrical / spherical
  orthogonal coordinate systems (face areas, cell volumes).
* :mod:`repro.grid.mesh` -- the 2-D zone-centred mesh.
* :mod:`repro.grid.field` -- ghost-padded multi-species fields.
* :mod:`repro.grid.decomposition` -- the NPRX1 x NPRX2 tiling.
"""

from repro.grid.decomposition import Tile, TileDecomposition
from repro.grid.field import Field
from repro.grid.geometry import (
    Cartesian,
    CoordinateSystem,
    Cylindrical,
    SphericalPolar,
    get_coordinate_system,
)
from repro.grid.mesh import Mesh2D

__all__ = [
    "Mesh2D",
    "Field",
    "Tile",
    "TileDecomposition",
    "CoordinateSystem",
    "Cartesian",
    "Cylindrical",
    "SphericalPolar",
    "get_coordinate_system",
]
