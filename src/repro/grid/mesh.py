"""The 2-D zone-centred mesh.

A :class:`Mesh2D` owns face coordinates in both directions, the derived
zone-centre coordinates and widths, and the geometry factors (volumes,
face areas) of its coordinate system.  Meshes can describe either the
*global* problem or a single decomposed tile of it: a tile mesh is
produced by :meth:`Mesh2D.subset` and remembers its offset in the
global zone index space.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.grid.geometry import CoordinateSystem, get_coordinate_system

Array = np.ndarray


@dataclass(frozen=True)
class Mesh2D:
    """Structured orthogonal 2-D mesh.

    Parameters
    ----------
    x1f, x2f:
        Strictly increasing face coordinates, lengths ``nx1 + 1`` and
        ``nx2 + 1``.
    coord:
        Coordinate system name or instance (default Cartesian).
    i1_offset, i2_offset:
        Index of this mesh's first zone within the global grid (both 0
        for a global mesh).
    """

    x1f: Array
    x2f: Array
    coord: CoordinateSystem
    i1_offset: int = 0
    i2_offset: int = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def uniform(
        nx1: int,
        nx2: int,
        extent1: tuple[float, float] = (0.0, 1.0),
        extent2: tuple[float, float] = (0.0, 1.0),
        coord: str | CoordinateSystem = "cartesian",
    ) -> "Mesh2D":
        """Uniformly spaced mesh with ``nx1 x nx2`` zones."""
        if nx1 < 1 or nx2 < 1:
            raise ValueError("mesh needs at least one zone per direction")
        if extent1[1] <= extent1[0] or extent2[1] <= extent2[0]:
            raise ValueError("extents must be increasing intervals")
        x1f = np.linspace(extent1[0], extent1[1], nx1 + 1)
        x2f = np.linspace(extent2[0], extent2[1], nx2 + 1)
        return Mesh2D(x1f=x1f, x2f=x2f, coord=get_coordinate_system(coord))

    @staticmethod
    def stretched(
        nx1: int,
        nx2: int,
        extent1: tuple[float, float] = (0.0, 1.0),
        extent2: tuple[float, float] = (0.0, 1.0),
        ratio1: float = 1.0,
        ratio2: float = 1.0,
        coord: str | CoordinateSystem = "cartesian",
    ) -> "Mesh2D":
        """Geometrically stretched mesh.

        ``ratio`` is the width ratio of the last zone to the first in
        that direction (1.0 = uniform); widths grow geometrically.
        Core-collapse grids use exactly this kind of stretching to
        resolve the core while reaching large radii.
        """
        if nx1 < 1 or nx2 < 1:
            raise ValueError("mesh needs at least one zone per direction")
        if ratio1 <= 0 or ratio2 <= 0:
            raise ValueError("stretch ratios must be positive")

        def faces(n: int, lo: float, hi: float, ratio: float) -> Array:
            if hi <= lo:
                raise ValueError("extents must be increasing intervals")
            if n == 1 or ratio == 1.0:
                return np.linspace(lo, hi, n + 1)
            q = ratio ** (1.0 / (n - 1))        # zone-to-zone growth factor
            widths = q ** np.arange(n)
            widths *= (hi - lo) / widths.sum()
            return lo + np.concatenate([[0.0], np.cumsum(widths)])

        return Mesh2D(
            x1f=faces(nx1, extent1[0], extent1[1], ratio1),
            x2f=faces(nx2, extent2[0], extent2[1], ratio2),
            coord=get_coordinate_system(coord),
        )

    def __post_init__(self) -> None:
        coord = get_coordinate_system(self.coord)
        object.__setattr__(self, "coord", coord)
        x1f = np.asarray(self.x1f, dtype=float)
        x2f = np.asarray(self.x2f, dtype=float)
        object.__setattr__(self, "x1f", x1f)
        object.__setattr__(self, "x2f", x2f)
        coord.validate(x1f, x2f)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def nx1(self) -> int:
        return self.x1f.shape[0] - 1

    @property
    def nx2(self) -> int:
        return self.x2f.shape[0] - 1

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nx1, self.nx2)

    @property
    def nzones(self) -> int:
        return self.nx1 * self.nx2

    @cached_property
    def x1c(self) -> Array:
        """Zone-centre coordinates along x1."""
        return 0.5 * (self.x1f[:-1] + self.x1f[1:])

    @cached_property
    def x2c(self) -> Array:
        return 0.5 * (self.x2f[:-1] + self.x2f[1:])

    @cached_property
    def dx1(self) -> Array:
        return np.diff(self.x1f)

    @cached_property
    def dx2(self) -> Array:
        return np.diff(self.x2f)

    # ------------------------------------------------------------------
    # Geometry factors
    # ------------------------------------------------------------------
    @cached_property
    def volumes(self) -> Array:
        """``(nx1, nx2)`` zone volumes."""
        return self.coord.cell_volumes(self.x1f, self.x2f)

    @cached_property
    def areas_x1(self) -> Array:
        """``(nx1 + 1, nx2)`` x1-face areas."""
        return self.coord.face_areas_x1(self.x1f, self.x2f)

    @cached_property
    def areas_x2(self) -> Array:
        """``(nx1, nx2 + 1)`` x2-face areas."""
        return self.coord.face_areas_x2(self.x1f, self.x2f)

    def centers(self) -> tuple[Array, Array]:
        """Meshgrid of zone-centre coordinates, each ``(nx1, nx2)``."""
        return np.meshgrid(self.x1c, self.x2c, indexing="ij")

    # ------------------------------------------------------------------
    # Decomposition support
    # ------------------------------------------------------------------
    def subset(self, i1: slice, i2: slice) -> "Mesh2D":
        """Tile mesh covering the zone ranges ``i1`` x ``i2``.

        Slices must have unit step and lie inside the mesh.
        """
        s1 = range(*i1.indices(self.nx1))
        s2 = range(*i2.indices(self.nx2))
        if s1.step != 1 or s2.step != 1 or len(s1) == 0 or len(s2) == 0:
            raise ValueError("subset slices must be non-empty with unit step")
        return Mesh2D(
            x1f=self.x1f[s1.start : s1.stop + 1],
            x2f=self.x2f[s2.start : s2.stop + 1],
            coord=self.coord,
            i1_offset=self.i1_offset + s1.start,
            i2_offset=self.i2_offset + s2.start,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Mesh2D({self.nx1}x{self.nx2} {self.coord.name}, "
            f"x1=[{self.x1f[0]:g},{self.x1f[-1]:g}], "
            f"x2=[{self.x2f[0]:g},{self.x2f[-1]:g}], "
            f"offset=({self.i1_offset},{self.i2_offset}))"
        )
