"""Cartesian 2-D process topology.

Binds a :class:`~repro.parallel.comm.Communicator` to the
NPRX1 x NPRX2 tile arrangement of
:class:`~repro.grid.decomposition.TileDecomposition`: each rank learns
its tile coordinates, its four face neighbours, and its tile of the
global grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.grid.decomposition import Tile, TileDecomposition
from repro.parallel.comm import Communicator


@dataclass
class CartComm:
    """A communicator with NPRX1 x NPRX2 Cartesian structure.

    Parameters
    ----------
    comm:
        Underlying communicator; its size must equal
        ``decomp.nranks``.
    decomp:
        The global tile decomposition.
    """

    comm: Communicator
    decomp: TileDecomposition

    def __post_init__(self) -> None:
        if self.comm.size != self.decomp.nranks:
            raise ValueError(
                f"communicator size {self.comm.size} != "
                f"decomposition ranks {self.decomp.nranks}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, comm: Communicator, nx1: int, nx2: int, nprx1: int, nprx2: int
    ) -> "CartComm":
        """Build the topology for an ``nx1 x nx2`` grid on this communicator."""
        return cls(comm, TileDecomposition(nx1=nx1, nx2=nx2, nprx1=nprx1, nprx2=nprx2))

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def dims(self) -> tuple[int, int]:
        return (self.decomp.nprx1, self.decomp.nprx2)

    @cached_property
    def coords(self) -> tuple[int, int]:
        """This rank's tile coordinates ``(p1, p2)``."""
        return self.decomp.coords_of(self.rank)

    @cached_property
    def tile(self) -> Tile:
        """This rank's rectangle of the global zone index space."""
        return self.decomp.tile(self.rank)

    @cached_property
    def neighbors(self) -> dict[str, int | None]:
        """Face-neighbour ranks (``None`` on the physical boundary)."""
        return self.decomp.neighbors(self.rank)

    def wrap_neighbor(self, side: str) -> int:
        """Periodic wrap partner across ``side`` (coords modulo dims).

        Equals an existing face neighbour in the interior, and wraps
        around the torus on the physical boundary -- including back to
        this very rank when the axis has a single tile.
        """
        p1, p2 = self.coords
        n1, n2 = self.dims
        if side == "west":
            p1 = (p1 - 1) % n1
        elif side == "east":
            p1 = (p1 + 1) % n1
        elif side == "south":
            p2 = (p2 - 1) % n2
        elif side == "north":
            p2 = (p2 + 1) % n2
        else:
            raise ValueError(f"unknown side {side!r}")
        return self.decomp.rank_of(p1, p2)

    def shift(self, direction: int, disp: int) -> tuple[int | None, int | None]:
        """MPI_Cart_shift: ``(source, dest)`` ranks for a displacement.

        ``direction`` 0 is x1, 1 is x2.
        """
        if direction not in (0, 1):
            raise ValueError("direction must be 0 (x1) or 1 (x2)")
        d = (disp, 0) if direction == 0 else (0, disp)
        dest = self.decomp.neighbor(self.rank, *d)
        src = self.decomp.neighbor(self.rank, -d[0], -d[1])
        return src, dest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CartComm(rank={self.rank}, dims={self.dims}, coords={self.coords})"
