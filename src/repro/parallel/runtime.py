"""SPMD launcher: the ``mpiexec -n`` stand-in.

:func:`run_spmd` builds a :class:`~repro.parallel.world.World`, starts
one thread per rank running the user's function with that rank's
communicator, joins them, and returns the per-rank results in rank
order.  If any rank raises, the world is aborted (waking all blocked
peers) and the first failure is re-raised in the caller, wrapped in
:class:`WorldAborted` with the failing rank attached.

Threads, not processes: NumPy releases the GIL for large array
operations so vector-backend ranks do overlap, but the point of this
substrate is *semantic* fidelity (message patterns, reduction counts,
bit-reproducible decomposed results), not distributed-memory speedup;
the performance model supplies timing.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.monitor.counters import Counters
from repro.parallel.comm import Communicator
from repro.parallel.world import World, WorldAbortedError


class WorldAborted(RuntimeError):
    """A rank failed; carries the originating rank and exception."""

    def __init__(self, rank: int, cause: BaseException) -> None:
        super().__init__(f"rank {rank} failed: {cause!r}")
        self.rank = rank
        self.cause = cause


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = 60.0,
    counters: list[Counters] | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; gather returns.

    Parameters
    ----------
    size:
        Number of ranks (threads).
    fn:
        The per-rank program; receives its :class:`Communicator` first.
    timeout:
        Deadlock watchdog for blocking operations, in seconds.
    counters:
        Optional list of ``size`` :class:`Counters` to attach to the
        rank communicators (for traffic accounting across the run).

    Returns
    -------
    list
        ``fn``'s return value per rank, in rank order.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    if counters is not None and len(counters) != size:
        raise ValueError("need exactly one Counters per rank")

    world = World(size, timeout=timeout)

    # Fast path: a serial "job" runs inline, keeping single-rank runs
    # easy to debug and profile.
    if size == 1:
        comm = Communicator(world, 0, counters=counters[0] if counters else None)
        try:
            return [fn(comm, *args, **kwargs)]
        except WorldAbortedError as exc:  # pragma: no cover - defensive
            raise WorldAborted(0, exc) from exc

    results: list[Any] = [None] * size
    failures: list[tuple[int, BaseException]] = []
    failure_lock = threading.Lock()

    def body(rank: int) -> None:
        comm = Communicator(world, rank, counters=counters[rank] if counters else None)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must propagate anything
            with failure_lock:
                failures.append((rank, exc))
            world.abort()

    threads = [
        threading.Thread(target=body, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        failures.sort(key=lambda f: f[0])
        rank, cause = failures[0]
        # Suppress secondary WorldAbortedError noise from other ranks.
        primary = next(
            ((r, c) for r, c in failures if not isinstance(c, WorldAbortedError)),
            (rank, cause),
        )
        raise WorldAborted(primary[0], primary[1]) from primary[1]
    return results
