"""SPMD launcher: the ``mpiexec -n`` stand-in.

:func:`run_spmd` resolves a comm transport from
:mod:`repro.parallel.links` and hands it the job: one rank program per
rank, each receiving its :class:`~repro.parallel.comm.Communicator`,
results returned in rank order.  If any rank raises, the world is
aborted (waking all blocked peers) and the originating failure is
re-raised in the caller as :class:`WorldAbortedError` with the failing
rank and cause attached.

Two transports ship:

* ``"threads"`` (default) -- ranks are threads of this process over
  the in-memory :class:`~repro.parallel.world.World` fabric.  Exact
  seed behaviour: semantically faithful, GIL-serialized.
* ``"mp"`` -- ranks are forked processes over shared-memory rings
  (:mod:`repro.parallel.links.mp`), using the machine's physical
  cores; measured scaling becomes meaningful.

``WorldAborted`` remains as a back-compat alias for
:class:`~repro.parallel.world.WorldAbortedError`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.monitor.counters import Counters
from repro.parallel.links import Transport, get_transport
from repro.parallel.world import WorldAbortedError

#: Back-compat alias: the historical launcher-side abort error is now
#: the substrate-wide :class:`WorldAbortedError`.
WorldAborted = WorldAbortedError


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = 60.0,
    counters: list[Counters] | None = None,
    transport: str | Transport | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; gather returns.

    Parameters
    ----------
    size:
        Number of ranks.
    fn:
        The per-rank program; receives its :class:`Communicator` first.
    timeout:
        Deadlock watchdog for blocking operations, in seconds.
    counters:
        Optional list of ``size`` :class:`Counters` to attach to the
        rank communicators (for traffic accounting across the run).
    transport:
        Transport name (``"threads"``/``"mp"``), a
        :class:`~repro.parallel.links.base.Transport` instance, or
        ``None`` to use ``REPRO_TRANSPORT`` / the threaded default.

    Returns
    -------
    list
        ``fn``'s return value per rank, in rank order.
    """
    if not isinstance(transport, Transport):
        transport = get_transport(transport)
    return transport.run(
        size, fn, args, kwargs, timeout=timeout, counters=counters
    )
