"""The threaded message fabric behind every :class:`Communicator`.

A :class:`World` owns, per rank, a mailbox of pending messages keyed by
``(source, tag)``, a condition variable to block receivers, and a
reusable sense-reversing barrier.  Message payloads that are NumPy
arrays are copied on send so that sender-side mutation after a send
cannot corrupt the receiver -- the same value semantics a real MPI
transfer provides.

If any rank thread dies with an exception the world is *aborted*: all
blocked receivers wake and raise :class:`WorldAbortedError`, mirroring
how an MPI job is torn down when one rank aborts.

:class:`World` is the reference implementation of the *fabric protocol*
consumed by :class:`~repro.parallel.comm.Communicator`:

* ``size`` / ``timeout`` / ``aborted`` attributes,
* ``deliver(source, dest, tag, payload)`` -- buffered, value-copying,
* ``collect(dest, source, tag)`` -- blocking matched receive,
* ``probe(dest, source, tag)`` / ``pending_messages(dest)``,
* ``barrier_impl.wait(timeout)`` and ``abort()``.

The multiprocessing transport
(:mod:`repro.parallel.links.mp`) provides the same protocol over
shared-memory rings, so one :class:`Communicator` implementation rides
both.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np


class WorldAbortedError(RuntimeError):
    """The single typed abort error of the SPMD substrate.

    Raised in two situations, distinguished by the attached context:

    * in surviving ranks, when another rank aborted the job (``rank``
      and ``cause`` are ``None`` -- the survivor only knows the world
      died under it);
    * in the :func:`~repro.parallel.runtime.run_spmd` caller, wrapping
      the *originating* failure with ``rank`` (the first failing rank)
      and ``cause`` (the exception it raised) attached.

    ``repro.parallel.runtime.WorldAborted`` is a back-compat alias for
    this class.
    """

    def __init__(
        self,
        message: str | None = None,
        *,
        rank: int | None = None,
        cause: BaseException | None = None,
    ) -> None:
        if message is None:
            message = (
                f"rank {rank} failed: {cause!r}"
                if rank is not None or cause is not None
                else "world aborted"
            )
        super().__init__(message)
        self.rank = rank
        self.cause = cause


@dataclass
class Message:
    source: int
    tag: int
    payload: Any


def _copy_payload(obj: Any) -> Any:
    """Value-copy array payloads; pass small immutables through."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (list, tuple)):
        return type(obj)(_copy_payload(v) for v in obj)
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return obj


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a payload (for traffic accounting)."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(v) for v in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(v) for v in obj.values())
    if isinstance(obj, (int, float, complex, bool)):
        return 8
    if isinstance(obj, (str, bytes)):
        return len(obj)
    return 64  # generic pickled-object estimate


class _Barrier:
    """Sense-reversing reusable barrier that aborts cleanly."""

    def __init__(self, parties: int) -> None:
        self._parties = parties
        self._count = 0
        self._sense = False
        self._cond = threading.Condition()
        self._aborted = False

    def wait(self, timeout: float | None) -> None:
        with self._cond:
            if self._aborted:
                raise WorldAbortedError("world aborted during barrier")
            local_sense = not self._sense
            self._count += 1
            if self._count == self._parties:
                self._count = 0
                self._sense = local_sense
                self._cond.notify_all()
                return
            deadline_ok = self._cond.wait_for(
                lambda: self._sense == local_sense or self._aborted, timeout=timeout
            )
            if self._aborted:
                raise WorldAbortedError("world aborted during barrier")
            if not deadline_ok:
                raise TimeoutError("barrier timed out (likely deadlock)")

    def abort(self) -> None:
        with self._cond:
            self._aborted = True
            self._cond.notify_all()


@dataclass
class _Mailbox:
    lock: threading.Lock = field(default_factory=threading.Lock)
    cond: threading.Condition = field(init=False)
    queues: dict[tuple[int, int], deque] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.cond = threading.Condition(self.lock)


class World:
    """Fabric connecting ``size`` ranks in one process.

    Parameters
    ----------
    size:
        Number of ranks.
    timeout:
        Seconds a blocking receive or barrier waits before declaring a
        deadlock.  ``None`` disables the watchdog (not recommended in
        tests).
    """

    def __init__(self, size: int, timeout: float | None = 60.0) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.timeout = timeout
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier_impl = _Barrier(size)
        self._aborted = False
        self._abort_lock = threading.Lock()
        # Monotonic heartbeat instants, stamped on every fabric touch a
        # rank makes (send/receive).  A zero entry means the rank never
        # reached the fabric.  One float store per message -- cheap
        # enough to run unconditionally; only the *reporting* is gated
        # on telemetry.
        self._heartbeats = [0.0] * size

    # ------------------------------------------------------------------
    def heartbeat(self, rank: int) -> None:
        """Stamp ``rank``'s liveness instant (monotonic seconds)."""
        self._heartbeats[rank] = time.monotonic()

    def heartbeat_ages(self) -> dict[int, float]:
        """``{rank: seconds since last fabric activity}`` (stamped only)."""
        now = time.monotonic()
        return {
            r: now - t for r, t in enumerate(self._heartbeats) if t > 0.0
        }

    # ------------------------------------------------------------------
    @property
    def aborted(self) -> bool:
        return self._aborted

    def abort(self) -> None:
        """Tear the world down: wake every blocked rank with an error."""
        with self._abort_lock:
            if self._aborted:
                return
            self._aborted = True
        self.barrier_impl.abort()
        for box in self._mailboxes:
            with box.cond:
                box.cond.notify_all()

    # ------------------------------------------------------------------
    def deliver(self, source: int, dest: int, tag: int, payload: Any) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        if self._aborted:
            raise WorldAbortedError("world aborted")
        self.heartbeat(source)
        box = self._mailboxes[dest]
        msg = Message(source=source, tag=tag, payload=_copy_payload(payload))
        with box.cond:
            box.queues.setdefault((source, tag), deque()).append(msg)
            box.cond.notify_all()

    def collect(self, dest: int, source: int, tag: int) -> Any:
        """Blocking matched receive (FIFO per ``(source, tag)`` channel)."""
        self.heartbeat(dest)
        box = self._mailboxes[dest]
        key = (source, tag)
        with box.cond:
            ok = box.cond.wait_for(
                lambda: self._aborted or bool(box.queues.get(key)),
                timeout=self.timeout,
            )
            if self._aborted:
                raise WorldAbortedError("world aborted")
            if not ok:
                raise TimeoutError(
                    f"rank {dest} timed out receiving (source={source}, tag={tag})"
                )
            return box.queues[key].popleft().payload

    def probe(self, dest: int, source: int, tag: int) -> bool:
        """Non-blocking: is a matching message waiting?"""
        box = self._mailboxes[dest]
        with box.cond:
            return bool(box.queues.get((source, tag)))

    def pending_messages(self, dest: int) -> int:
        """Total undelivered messages in ``dest``'s mailbox (test hook)."""
        box = self._mailboxes[dest]
        with box.cond:
            return sum(len(q) for q in box.queues.values())
