"""Message-passing substrate (the MPI stand-in) with pluggable transports.

V2D employs MPI for domain-decomposed parallelism; Table I varies the
process count and topology.  Real MPI is not available here, so this
package provides an SPMD model with the same semantics, carried by a
pluggable *comm transport* (:mod:`repro.parallel.links`):

* :mod:`repro.parallel.world` -- the in-memory mailbox fabric and the
  fabric protocol both transports implement.
* :mod:`repro.parallel.comm` -- :class:`Communicator` with MPI-shaped
  point-to-point (``send/recv/isend/irecv``) and collective
  (``barrier/bcast/reduce/allreduce/allreduce_batch/gather/allgather/
  scatter``) operations, plus message/byte accounting for the
  performance model.
* :mod:`repro.parallel.links` -- the transports: ``"threads"`` (ranks
  as threads of one process; the default, semantically exact but
  GIL-serialized) and ``"mp"`` (ranks as forked processes over
  shared-memory ring buffers, using the machine's physical cores).
* :mod:`repro.parallel.cart` -- Cartesian 2-D process topology
  (the NPRX1 x NPRX2 arrangement).
* :mod:`repro.parallel.halo` -- ghost-zone exchange for decomposed
  fields (Dirichlet-0, reflecting, outflow and periodic boundaries).
* :mod:`repro.parallel.runtime` -- :func:`run_spmd`, which launches one
  rank per thread or process the way ``mpiexec -n`` launches ranks.

Semantics reproduced faithfully on every transport: deterministic
rank-ordered reductions (bit-reproducible sums), value isolation
(messages deep-copy array payloads), blocking/non-blocking completion,
deadlock detection by timeout, and abort propagation
(:class:`WorldAbortedError`).  The threaded transport does not
reproduce distributed-memory timing -- the performance model in
:mod:`repro.perfmodel` supplies communication costs -- while the mp
transport makes measured scaling an honest axis next to the model.
"""

from repro.parallel.cart import CartComm
from repro.parallel.comm import Communicator, ReduceOp, Request
from repro.parallel.halo import BoundaryCondition, HaloExchanger, PendingExchange
from repro.parallel.links import (
    Transport,
    TransportUnavailableError,
    available_transports,
    get_transport,
)
from repro.parallel.runtime import WorldAborted, run_spmd
from repro.parallel.world import World, WorldAbortedError

__all__ = [
    "World",
    "Communicator",
    "Request",
    "ReduceOp",
    "CartComm",
    "HaloExchanger",
    "PendingExchange",
    "BoundaryCondition",
    "Transport",
    "TransportUnavailableError",
    "available_transports",
    "get_transport",
    "run_spmd",
    "WorldAborted",
    "WorldAbortedError",
]
