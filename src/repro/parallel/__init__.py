"""In-process message-passing substrate (the MPI stand-in).

V2D employs MPI for domain-decomposed parallelism; Table I varies the
process count and topology.  Real MPI is not available here, so this
package provides an SPMD model with the same semantics on threads of
one process:

* :mod:`repro.parallel.world` -- the shared mailbox fabric.
* :mod:`repro.parallel.comm` -- :class:`Communicator` with MPI-shaped
  point-to-point (``send/recv/isend/irecv``) and collective
  (``barrier/bcast/reduce/allreduce/gather/allgather/scatter``)
  operations, plus message/byte accounting for the performance model.
* :mod:`repro.parallel.cart` -- Cartesian 2-D process topology
  (the NPRX1 x NPRX2 arrangement).
* :mod:`repro.parallel.halo` -- ghost-zone exchange for decomposed
  fields.
* :mod:`repro.parallel.runtime` -- :func:`run_spmd`, which launches one
  thread per rank the way ``mpiexec -n`` launches processes.

Semantics reproduced faithfully: deterministic rank-ordered reductions
(bit-reproducible sums), value isolation (messages deep-copy array
payloads), blocking/non-blocking completion, and deadlock detection by
timeout.  What is *not* reproduced is distributed-memory timing; the
performance model in :mod:`repro.perfmodel` supplies communication
costs instead.
"""

from repro.parallel.cart import CartComm
from repro.parallel.comm import Communicator, ReduceOp, Request
from repro.parallel.halo import BoundaryCondition, HaloExchanger, PendingExchange
from repro.parallel.runtime import WorldAborted, run_spmd
from repro.parallel.world import World

__all__ = [
    "World",
    "Communicator",
    "Request",
    "ReduceOp",
    "CartComm",
    "HaloExchanger",
    "PendingExchange",
    "BoundaryCondition",
    "run_spmd",
    "WorldAborted",
]
