"""MPI-shaped communicator.

The API mirrors the subset of MPI that V2D uses: point-to-point sends
and receives (blocking and non-blocking), barriers, broadcasts,
reductions (including all-reduce -- the operation whose global count
the restructured BiCGSTAB minimizes), gathers and scatters.

Determinism: reductions are evaluated in rank order at a root and then
broadcast, so a sum over ranks is bit-reproducible run to run and
independent of thread scheduling -- the property V2D relies on when it
compares decomposed runs against serial ones.

Accounting: every send increments PAPI-style message/byte counters, and
every reduction increments a reduction counter; the performance model
and the Sec. II-E breakdown benches consume these.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Any, Callable, Sequence

import numpy as np

from repro.monitor.counters import Counters
from repro.parallel.world import World, payload_nbytes

#: Internal tag base for collective traffic, far above user tags.
_COLL_TAG = 1 << 24


class ReduceOp(Enum):
    """Reduction operators (the subset V2D's solver needs)."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"
    PROD = "prod"

    def combine(self, a: Any, b: Any) -> Any:
        if self is ReduceOp.SUM:
            return a + b
        if self is ReduceOp.PROD:
            return a * b
        if self is ReduceOp.MIN:
            return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)
        return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


class Request:
    """Handle for a non-blocking operation."""

    def __init__(self, complete: Callable[[float | None], Any], poll: Callable[[], bool]) -> None:
        self._complete = complete
        self._poll = poll
        self._done = False
        self._value: Any = None

    def test(self) -> bool:
        """Non-blocking completion check."""
        if self._done:
            return True
        if self._poll():
            self._value = self._complete(None)
            self._done = True
        return self._done

    def wait(self) -> Any:
        """Block until complete; returns the received payload (or None)."""
        if not self._done:
            self._value = self._complete(None)
            self._done = True
        return self._value


class Communicator:
    """One rank's endpoint into a :class:`~repro.parallel.world.World`."""

    def __init__(self, world: World, rank: int, counters: Counters | None = None) -> None:
        if not 0 <= rank < world.size:
            raise ValueError(f"rank {rank} out of range for world of {world.size}")
        self.world = world
        self.rank = rank
        self.counters = counters if counters is not None else Counters()

    @property
    def size(self) -> int:
        return self.world.size

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Buffered blocking send (completes locally, like MPI_Bsend)."""
        self.counters.add_message(payload_nbytes(payload))
        self.world.deliver(self.rank, dest, tag, payload)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking matched receive."""
        return self.world.collect(self.rank, source, tag)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; our sends buffer, so it is complete at once."""
        self.send(payload, dest, tag)
        return Request(complete=lambda _t: None, poll=lambda: True)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; completion via ``test()``/``wait()``."""
        return Request(
            complete=lambda _t: self.recv(source, tag),
            poll=lambda: self.world.probe(self.rank, source, tag),
        )

    def sendrecv(
        self, payload: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = 0
    ) -> Any:
        """Combined send+receive (deadlock-free with buffered sends)."""
        self.send(payload, dest, sendtag)
        return self.recv(source, recvtag)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        self.world.barrier_impl.wait(self.world.timeout)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast ``payload`` from ``root``; all ranks return it."""
        tag = _COLL_TAG + 1
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(payload, r, tag)
            return payload
        return self.recv(root, tag)

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank to ``root`` (rank order); None elsewhere."""
        tag = _COLL_TAG + 2
        if self.rank == root:
            out = []
            for r in range(self.size):
                out.append(payload if r == root else self.recv(r, tag))
            return out
        self.send(payload, root, tag)
        return None

    def allgather(self, payload: Any) -> list[Any]:
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, payloads: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one element per rank from ``root``."""
        tag = _COLL_TAG + 3
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("root must pass exactly one payload per rank")
            for r in range(self.size):
                if r != root:
                    self.send(payloads[r], r, tag)
            return payloads[root]
        return self.recv(root, tag)

    def reduce(self, payload: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0) -> Any:
        """Rank-ordered (deterministic) reduction to ``root``."""
        tag = _COLL_TAG + 4
        self.counters.reductions += 1
        if self.rank == root:
            parts: list[Any] = [None] * self.size
            parts[root] = payload
            for r in range(self.size):
                if r != root:
                    parts[r] = self.recv(r, tag)
            acc = parts[0]
            for p in parts[1:]:
                acc = op.combine(acc, p)
            return acc
        self.send(payload, root, tag)
        return None

    def allreduce(self, payload: Any, op: ReduceOp = ReduceOp.SUM) -> Any:
        """Reduction whose result every rank receives.

        This is the operation the paper's restructured BiCGSTAB gangs:
        each call costs a global synchronization, so fewer, wider
        all-reduces beat many narrow ones.
        """
        result = self.reduce(payload, op=op, root=0)
        return self.bcast(result, root=0)

    def allreduce_batch(
        self, payloads: Sequence[Any], ops: Sequence[ReduceOp] | None = None
    ) -> list[Any]:
        """Several logical all-reduces carried by one reduction round.

        Each payload may use a different operator (``ops`` defaults to
        SUM for all).  The batch costs a single global synchronization
        -- and is counted as one reduction -- whereas issuing the calls
        separately would cost ``len(payloads)``.  Combination is
        rank-ordered at the root, so results are deterministic and
        match the individual :meth:`allreduce` calls exactly.
        """
        payloads = list(payloads)
        if ops is None:
            ops = [ReduceOp.SUM] * len(payloads)
        elif len(ops) != len(payloads):
            raise ValueError("ops must pair up with payloads")
        tag = _COLL_TAG + 5
        self.counters.reductions += 1
        if self.size == 1:
            return payloads
        if self.rank == 0:
            parts: list[list[Any]] = [payloads] + [
                self.recv(r, tag) for r in range(1, self.size)
            ]
            accs = list(parts[0])
            for part in parts[1:]:
                for k, op in enumerate(ops):
                    accs[k] = op.combine(accs[k], part[k])
            return self.bcast(accs, root=0)
        self.send(payloads, 0, tag)
        return self.bcast(None, root=0)

    # ------------------------------------------------------------------
    def split_counters(self) -> Counters:
        """Detach and return accumulated counters, resetting the live set."""
        snap = Counters()
        snap.merge(self.counters)
        self.counters.reset()
        return snap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Communicator(rank={self.rank}, size={self.size})"


def serial_communicator(counters: Counters | None = None) -> Communicator:
    """A size-1 communicator for single-rank (serial) execution."""
    return Communicator(World(1), 0, counters=counters)


_threading = threading  # re-exported for tests that monkeypatch scheduling
