"""Multiprocessing SPMD transport: one OS process per rank.

This is the transport that lets NPRX1 x NPRX2 topologies use the
machine's physical cores: ranks are forked processes, so pure-Python
(scalar-backend) work runs concurrently instead of serializing on the
GIL, and measured Table-I scaling becomes an honest axis next to the
perfmodel's predicted curves.

Mechanics
---------

* **fork start method** (Linux): rank programs need no pickling --
  children inherit the closure, module state, shared-memory segments
  and the tracer epoch directly.  CLOCK_MONOTONIC is system-wide on
  Linux, so per-process span streams still merge on one timeline.
* **shared-memory rings**: every ordered rank pair gets one
  :class:`~repro.parallel.links.shmem.ShmRing`; messages are pickled
  ``(tag, payload)`` frames.  Per-channel FIFO is structural (one ring,
  one writer).  Self-sends bypass the ring -- a rank blocking on its
  own full ring could never drain it.
* **results over pipes**: each child sends ``(status, value,
  counters-snapshot, metrics-export)`` once; the parent copies the
  counters snapshot back into the caller's :class:`Counters` and folds
  the metrics export into the process-wide
  :class:`~repro.monitor.trace.MetricsRegistry` (children
  snapshot-and-reset the inherited registry right after the fork, so
  what they ship home is their own delta).
* **abort**: a shared flag every wait loop polls.  A failing rank sets
  it, peers wake with
  :class:`~repro.parallel.world.WorldAbortedError`, the parent
  re-raises the originating failure.  Children that die *silently*
  (segfault, ``os._exit``) are caught by sentinel watch and reported
  as :class:`RemoteRankError`.
* **heartbeats**: a shared float64 slot per rank, stamped by the
  fabric's progress engine on every drain/deliver.  With telemetry
  armed the parent polls the slots, publishes
  ``repro.rank.<r>.heartbeat_age_seconds`` gauges, and dumps a
  flight-recorder manifest when a rank goes stale; failing children
  dump their own flight rings into a bundle directory reserved before
  the fork.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.monitor import flight, telemetry
from repro.monitor.counters import Counters
from repro.monitor.log import bind_context, get_logger
from repro.monitor.telemetry import publish_heartbeats
from repro.monitor.trace import get_metrics
from repro.parallel.comm import Communicator
from repro.parallel.links.base import (
    Transport,
    TransportUnavailableError,
    validate_launch,
)
from repro.parallel.links.shmem import ShmBarrier, SharedArray, ShmRing, _wait
from repro.parallel.links.threaded import select_primary_failure
from repro.parallel.world import World, WorldAbortedError, _copy_payload

#: Per-pair ring capacity; frames larger than this are chunked.
DEFAULT_RING_BYTES = 1 << 18

#: Grace period for surviving ranks to notice an abort and report in.
_ABORT_GRACE_S = 30.0

#: Parent poll period for the heartbeat watchdog (telemetry-armed only).
_WATCHDOG_POLL_S = 1.0

_LOG = get_logger("parallel.mp")


class RemoteRankError(RuntimeError):
    """A child rank failed in a way that could not cross the pipe.

    Carries the remote representation (repr + traceback text) when the
    original exception -- or the rank's result -- was unpicklable, or
    when the child died without reporting (killed, segfaulted).
    """


def _pickles(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


class MPFabric:
    """The fabric protocol over shared-memory rings.

    Implements the same duck-typed surface as
    :class:`~repro.parallel.world.World` (``deliver`` / ``collect`` /
    ``probe`` / ``pending_messages`` / ``barrier_impl`` / ``abort`` /
    ``aborted`` / ``size`` / ``timeout``), so
    :class:`~repro.parallel.comm.Communicator` -- and halo exchange,
    resilience wrappers and batched collectives above it -- run
    unchanged.

    Built in the launcher, inherited by forked children.  Each child
    calls :meth:`bind` with its rank; received frames land in a local
    pending map keyed ``(source, tag)``, exactly mirroring the threaded
    mailbox structure.
    """

    def __init__(
        self,
        size: int,
        timeout: float | None,
        ctx,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        self.size = size
        self.timeout = timeout
        self._abort_flag = SharedArray((1,), "uint64")
        # One monotonic instant per rank, stamped by the owning child's
        # progress engine; readable by the parent watchdog without any
        # extra IPC.  A zero slot means the rank never bound.
        self._heartbeats = SharedArray((size,), "float64")
        # Reserved (not yet created) flight-bundle directory, agreed on
        # before the fork so failing children and the parent manifest
        # land in the same incident directory.  ``None`` = disarmed.
        self.flight_bundle: Path | None = None
        self.barrier_impl = ShmBarrier(size, ctx, self._abort_flag)
        self._rings: dict[tuple[int, int], ShmRing] = {
            (src, dst): ShmRing(ring_bytes, ctx)
            for src in range(size)
            for dst in range(size)
            if src != dst
        }
        self._rank: int | None = None
        self._pending: dict[tuple[int, int], deque] = {}

    # -- lifecycle ------------------------------------------------------
    def bind(self, rank: int) -> None:
        """Adopt ``rank``'s endpoint (called once per child, post-fork)."""
        self._rank = rank
        self._pending = {}
        self.heartbeat(rank)

    def close(self) -> None:
        for ring in self._rings.values():
            ring.close()
        self.barrier_impl.close()
        self._abort_flag.close()
        self._heartbeats.close()

    def unlink(self) -> None:
        """Remove all backing segments (launcher-side, once)."""
        for ring in self._rings.values():
            ring.unlink()
        self.barrier_impl.unlink()
        self._abort_flag.unlink()
        self._heartbeats.unlink()

    # -- heartbeats -----------------------------------------------------
    def heartbeat(self, rank: int) -> None:
        """Stamp ``rank``'s shared liveness slot (monotonic seconds).

        CLOCK_MONOTONIC is system-wide on Linux, so parent-side age
        arithmetic against child-side stamps is meaningful.
        """
        self._heartbeats.array[rank] = time.monotonic()

    def heartbeat_ages(self) -> dict[int, float]:
        """``{rank: seconds since last fabric activity}`` (stamped only)."""
        now = time.monotonic()
        stamps = self._heartbeats.array
        return {
            r: float(now - stamps[r]) for r in range(self.size) if stamps[r] > 0.0
        }

    # -- abort ----------------------------------------------------------
    @property
    def aborted(self) -> bool:
        return bool(self._abort_flag.array[0])

    def abort(self) -> None:
        self._abort_flag.array[0] = 1

    # -- fabric protocol ------------------------------------------------
    def _deadline(self) -> float | None:
        return None if self.timeout is None else time.monotonic() + self.timeout

    def deliver(self, source: int, dest: int, tag: int, payload: Any) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        if self.aborted:
            raise WorldAbortedError("world aborted")
        self.heartbeat(source)
        if dest == source:
            # Self-sends bypass the ring: a rank blocked writing its own
            # full ring could never drain it.  Value-copy to keep the
            # transfer's isolation semantics.
            self._pending.setdefault((source, tag), deque()).append(
                _copy_payload(payload)
            )
            return
        frame = pickle.dumps((tag, payload), protocol=pickle.HIGHEST_PROTOCOL)
        self._rings[(source, dest)].write(
            frame,
            self._deadline(),
            lambda: self.aborted,
            progress=lambda: self._drain(source),
        )

    def _drain(self, dest: int) -> None:
        """Move every complete inbound frame into the pending map."""
        self.heartbeat(dest)
        for src in range(self.size):
            if src == dest:
                continue
            ring = self._rings[(src, dest)]
            while True:
                frame = ring.try_read()
                if frame is None:
                    break
                tag, payload = pickle.loads(frame)
                self._pending.setdefault((src, tag), deque()).append(payload)

    def collect(self, dest: int, source: int, tag: int) -> Any:
        key = (source, tag)

        def ready() -> bool:
            if self._pending.get(key):
                return True
            self._drain(dest)
            return bool(self._pending.get(key))

        _wait(
            ready,
            self._deadline(),
            lambda: self.aborted,
            f"rank {dest} receive (source={source}, tag={tag})",
        )
        return self._pending[key].popleft()

    def probe(self, dest: int, source: int, tag: int) -> bool:
        self._drain(dest)
        return bool(self._pending.get((source, tag)))

    def pending_messages(self, dest: int) -> int:
        self._drain(dest)
        return sum(len(q) for q in self._pending.values())


def _child_entry(
    fabric: MPFabric,
    rank: int,
    fn: Callable[..., Any],
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
    counter: Counters | None,
    conn,
) -> None:
    """Per-rank process body: run ``fn``, report result + counters.

    The fork copied the parent's metrics registry wholesale; the
    ``export_and_reset`` right after binding discards that inherited
    baseline, so the export shipped home on the result pipe is this
    rank's own delta and the parent can merge it without double
    counting.
    """
    fabric.bind(rank)
    get_metrics().export_and_reset()
    comm = Communicator(fabric, rank, counters=counter)
    status, value = "ok", None
    try:
        with bind_context(rank=rank):
            value = fn(comm, *args, **kwargs)
        if not _pickles(value):
            # A result that cannot cross the pipe is a rank failure,
            # not a silently-substituted success.
            status = "err"
            value = RemoteRankError(
                f"rank {rank} returned an unpicklable result: {value!r}"
            )
            fabric.abort()
    except BaseException as exc:  # noqa: BLE001 - must propagate anything
        fabric.abort()
        status = "err"
        value = exc
        flight.record(rank, "error", type(exc).__name__, message=str(exc))
        if telemetry.enabled() and fabric.flight_bundle is not None:
            try:
                fabric.flight_bundle.mkdir(parents=True, exist_ok=True)
                flight.dump_rank(fabric.flight_bundle, rank)
            except OSError:  # pragma: no cover - post-mortem best effort
                pass
        if not _pickles(exc):
            value = RemoteRankError(
                f"rank {rank} failed (unpicklable exception):\n"
                + "".join(traceback.format_exception(exc))
            )
    try:
        conn.send(
            (status, value, comm.counters.snapshot(), get_metrics().export())
        )
    finally:
        conn.close()


class MPTransport(Transport):
    """Fork one process per rank over an :class:`MPFabric`."""

    name = "mp"

    def __init__(self, ring_bytes: int = DEFAULT_RING_BYTES) -> None:
        self._ring_bytes = ring_bytes

    def available(self) -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def run(
        self,
        size: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        timeout: float | None = 60.0,
        counters: Sequence[Counters] | None = None,
    ) -> list[Any]:
        validate_launch(size, counters)
        kwargs = kwargs or {}
        if not self.available():  # pragma: no cover - Linux containers fork
            raise TransportUnavailableError(
                "mp transport needs the fork start method"
            )

        # Serial jobs run inline (same fast path as the threaded
        # transport): no processes, nothing to gain from them.
        if size == 1:
            comm = Communicator(
                World(1, timeout=timeout),
                0,
                counters=counters[0] if counters else None,
            )
            return [fn(comm, *args, **kwargs)]

        ctx = multiprocessing.get_context("fork")
        fabric = MPFabric(size, timeout, ctx, ring_bytes=self._ring_bytes)
        try:
            return self._launch(ctx, fabric, size, fn, args, kwargs, counters)
        finally:
            fabric.close()
            fabric.unlink()

    # ------------------------------------------------------------------
    def _launch(
        self,
        ctx,
        fabric: MPFabric,
        size: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        counters: Sequence[Counters] | None,
    ) -> list[Any]:
        telemetry_on = telemetry.enabled()
        if telemetry_on:
            # Reserve (but do not create) the incident directory now so
            # forked children inherit the agreed location.
            fabric.flight_bundle = flight.bundle_path("abort")
        conns: list[Any] = []
        procs: list[Any] = []
        for r in range(size):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_child_entry,
                args=(
                    fabric,
                    r,
                    fn,
                    args,
                    kwargs,
                    counters[r] if counters else None,
                    child_conn,
                ),
                name=f"spmd-mp-rank-{r}",
                daemon=True,
            )
            conns.append(parent_conn)
            procs.append(proc)
        for proc in procs:
            proc.start()

        results: list[Any] = [None] * size
        failures: list[tuple[int, BaseException]] = []
        snapshots: list[dict | None] = [None] * size
        metric_exports: list[dict | None] = [None] * size
        remaining = set(range(size))
        by_conn = {conns[r]: r for r in range(size)}
        by_sentinel = {procs[r].sentinel: r for r in range(size)}
        abort_deadline: float | None = None
        hb_timeout = fabric.timeout if fabric.timeout is not None else _ABORT_GRACE_S
        hb_dumped = False

        while remaining:
            waitable = [conns[r] for r in remaining] + [
                procs[r].sentinel for r in remaining
            ]
            grace = None
            if abort_deadline is not None:
                grace = max(0.0, abort_deadline - time.monotonic())
            elif telemetry_on:
                # Armed telemetry turns the indefinite wait into a poll
                # so the watchdog can publish heartbeat ages and catch
                # stale ranks; disarmed runs keep the original blocking
                # wait (zero behaviour change).
                grace = _WATCHDOG_POLL_S
            ready = mp_connection.wait(waitable, timeout=grace)
            if not ready:
                if abort_deadline is None:
                    # Watchdog tick: no abort in progress, just a poll
                    # timeout with telemetry armed.
                    ages = fabric.heartbeat_ages()
                    publish_heartbeats(get_metrics(), ages)
                    stale = [
                        r for r in sorted(remaining)
                        if ages.get(r, 0.0) > hb_timeout
                    ]
                    if stale and not hb_dumped:
                        hb_dumped = True
                        bundle = flight.dump_bundle(
                            "heartbeat-timeout",
                            failing_rank=stale[0],
                            cause=(
                                f"rank {stale[0]} heartbeat age "
                                f"{ages[stale[0]]:.1f}s > {hb_timeout:.1f}s"
                            ),
                            heartbeat_ages=ages,
                        )
                        _LOG.warning(
                            "rank %d heartbeat stale; flight bundle at %s",
                            stale[0], bundle,
                        )
                    continue
                # Abort grace expired: remaining ranks are wedged.
                for r in sorted(remaining):
                    procs[r].terminate()
                    failures.append(
                        (r, RemoteRankError(f"rank {r} hung after abort"))
                    )
                remaining.clear()
                break
            for handle in ready:
                r = by_conn.get(handle, by_sentinel.get(handle))
                if r not in remaining:
                    continue
                if handle is conns[r] or conns[r].poll():
                    try:
                        status, value, snap, mexport = conns[r].recv()
                    except EOFError:
                        status, value, snap, mexport = (
                            "err",
                            RemoteRankError(f"rank {r} closed without result"),
                            None,
                            None,
                        )
                elif procs[r].sentinel == handle:
                    status, value, snap, mexport = (
                        "err",
                        RemoteRankError(
                            f"rank {r} died without reporting "
                            f"(exitcode {procs[r].exitcode})"
                        ),
                        None,
                        None,
                    )
                else:  # pragma: no cover - unreachable
                    continue
                snapshots[r] = snap
                metric_exports[r] = mexport
                if status == "ok":
                    results[r] = value
                else:
                    failures.append((r, value))
                    fabric.abort()
                    if abort_deadline is None:
                        abort_deadline = time.monotonic() + (
                            fabric.timeout or _ABORT_GRACE_S
                        )
                remaining.discard(r)

        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in conns:
            conn.close()

        if counters is not None:
            for r, snap in enumerate(snapshots):
                if snap is not None:
                    counters[r].reset()
                    counters[r].merge_snapshot(snap)

        # Fold each child's metrics delta into the parent registry --
        # failed ranks included: their partial metrics are evidence.
        registry = get_metrics()
        for mexport in metric_exports:
            if mexport:
                registry.merge_export(mexport)

        if failures:
            rank, cause = select_primary_failure(failures)
            if telemetry_on and fabric.flight_bundle is not None:
                try:
                    ages = fabric.heartbeat_ages()
                    fabric.flight_bundle.mkdir(parents=True, exist_ok=True)
                    for r in flight.active_ranks():
                        flight.dump_rank(fabric.flight_bundle, r)
                    flight.write_manifest(
                        fabric.flight_bundle,
                        "abort",
                        failing_rank=rank,
                        cause=repr(cause),
                        heartbeat_ages=ages,
                    )
                    _LOG.warning(
                        "flight-recorder bundle written to %s",
                        fabric.flight_bundle,
                    )
                except OSError:  # pragma: no cover - post-mortem best effort
                    pass
            raise WorldAbortedError(rank=rank, cause=cause) from cause
        return results
