"""In-process threaded transport: the seed substrate, now as a plugin.

One thread per rank over the in-memory
:class:`~repro.parallel.world.World` fabric.  Semantically faithful --
message patterns, reduction counts and bitwise results match a real
decomposed run -- but GIL-serialized for pure-Python work, so it
measures *semantics*, not concurrency.  The multiprocessing transport
(:mod:`repro.parallel.links.mp`) exists for the latter.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.monitor import flight, telemetry
from repro.monitor.counters import Counters
from repro.monitor.log import bind_context, get_logger
from repro.parallel.comm import Communicator
from repro.parallel.links.base import Transport, validate_launch
from repro.parallel.world import World, WorldAbortedError

_LOG = get_logger("parallel.threads")


def select_primary_failure(
    failures: list[tuple[int, BaseException]],
) -> tuple[int, BaseException]:
    """Pick the originating failure from per-rank failures.

    Prefers the lowest-ranked *non-abort* exception: ranks that died
    with :class:`WorldAbortedError` are secondary casualties of someone
    else's abort, not the cause.
    """
    failures = sorted(failures, key=lambda f: f[0])
    return next(
        ((r, c) for r, c in failures if not isinstance(c, WorldAbortedError)),
        failures[0],
    )


class ThreadedTransport(Transport):
    """Run ranks on daemon threads of the calling process."""

    name = "threads"

    def run(
        self,
        size: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        timeout: float | None = 60.0,
        counters: Sequence[Counters] | None = None,
    ) -> list[Any]:
        validate_launch(size, counters)
        kwargs = kwargs or {}
        world = World(size, timeout=timeout)

        # Fast path: a serial "job" runs inline, keeping single-rank
        # runs easy to debug and profile.
        if size == 1:
            comm = Communicator(
                world, 0, counters=counters[0] if counters else None
            )
            try:
                return [fn(comm, *args, **kwargs)]
            except WorldAbortedError:  # pragma: no cover - defensive
                raise
        return self._run_threads(world, size, fn, args, kwargs, counters)

    def _run_threads(
        self,
        world: World,
        size: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        counters: Sequence[Counters] | None,
    ) -> list[Any]:
        results: list[Any] = [None] * size
        failures: list[tuple[int, BaseException]] = []
        failure_lock = threading.Lock()

        def body(rank: int) -> None:
            comm = Communicator(
                world, rank, counters=counters[rank] if counters else None
            )
            try:
                with bind_context(rank=rank):
                    results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - must propagate anything
                flight.record(
                    rank, "error", type(exc).__name__, message=str(exc)
                )
                _LOG.warning(
                    "rank %d failed: %r", rank, exc,
                    extra={"fields": {"rank": rank}},
                )
                with failure_lock:
                    failures.append((rank, exc))
                world.abort()

        threads = [
            threading.Thread(
                target=body, args=(r,), name=f"spmd-rank-{r}", daemon=True
            )
            for r in range(size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if failures:
            rank, cause = select_primary_failure(failures)
            if telemetry.enabled():
                bundle = flight.dump_bundle(
                    "abort",
                    failing_rank=rank,
                    cause=repr(cause),
                    heartbeat_ages=world.heartbeat_ages(),
                )
                _LOG.warning("flight-recorder bundle written to %s", bundle)
            raise WorldAbortedError(rank=rank, cause=cause) from cause
        return results
