"""The comm-transport interface: how SPMD ranks are actually carried.

A *transport* is the thing ``mpiexec -n`` abstracts over: it launches
``size`` copies of a rank program, hands each one a
:class:`~repro.parallel.comm.Communicator` bound to a shared *fabric*,
joins them, and returns their results in rank order.  The communicator
API (point-to-point, collectives, batched reductions) is transport-
independent; only the fabric underneath changes:

* :class:`~repro.parallel.links.threaded.ThreadedTransport` runs ranks
  on threads of one process over the in-memory
  :class:`~repro.parallel.world.World` mailboxes -- semantically
  faithful, GIL-serialized (the seed behaviour, and the default).
* :class:`~repro.parallel.links.mp.MPTransport` forks one OS process
  per rank and carries messages over ``SharedMemory``-backed ring
  buffers -- the same message patterns on the machine's physical
  cores.

Both fabrics implement the protocol documented on
:class:`~repro.parallel.world.World` (``deliver`` / ``collect`` /
``probe`` / ``pending_messages`` / ``barrier_impl`` / ``abort``), so a
single :class:`~repro.parallel.comm.Communicator` implementation --
and everything stacked on it: halo exchange, resilience wrappers,
batched collectives -- rides either one unchanged.  The cross-transport
parity suite (``tests/test_links.py``, plus the parametrized bitwise
tests) pins that equivalence: same seeded problem, bit-identical
fields, counters and iteration counts on both transports.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

from repro.monitor.counters import Counters


class TransportUnavailableError(RuntimeError):
    """The requested transport cannot run on this platform."""


class Transport(ABC):
    """Launches an SPMD job: one rank program per rank, results in order.

    Implementations must preserve the substrate's semantic guarantees
    regardless of how ranks are scheduled:

    * **value isolation** -- a payload mutated after ``send`` must not
      change what the receiver observes;
    * **per-channel FIFO** -- messages with the same ``(source, tag)``
      arrive in send order;
    * **deterministic reductions** -- rank-ordered combination at the
      root, so sums are bit-reproducible run to run and across
      transports;
    * **abort propagation** -- one failing rank wakes every blocked
      peer with :class:`~repro.parallel.world.WorldAbortedError`, and
      the launcher re-raises the originating failure (rank and cause
      attached) in the caller.
    """

    #: Registry key and user-facing name (``--transport=<name>``).
    name: str = "?"

    @abstractmethod
    def run(
        self,
        size: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        timeout: float | None = 60.0,
        counters: Sequence[Counters] | None = None,
    ) -> list[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks.

        Parameters mirror :func:`~repro.parallel.runtime.run_spmd`:
        ``timeout`` is the per-operation deadlock watchdog and
        ``counters`` an optional list of one :class:`Counters` per rank
        that must reflect each rank's traffic when the call returns
        (in-place for in-process transports, copied back across the
        process boundary otherwise).
        """

    def available(self) -> bool:
        """Can this transport run here?  (Platform gate for tests/CLI.)"""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def validate_launch(
    size: int, counters: Sequence[Counters] | None
) -> None:
    """Shared argument validation for transport launches."""
    if size < 1:
        raise ValueError("size must be >= 1")
    if counters is not None and len(counters) != size:
        raise ValueError("need exactly one Counters per rank")
