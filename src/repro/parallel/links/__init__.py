"""Pluggable comm transports for the SPMD runtime.

``links`` is the layer ``mpiexec`` occupies in a real MPI stack: it
decides *how* ranks exist (threads of one process, or forked processes
over shared memory) while the :class:`~repro.parallel.comm.Communicator`
API above it stays fixed.  See :mod:`repro.parallel.links.base` for the
interface contract and :mod:`repro.parallel.links.mp` for the
shared-memory mechanics.

Selection: :func:`get_transport` resolves, in order, an explicit name,
the ``REPRO_TRANSPORT`` environment variable, then the default
(``"threads"``).  The env override exists so an entire test suite can
be rerun under another transport without edits -- CI's ``mp-smoke`` job
does exactly that.
"""

from __future__ import annotations

import os

from repro.parallel.links.base import Transport, TransportUnavailableError
from repro.parallel.links.mp import MPFabric, MPTransport, RemoteRankError
from repro.parallel.links.shmem import SharedArray, ShmBarrier, ShmRing
from repro.parallel.links.threaded import ThreadedTransport

#: Environment variable overriding the default transport name.
TRANSPORT_ENV = "REPRO_TRANSPORT"

DEFAULT_TRANSPORT = "threads"

_REGISTRY: dict[str, type[Transport]] = {}


def register_transport(cls: type[Transport]) -> type[Transport]:
    """Register a transport class under its ``name`` (idempotent)."""
    _REGISTRY[cls.name] = cls
    return cls


register_transport(ThreadedTransport)
register_transport(MPTransport)


def available_transports() -> list[str]:
    """Names of transports that can run on this platform, sorted."""
    return sorted(
        name for name, cls in _REGISTRY.items() if cls().available()
    )


def registered_transports() -> list[str]:
    """Every registered transport name, sorted (availability aside).

    The vocabulary CLI flag validation and ``$REPRO_TRANSPORT`` checks
    quote in error messages -- distinct from
    :func:`available_transports`, which also probes the platform.
    """
    return sorted(_REGISTRY)


def get_transport(name: str | None = None) -> Transport:
    """Resolve a transport: explicit name > ``REPRO_TRANSPORT`` > default."""
    if name is None:
        name = os.environ.get(TRANSPORT_ENV) or DEFAULT_TRANSPORT
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise TransportUnavailableError(
            f"unknown transport {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    transport = cls()
    if not transport.available():
        raise TransportUnavailableError(
            f"transport {name!r} is not available on this platform"
        )
    return transport


__all__ = [
    "DEFAULT_TRANSPORT",
    "MPFabric",
    "MPTransport",
    "RemoteRankError",
    "SharedArray",
    "ShmBarrier",
    "ShmRing",
    "ThreadedTransport",
    "Transport",
    "TransportUnavailableError",
    "TRANSPORT_ENV",
    "available_transports",
    "get_transport",
    "registered_transports",
    "register_transport",
]
