"""Shared-memory primitives under the multiprocessing transport.

Three building blocks, all carried by
``multiprocessing.shared_memory.SharedMemory`` segments that forked
rank processes inherit from the launcher (no attach-by-name dance):

* :class:`SharedArray` -- a NumPy array over a shared segment, used for
  ring storage and barrier state (and available to kernels that want
  zero-copy field sharing).
* :class:`ShmRing` -- a single-producer/single-consumer byte ring with
  8-byte length framing.  One ring per ordered ``(src, dst)`` pair
  carries every message of the pair -- halo faces, collective legs --
  so per-channel FIFO order is structural.
* :class:`ShmBarrier` -- a sense-reversing barrier over shared
  counters, abort-aware like the threaded
  :class:`~repro.parallel.world._Barrier`.

Synchronization model: readers and writers on a ring never block each
other through the lock for the *data* -- payload bytes are copied
outside it -- but cursor publication takes a tiny
``multiprocessing.Lock`` so cross-process visibility does not depend on
racing unsynchronized loads of a shared uint64.  Waits are
spin-then-sleep polls with a deadline (deadlock watchdog) and an abort
check, so one dead rank wakes the others instead of hanging them.
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from repro.parallel.world import WorldAbortedError

#: Poll backoff: spin this many times, then sleep this long per retry.
_SPIN_ROUNDS = 200
_SLEEP_S = 0.0002

#: Byte frames are prefixed by their length in 8 little-endian bytes.
FRAME_HEADER = 8


class SharedArray:
    """A NumPy array backed by a ``SharedMemory`` segment.

    Created once in the launcher; forked children inherit the mapping.
    Only the creating process should :meth:`unlink`; every process
    should :meth:`close` when done (closing is idempotent here).
    """

    def __init__(self, shape: tuple[int, ...], dtype: np.dtype | str) -> None:
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        self.array[...] = 0
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.array = None  # drop the buffer view before closing the map
        self._shm.close()

    def unlink(self) -> None:
        """Remove the backing segment (creator-side, after close)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _wait(
    ready: Callable[[], bool],
    deadline: float | None,
    aborted: Callable[[], bool],
    what: str,
) -> None:
    """Spin-then-sleep until ``ready()``; honor abort and deadline."""
    spins = 0
    while not ready():
        if aborted():
            raise WorldAbortedError("world aborted")
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(f"{what} timed out (likely deadlock)")
        spins += 1
        if spins > _SPIN_ROUNDS:
            time.sleep(_SLEEP_S)


class ShmRing:
    """SPSC byte ring over shared memory with length-framed messages.

    Layout: ``capacity`` data bytes plus two uint64 cursors (head =
    bytes consumed, tail = bytes produced; both monotonic, wrapped
    modulo capacity on access).  Frames larger than the ring are
    written in chunks, so capacity bounds memory, not message size.
    """

    def __init__(self, capacity: int, ctx) -> None:
        if capacity < FRAME_HEADER:
            raise ValueError("ring capacity must hold at least a header")
        self.capacity = capacity
        self._data = SharedArray((capacity,), np.uint8)
        self._cursors = SharedArray((2,), np.uint64)  # [head, tail]
        self._lock = ctx.Lock()
        # Reader-side reassembly buffer for partially drained frames.
        self._partial = bytearray()
        self._want: int | None = None

    # -- cursor access under the lock (cross-process visibility) -------
    def _snapshot(self) -> tuple[int, int]:
        with self._lock:
            return int(self._cursors.array[0]), int(self._cursors.array[1])

    def _publish_tail(self, tail: int) -> None:
        with self._lock:
            self._cursors.array[1] = tail

    def _publish_head(self, head: int) -> None:
        with self._lock:
            self._cursors.array[0] = head

    # -- producer -------------------------------------------------------
    def write(
        self,
        frame: bytes,
        deadline: float | None,
        aborted: Callable[[], bool],
        progress: Callable[[], None] | None = None,
    ) -> None:
        """Append one length-framed message, chunking as space frees.

        ``progress``, when given, is invoked while blocked on a full
        ring.  The fabric passes its own inbound drain here: a writer
        stuck behind a slow reader keeps consuming *its* inbound
        traffic, so cyclic all-send-then-receive patterns (every rank's
        ring full at once) cannot deadlock -- the buffered-send
        contract survives messages larger than the ring.
        """
        blob = len(frame).to_bytes(FRAME_HEADER, "little") + frame
        offset = 0
        while offset < len(blob):
            head, tail = self._snapshot()
            free = self.capacity - (tail - head)
            if free == 0:

                def drained() -> bool:
                    if progress is not None:
                        progress()
                    head, tail = self._snapshot()
                    return tail - head < self.capacity

                _wait(drained, deadline, aborted, "ring write")
                continue
            n = min(free, len(blob) - offset)
            pos = tail % self.capacity
            first = min(n, self.capacity - pos)
            buf = self._data.array
            buf[pos : pos + first] = np.frombuffer(
                blob[offset : offset + first], dtype=np.uint8
            )
            if n > first:
                buf[: n - first] = np.frombuffer(
                    blob[offset + first : offset + n], dtype=np.uint8
                )
            self._publish_tail(tail + n)
            offset += n

    # -- consumer -------------------------------------------------------
    def try_read(self) -> bytes | None:
        """Drain available bytes; return one complete frame or ``None``.

        Stateful across calls: partial frames accumulate reader-side
        until their header-announced length arrives.
        """
        head, tail = self._snapshot()
        avail = tail - head
        if avail:
            pos = head % self.capacity
            first = min(avail, self.capacity - pos)
            buf = self._data.array
            chunk = buf[pos : pos + first].tobytes()
            if avail > first:
                chunk += buf[: avail - first].tobytes()
            self._partial.extend(chunk)
            self._publish_head(head + avail)
        if self._want is None and len(self._partial) >= FRAME_HEADER:
            self._want = int.from_bytes(self._partial[:FRAME_HEADER], "little")
            del self._partial[:FRAME_HEADER]
        if self._want is not None and len(self._partial) >= self._want:
            frame = bytes(self._partial[: self._want])
            del self._partial[: self._want]
            self._want = None
            return frame
        return None

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._data.close()
        self._cursors.close()

    def unlink(self) -> None:
        self._data.unlink()
        self._cursors.unlink()


class ShmBarrier:
    """Sense-reversing barrier over shared counters, abort-aware.

    State: ``[count, sense]`` uint64 cells guarded by one lock, plus a
    shared abort flag (owned by the fabric) consulted while waiting.
    """

    def __init__(self, parties: int, ctx, abort_flag: SharedArray) -> None:
        self._parties = parties
        self._state = SharedArray((2,), np.uint64)  # [count, sense]
        self._lock = ctx.Lock()
        self._abort = abort_flag

    def _aborted(self) -> bool:
        return bool(self._abort.array[0])

    def wait(self, timeout: float | None) -> None:
        if self._aborted():
            raise WorldAbortedError("world aborted during barrier")
        with self._lock:
            local_sense = 1 - int(self._state.array[1])
            self._state.array[0] += 1
            if int(self._state.array[0]) == self._parties:
                self._state.array[0] = 0
                self._state.array[1] = local_sense
                return
        deadline = None if timeout is None else time.monotonic() + timeout

        def flipped() -> bool:
            with self._lock:
                return int(self._state.array[1]) == local_sense

        try:
            _wait(flipped, deadline, self._aborted, "barrier")
        except WorldAbortedError:
            raise WorldAbortedError("world aborted during barrier") from None

    def close(self) -> None:
        self._state.close()

    def unlink(self) -> None:
        self._state.unlink()
