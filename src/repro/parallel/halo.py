"""Ghost-zone (halo) exchange for decomposed fields.

Before each matrix-free Matvec, every tile must see its neighbours'
boundary zones.  The exchanger posts buffered sends of the interior
boundary strips to all face neighbours, then receives into the ghost
strips; faces on the physical domain boundary apply the problem's
boundary condition instead.

Tags encode the direction of travel so that simultaneous exchanges
with the same neighbour in opposite directions cannot be confused, and
the counters record one ``halo_exchange`` event plus per-message bytes
for the performance model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum

from repro.grid.field import Field
from repro.monitor.trace import Tracer
from repro.parallel.cart import CartComm

#: direction-of-travel tags: messages are tagged by the side of the
#: *receiver* they fill, so a west-send matches the neighbour's east fill.
#: Periodic wrap traffic uses its own tag base so a torus message can
#: never be confused with an interior-face message, even between the
#: same rank pair.
_TAG_BASE = 1 << 20
_PERIODIC_TAG = _TAG_BASE + 8
_FILL_SIDE = {"west": "east", "east": "west", "south": "north", "north": "south"}
_SIDE_TAG = {"west": 0, "east": 1, "south": 2, "north": 3}


class BoundaryCondition(Enum):
    """Physical-boundary ghost fill strategies.

    All four are linear in the field, so applying them inside the
    solver's Matvec keeps the operator linear (the boundary-condition
    algebra is folded into the ghost fill rather than into modified
    stencil rows).  PERIODIC is the only one that moves data between
    ranks: the domain closes into a torus along that axis, so boundary
    ghosts are filled from the opposite edge's interior (a message to
    the wrap partner, or a local copy when the axis has one tile).
    """

    DIRICHLET0 = "dirichlet0"  # vacuum: ghost = 0
    REFLECT = "reflect"        # symmetry: ghost mirrors interior
    OUTFLOW = "outflow"        # zero-gradient: ghost copies edge zones
    PERIODIC = "periodic"      # torus: ghost wraps to the far edge


@dataclass
class HaloExchanger:
    """Exchange one-deep-or-more halos on a Cartesian topology.

    Parameters
    ----------
    cart:
        The process topology (also provides the communicator).
    bc:
        Physical-boundary condition; either one
        :class:`BoundaryCondition` for all sides or a per-side dict
        with keys ``west/east/south/north``.
    tracer:
        Optional :class:`~repro.monitor.trace.Tracer`; when given, the
        posting (``halo_start``) and installation (``halo_finish``)
        phases become spans on this rank's track and the in-flight
        window between them an async ``halo_inflight`` event, making
        communication/compute overlap visible on the timeline.
    """

    cart: CartComm
    bc: BoundaryCondition | dict[str, BoundaryCondition] = BoundaryCondition.DIRICHLET0
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        # A torus must close: periodic on one side of an axis requires
        # periodic on the other, or the wrap messages have no partner.
        for lo, hi in (("west", "east"), ("south", "north")):
            pair = (self._bc_for(lo), self._bc_for(hi))
            if (BoundaryCondition.PERIODIC in pair) and pair[0] is not pair[1]:
                raise ValueError(
                    f"periodic axis must be periodic on both sides; got "
                    f"{lo}={pair[0].value}, {hi}={pair[1].value}"
                )

    def _bc_for(self, side: str) -> BoundaryCondition:
        if isinstance(self.bc, BoundaryCondition):
            return self.bc
        return self.bc[side]

    def exchange(self, field: Field, width: int | None = None) -> None:
        """Fill every ghost strip of ``field`` in place (blocking).

        ``width`` defaults to the field's full ghost depth.  Buffered
        sends are all posted before any receive, so the exchange cannot
        deadlock regardless of topology.
        """
        self.start(field, width).finish()

    def start(self, field: Field, width: int | None = None) -> "PendingExchange":
        """Begin a non-blocking exchange (communication/compute overlap).

        Posts all sends, posts non-blocking receives, and applies the
        physical-boundary fills immediately (they need no messages).
        The caller may compute on zones that do not read ghosts, then
        call :meth:`PendingExchange.finish` before touching the halos
        -- the standard overlap pattern for stencil codes.
        """
        if self.tracer is None:
            return self._start(field, width, None)
        rank = self.cart.rank
        aid = self.tracer.async_begin("halo_inflight", rank=rank, cat="halo")
        with self.tracer.span("halo_start", rank=rank, cat="halo"):
            return self._start(field, width, aid)

    def _start(
        self, field: Field, width: int | None, async_id: int | None
    ) -> "PendingExchange":
        comm = self.cart.comm
        neighbors = self.cart.neighbors

        # Post every send first (buffered, so this cannot deadlock):
        # interior faces to their neighbours, periodic physical faces
        # to their wrap partner across the torus.
        for side, nbr in neighbors.items():
            if nbr is not None:
                tag = _TAG_BASE + _SIDE_TAG[_FILL_SIDE[side]]
                comm.send(field.send_strip(side, width).copy(), nbr, tag)
            elif self._bc_for(side) is BoundaryCondition.PERIODIC:
                wrap = self.cart.wrap_neighbor(side)
                if wrap != self.cart.rank:
                    tag = _PERIODIC_TAG + _SIDE_TAG[_FILL_SIDE[side]]
                    comm.send(field.send_strip(side, width).copy(), wrap, tag)

        pending = []
        for side, nbr in neighbors.items():
            if nbr is not None:
                tag = _TAG_BASE + _SIDE_TAG[side]
                pending.append((side, comm.irecv(nbr, tag)))
                continue
            bc = self._bc_for(side)
            if bc is BoundaryCondition.DIRICHLET0:
                field.zero_side(side)
            elif bc is BoundaryCondition.REFLECT:
                field.reflect_side(side)
            elif bc is BoundaryCondition.OUTFLOW:
                field.outflow_side(side)
            else:  # PERIODIC
                wrap = self.cart.wrap_neighbor(side)
                if wrap == self.cart.rank:
                    # Single tile along this axis: the wrap partner is
                    # this rank; copy the far edge's interior locally.
                    field.ghost_strip(side, width)[...] = field.send_strip(
                        _FILL_SIDE[side], width
                    )
                else:
                    tag = _PERIODIC_TAG + _SIDE_TAG[side]
                    pending.append((side, comm.irecv(wrap, tag)))
        return PendingExchange(self, field, width, pending, async_id=async_id)


@dataclass
class PendingExchange:
    """Handle for an in-flight halo exchange."""

    exchanger: HaloExchanger
    field: Field
    width: int | None
    pending: list
    async_id: int | None = None
    _done: bool = False

    def test(self) -> bool:
        """Have all neighbour strips arrived? (non-blocking)"""
        return self._done or all(req.test() for _side, req in self.pending)

    def finish(self) -> None:
        """Wait for and install every neighbour strip (idempotent)."""
        if self._done:
            return
        tracer = self.exchanger.tracer
        if tracer is None:
            self._finish()
            return
        rank = self.exchanger.cart.rank
        with tracer.span("halo_finish", rank=rank, cat="halo"):
            self._finish()
        if self.async_id is not None:
            tracer.async_end("halo_inflight", self.async_id, rank=rank, cat="halo")

    def _finish(self) -> None:
        from repro.monitor import telemetry

        if telemetry.enabled():
            # Observation only: time spent blocked on neighbour strips
            # feeds the repro.halo.wait_seconds histogram.  The guarded
            # path never touches operands, so disabled runs stay
            # bitwise-identical.
            t0 = time.monotonic()
            for side, req in self.pending:
                self.field.ghost_strip(side, self.width)[...] = req.wait()
            from repro.monitor.trace import get_metrics

            get_metrics().observe(
                "repro.halo.wait_seconds", time.monotonic() - t0
            )
        else:
            for side, req in self.pending:
                self.field.ghost_strip(side, self.width)[...] = req.wait()
        self.exchanger.cart.comm.counters.halo_exchanges += 1
        self._done = True
