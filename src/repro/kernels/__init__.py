"""The V2D sparse linear-algebra kernels (paper Table II).

Five routines dominate V2D's BiCGSTAB solver and are the subject of the
paper's stand-alone driver study:

* ``MATVEC`` -- matrix-vector product, matrix-free (5-band stencil)
* ``DPROD`` -- dot product (with ganged multi-dot variant)
* ``DAXPY`` -- ``a*x + y``
* ``DSCAL`` -- ``c - d*y``
* ``DDAXPY`` -- ``a*x + b*y + z``

:class:`~repro.kernels.suite.KernelSuite` exposes them over a chosen
execution backend with PAPI-style flop/byte/SIMD accounting;
:mod:`repro.kernels.stencil` provides the multi-species grid-shaped
Matvec used by the full code; :mod:`repro.kernels.driver` is the
single-processor driver program of Sec. II-F.
"""

from repro.kernels.fused import SolverWorkspace
from repro.kernels.stencil import MultiSpeciesStencil, StencilCoefficients
from repro.kernels.suite import KernelSuite
from repro.kernels.driver import (
    DriverResult,
    KernelDriver,
    SpmdDriverResult,
    run_driver_spmd,
)

__all__ = [
    "KernelSuite",
    "StencilCoefficients",
    "MultiSpeciesStencil",
    "KernelDriver",
    "DriverResult",
    "SpmdDriverResult",
    "run_driver_spmd",
    "SolverWorkspace",
]
