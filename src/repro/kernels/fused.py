"""Fused-kernel support: solver workspace and reference compositions.

The BiCGSTAB inner loop used to allocate fresh temporaries and issue
separate kernel launches for every update/reduction pairing.  Two
pieces live here:

* :class:`SolverWorkspace` -- a bundle of preallocated, shape-checked
  scratch vectors the solver reuses across iterations *and* across
  solves, making the vector backend's inner loop allocation-free (the
  Python-level analogue of hoisting temporaries out of the loop).
* ``unfused_*`` helpers -- the base-class (unfused) compositions of the
  fused backend ops, invoked explicitly so property tests can compare
  any backend's fused override against the reference semantics even
  when the backend shadows the default.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend.base import Array, Backend

#: Scratch vectors the BiCGSTAB loop needs (direction, matvec results,
#: intermediate residuals, preconditioned vectors, one aliasing buffer).
WORKSPACE_NAMES: tuple[str, ...] = ("p", "v", "s", "t", "phat", "shat", "work")


class SolverWorkspace:
    """Preallocated solver scratch space, reused across solves.

    ``ensure(shape)`` (re)allocates the named buffers only when the
    operand shape changes; repeated solves on the same grid reuse the
    same memory.  ``allocations`` / ``reuses`` expose the hit rate so
    tests can assert the inner loop really is allocation-free.
    """

    def __init__(self, names: Sequence[str] = WORKSPACE_NAMES) -> None:
        self.names = tuple(names)
        self._arrays: dict[str, Array] = {}
        self.shape: tuple[int, ...] | None = None
        self.allocations = 0
        self.reuses = 0

    def ensure(self, shape: tuple[int, ...], dtype: type = np.float64) -> None:
        """Guarantee every named buffer exists with ``shape``."""
        shape = tuple(shape)
        if self.shape == shape and self._arrays:
            self.reuses += 1
            return
        self._arrays = {name: np.empty(shape, dtype=dtype) for name in self.names}
        self.shape = shape
        self.allocations += 1

    def array(self, name: str) -> Array:
        """The named scratch buffer (``ensure`` must have run)."""
        if not self._arrays:
            raise RuntimeError("SolverWorkspace.ensure() has not been called")
        return self._arrays[name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverWorkspace(shape={self.shape}, "
            f"allocations={self.allocations}, reuses={self.reuses})"
        )


# ----------------------------------------------------------------------
# Unfused reference compositions (the semantics every fused override
# must reproduce).  Calling through ``Backend.<op>`` bypasses any
# backend override, so these stay the reference even for backends that
# fuse natively.
# ----------------------------------------------------------------------
def unfused_axpy_dot(
    backend: Backend,
    a: float,
    x: Array,
    y: Array,
    w: Array | None = None,
    out: Array | None = None,
) -> tuple[Array, float]:
    return Backend.axpy_dot(backend, a, x, y, w=w, out=out)


def unfused_dscal_dot(
    backend: Backend,
    c: Array,
    d: float,
    y: Array,
    w: Array | None = None,
    out: Array | None = None,
) -> tuple[Array, float]:
    return Backend.dscal_dot(backend, c, d, y, w=w, out=out)


def unfused_stencil_apply_dots(
    backend: Backend,
    diag: Array,
    west: Array,
    east: Array,
    south: Array,
    north: Array,
    x: Array,
    dots: Sequence[object],
    out: Array | None = None,
) -> tuple[Array, Array]:
    return Backend.stencil_apply_dots(
        backend, diag, west, east, south, north, x, dots, out=out
    )
