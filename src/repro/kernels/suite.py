"""Instrumented kernel suite.

Wraps the backend primitives with the accounting the paper gathered via
PAPI: double-precision flop counts, bytes of memory traffic (these
kernels are memory-bandwidth limited, so traffic is the quantity that
matters on the A64FX), and packed-SIMD vs scalar instruction counts.

Flop/traffic conventions (per element, double precision = 8 bytes):

==========  ======  ===============================
kernel      flops   traffic (bytes loaded, stored)
==========  ======  ===============================
DPROD        2      (16, 0)
DAXPY        2      (16, 8)
DSCAL        2      (16, 8)
DDAXPY       4      (24, 8)
MATVEC(5pt)  9      (48, 8)   5 coeff + ~1 field load amortized
==========  ======  ===============================

The Matvec traffic estimate charges each of the five coefficient arrays
once and the field once (neighbouring loads hit cache), matching the
standard roofline accounting for a 5-point stencil.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend.base import Array, Backend
from repro.backend.dispatch import default_backend, get_backend
from repro.monitor.counters import Counters


class KernelSuite:
    """The five V2D routines over one backend, with event accounting.

    Parameters
    ----------
    backend:
        Backend instance or registry name (default: ambient backend).
    counters:
        Optional :class:`~repro.monitor.counters.Counters` receiving
        PAPI-style event increments.  ``None`` disables accounting.
    """

    def __init__(
        self,
        backend: str | Backend | None = None,
        counters: Counters | None = None,
    ) -> None:
        self.backend = default_backend() if backend is None else get_backend(backend)
        self.counters = counters

    # ------------------------------------------------------------------
    def _account(
        self,
        n: int,
        flops_per: int,
        loaded_per: int,
        stored_per: int,
        launches: int = 1,
    ) -> None:
        c = self.counters
        if c is None:
            return
        c.add_flops(flops_per * n)
        c.add_traffic(loaded_per * n, stored_per * n)
        c.kernel_calls += launches
        if self.backend.vectorized:
            c.add_vector_ops(self.backend.vector_op_count(n))
        else:
            c.add_scalar_ops(n)

    # ------------------------------------------------------------------
    # DPROD
    # ------------------------------------------------------------------
    def dprod(self, x: Array, y: Array) -> float:
        """Dot product of two (possibly grid-shaped) vectors."""
        n = x.size
        self._account(n, 2, 16, 0)
        if self.counters is not None:
            self.counters.dot_products += 1
        return self.backend.dot(x, y)

    def dprod_gang(self, pairs: Sequence[tuple[Array, Array]]) -> np.ndarray:
        """Ganged dot products: one traversal, one future reduction.

        This is the restructuring V2D applies to BiCGSTAB: inner
        products whose operands are all available are computed together
        so a single global reduction carries all of them.
        """
        if pairs:
            n = pairs[0][0].size
            self._account(n * len(pairs), 2, 16, 0)
        if self.counters is not None:
            self.counters.dot_products += len(pairs)
        return self.backend.multi_dot(pairs)

    # ------------------------------------------------------------------
    # DAXPY / DSCAL / DDAXPY
    # ------------------------------------------------------------------
    def daxpy(
        self,
        a: float,
        x: Array,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        """``a*x + y``."""
        self._account(x.size, 2, 16, 8)
        return self.backend.axpy(a, x, y, out=out, work=work)

    def dscal(
        self,
        c: Array,
        d: float,
        y: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        """``c - d*y`` (vector ``c``, scalar ``d``)."""
        self._account(c.size, 2, 16, 8)
        return self.backend.dscal(c, d, y, out=out, work=work)

    def ddaxpy(
        self,
        a: float,
        x: Array,
        b: float,
        y: Array,
        z: Array,
        out: Array | None = None,
        work: Array | None = None,
    ) -> Array:
        """``a*x + b*y + z``."""
        self._account(x.size, 4, 24, 8)
        return self.backend.ddaxpy(a, x, b, y, z, out=out, work=work)

    # ------------------------------------------------------------------
    # Fused hot-path pairings (update + reduction in one launch)
    #
    # Accounting convention: a fused op counts exactly the flops/bytes/
    # SIMD ops of its unfused decomposition (update kernel + DPROD),
    # with only the launch count reflecting the fusion.  PAPI-style
    # event counts are a *work* model -- like flop counts that must not
    # depend on how the code was compiled, they must not depend on how
    # launches were batched, or fused-vs-unfused efficiency ratios
    # (GF/s, arithmetic intensity, %-of-roofline) stop being
    # comparable.
    # ------------------------------------------------------------------
    def daxpy_norm(
        self,
        a: float,
        x: Array,
        y: Array,
        w: Array | None = None,
        out: Array | None = None,
        work: Array | None = None,
    ) -> tuple[Array, float]:
        """Fused ``out = a*x + y`` plus ``<out, w>`` (``w=None`` ->
        ``<out, out>``) in a single kernel launch."""
        n = x.size
        self._account(n, 2, 16, 8)                 # the DAXPY update
        self._account(n, 2, 16, 0, launches=0)     # the riding DPROD
        if self.counters is not None:
            self.counters.dot_products += 1
            self.counters.fused_ops += 1
        return self.backend.axpy_dot(a, x, y, w=w, out=out, work=work)

    def dscal_norm(
        self,
        c: Array,
        d: float,
        y: Array,
        w: Array | None = None,
        out: Array | None = None,
        work: Array | None = None,
    ) -> tuple[Array, float]:
        """Fused ``out = c - d*y`` plus ``<out, w>`` (``w=None`` ->
        ``<out, out>``) in a single kernel launch."""
        n = c.size
        self._account(n, 2, 16, 8)                 # the DSCAL update
        self._account(n, 2, 16, 0, launches=0)     # the riding DPROD
        if self.counters is not None:
            self.counters.dot_products += 1
            self.counters.fused_ops += 1
        return self.backend.dscal_dot(c, d, y, w=w, out=out, work=work)

    # ------------------------------------------------------------------
    # MATVEC (banded, driver-program form)
    # ------------------------------------------------------------------
    def matvec_banded(
        self,
        offsets: Sequence[int],
        bands: Sequence[Array],
        x: Array,
        out: Array | None = None,
    ) -> Array:
        """Banded matvec: ``out[i] = sum_k bands[k][i] * x[i+offsets[k]]``."""
        n = x.shape[0]
        nb = len(offsets)
        self._account(n, 2 * nb - 1, 8 * (nb + 1), 8)
        if self.counters is not None:
            self.counters.matvecs += 1
        return self.backend.banded_matvec(offsets, bands, x, out=out)

    # ------------------------------------------------------------------
    # Norms / utility (thin, still accounted)
    # ------------------------------------------------------------------
    def norm2(self, x: Array) -> float:
        self._account(x.size, 2, 8, 0)
        return self.backend.norm2(x)

    def copy(self, x: Array, out: Array | None = None) -> Array:
        self._account(x.size, 0, 8, 8)
        return self.backend.copy(x, out=out)

    def fill(self, x: Array, value: float) -> Array:
        self._account(x.size, 0, 0, 8)
        return self.backend.fill(x, value)

    def scale(self, alpha: float, x: Array, out: Array | None = None) -> Array:
        self._account(x.size, 1, 8, 8)
        return self.backend.scale(alpha, x, out=out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelSuite(backend={self.backend.name!r})"
