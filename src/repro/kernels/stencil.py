"""Multi-species grid-shaped Matvec.

V2D never stores the sparse system matrix.  The operator is kept as
five stencil-coefficient arrays per species (plus a pointwise
species-coupling block) with the same spatial shape as the 2-D grid,
and the Krylov solver's Matvec applies the finite-difference operator
directly to grid-shaped vectors.  This module implements exactly that
representation.

Index conventions
-----------------
Fields are ``(ns, nx1, nx2)`` arrays: species index first, then the x1
and x2 zone indices.  Ghost-padded work fields are
``(ns, nx1 + 2, nx2 + 2)``.  With dictionary ordering (x1 fastest, then
x2, species slowest) the equivalent assembled matrix is the five-banded
structure of the paper's Fig. 1: bands at offsets ``0``, ``+/-1`` (x1
neighbours) and ``+/-x1`` (x2 neighbours), with pointwise
species-coupling entries appearing at offset ``+/- nx1*nx2`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.base import Array, Backend
from repro.backend.dispatch import native_fused_ops
from repro.kernels.suite import KernelSuite


@dataclass
class StencilCoefficients:
    """Coefficients of the matrix-free operator.

    Attributes
    ----------
    diag, west, east, south, north:
        ``(ns, nx1, nx2)`` stencil coefficients per species.  ``west`` /
        ``east`` couple along x1 (``i-1`` / ``i+1``), ``south`` /
        ``north`` along x2 (``j-1`` / ``j+1``).
    coupling:
        Optional ``(ns, ns, nx1, nx2)`` pointwise inter-species
        coupling; entry ``[s, sp]`` multiplies species ``sp`` in the
        equation for species ``s``.  The ``[s, s]`` diagonal must be
        zero (self coupling belongs in ``diag``).
    """

    diag: Array
    west: Array
    east: Array
    south: Array
    north: Array
    coupling: Array | None = None

    def __post_init__(self) -> None:
        shape = self.diag.shape
        if self.diag.ndim != 3:
            raise ValueError(f"coefficients must be (ns, nx1, nx2), got {shape}")
        for name in ("west", "east", "south", "north"):
            arr = getattr(self, name)
            if arr.shape != shape:
                raise ValueError(f"{name} shape {arr.shape} != diag shape {shape}")
        if self.coupling is not None:
            ns = shape[0]
            want = (ns, ns, shape[1], shape[2])
            if self.coupling.shape != want:
                raise ValueError(
                    f"coupling shape {self.coupling.shape} != {want}"
                )
            for s in range(ns):
                if np.any(self.coupling[s, s] != 0.0):
                    raise ValueError(
                        "coupling diagonal must be zero (fold it into diag)"
                    )

    @property
    def nspec(self) -> int:
        return self.diag.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """Interior grid shape ``(nx1, nx2)``."""
        return self.diag.shape[1], self.diag.shape[2]

    @property
    def nunknowns(self) -> int:
        return self.diag.size

    @classmethod
    def zeros(cls, ns: int, nx1: int, nx2: int, coupled: bool = False) -> "StencilCoefficients":
        """All-zero coefficients (coupling block allocated iff ``coupled``)."""
        mk = lambda: np.zeros((ns, nx1, nx2))  # noqa: E731
        coupling = np.zeros((ns, ns, nx1, nx2)) if coupled else None
        return cls(diag=mk(), west=mk(), east=mk(), south=mk(), north=mk(), coupling=coupling)

    def copy(self) -> "StencilCoefficients":
        return StencilCoefficients(
            diag=self.diag.copy(),
            west=self.west.copy(),
            east=self.east.copy(),
            south=self.south.copy(),
            north=self.north.copy(),
            coupling=None if self.coupling is None else self.coupling.copy(),
        )


@dataclass
class MultiSpeciesStencil:
    """Applies :class:`StencilCoefficients` to ghost-padded fields.

    The caller (usually :class:`repro.linalg.operators.StencilOperator`)
    is responsible for filling ghost zones (physical boundary conditions
    and/or halo exchange) *before* :meth:`apply`.
    """

    coeffs: StencilCoefficients
    suite: KernelSuite = field(default_factory=KernelSuite)
    #: Interior-shaped scratch reused across fused applies, so the
    #: fused hot path allocates nothing after the first call.
    _scratch: Array | None = field(default=None, init=False, repr=False)

    @property
    def backend(self) -> Backend:
        return self.suite.backend

    def _work(self) -> Array:
        if self._scratch is None or self._scratch.shape != self.coeffs.shape:
            self._scratch = np.empty(self.coeffs.shape)
        return self._scratch

    def apply(self, xpad: Array, out: Array | None = None) -> Array:
        """``out = A @ x`` with ``xpad`` a ghost-padded ``(ns, nx1+2, nx2+2)`` field.

        Returns an interior-shaped ``(ns, nx1, nx2)`` array.
        """
        c = self.coeffs
        ns, (n1, n2) = c.nspec, c.shape
        if xpad.shape != (ns, n1 + 2, n2 + 2):
            raise ValueError(
                f"expected padded field {(ns, n1 + 2, n2 + 2)}, got {xpad.shape}"
            )
        if out is None:
            out = np.empty((ns, n1, n2))
        elif out.shape != (ns, n1, n2):
            raise ValueError(f"out shape {out.shape} != {(ns, n1, n2)}")

        npts = n1 * n2
        for s in range(ns):
            self.backend.stencil_apply(
                c.diag[s], c.west[s], c.east[s], c.south[s], c.north[s],
                xpad[s], out=out[s],
            )
        # 9 flops/point/species for the 5-point stencil; traffic: five
        # coefficient streams + field + result.
        if self.suite.counters is not None:
            self.suite._account(ns * npts, 9, 48, 8)
            self.suite.counters.matvecs += 1

        if c.coupling is not None:
            interior = xpad[:, 1:-1, 1:-1]
            bk = self.backend
            for s in range(ns):
                for sp in range(ns):
                    if s == sp:
                        continue
                    coup = c.coupling[s, sp]
                    if not coup.any():
                        continue
                    # out[s] += coupling[s,sp] * x[sp]  (pointwise)
                    tmp = bk.mul(coup, interior[sp])
                    bk.add(out[s], tmp, out=out[s])
                    if self.suite.counters is not None:
                        self.suite._account(npts, 2, 24, 8)
        return out

    def apply_dots(
        self,
        xpad: Array,
        dots: list,
        out: Array | None = None,
    ) -> tuple[Array, np.ndarray]:
        """Fused ``A @ x`` plus ganged inner products against the result.

        ``dots`` entries follow the backend dot-spec forms (``None`` ->
        ``<out, out>``; interior-shaped array ``w`` -> ``<out, w>``; an
        ``(a, b)`` tuple -> an independent pair ganged along).  Returns
        ``(out, values)`` with the inner products local to this rank.

        Results are bit-identical to :meth:`apply` followed by a ganged
        DPROD over the same pairs, on both backends.
        """
        c = self.coeffs
        ns, (n1, n2) = c.nspec, c.shape
        npts = n1 * n2

        if c.coupling is not None:
            # Coupled systems: the dots must see the post-coupling
            # result, so fall back to apply() + ganged DPROD.
            out = self.apply(xpad, out=out)
            vals = self.suite.dprod_gang(Backend._resolve_dot_pairs(out, dots))
            return out, vals

        if xpad.shape != (ns, n1 + 2, n2 + 2):
            raise ValueError(
                f"expected padded field {(ns, n1 + 2, n2 + 2)}, got {xpad.shape}"
            )
        if out is None:
            out = np.empty((ns, n1, n2))
        elif out.shape != (ns, n1, n2):
            raise ValueError(f"out shape {out.shape} != {(ns, n1, n2)}")

        bk = self.backend
        if ns == 1 and "stencil_apply_dots" in native_fused_ops(bk):
            # Single species on a backend with native in-loop fusion
            # (scalar's element loop, jit's compiled sweep): hand it
            # the whole sweep.  The gate is capability-based rather
            # than ``not bk.vectorized`` so the jit tier's fused kernel
            # is actually exercised.  Row-major accumulation order
            # equals the flattened order of the unfused multi_dot, so
            # the values are bit-identical.
            specs = []
            for spec in dots:
                if spec is None:
                    specs.append(None)
                elif isinstance(spec, tuple):
                    specs.append((spec[0][0], spec[1][0]))
                else:
                    specs.append(spec[0])
            _, vals = bk.stencil_apply_dots(
                c.diag[0], c.west[0], c.east[0], c.south[0], c.north[0],
                xpad[0], specs, out=out[0],
            )
        else:
            # Whole-array backends cannot fuse at register level, and
            # per-species partial sums would reassociate the scalar
            # backend's continuous accumulation: apply the stencil per
            # species, then one ganged multi_dot over the full arrays
            # -- exactly the unfused composition, hence bit-identical.
            # The persistent scratch keeps the band products out of
            # fresh temporaries (same values, zero allocations).
            work = self._work()
            for s in range(ns):
                bk.stencil_apply(
                    c.diag[s], c.west[s], c.east[s], c.south[s], c.north[s],
                    xpad[s], out=out[s], work=work,
                )
            vals = bk.multi_dot(Backend._resolve_dot_pairs(out, dots))

        if self.suite.counters is not None:
            # One fused launch, but the event counts are exactly those
            # of the unfused composition (apply + ganged DPROD over the
            # same pairs): fused-vs-unfused runs must report identical
            # flops/bytes or their efficiency ratios stop comparing.
            self.suite._account(ns * npts, 9, 48, 8)
            self.suite._account(ns * npts * len(dots), 2, 16, 0, launches=0)
            self.suite.counters.matvecs += 1
            self.suite.counters.dot_products += len(dots)
            self.suite.counters.fused_ops += 1
        return out, vals
