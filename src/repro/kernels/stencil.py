"""Multi-species grid-shaped Matvec.

V2D never stores the sparse system matrix.  The operator is kept as
five stencil-coefficient arrays per species (plus a pointwise
species-coupling block) with the same spatial shape as the 2-D grid,
and the Krylov solver's Matvec applies the finite-difference operator
directly to grid-shaped vectors.  This module implements exactly that
representation.

Index conventions
-----------------
Fields are ``(ns, nx1, nx2)`` arrays: species index first, then the x1
and x2 zone indices.  Ghost-padded work fields are
``(ns, nx1 + 2, nx2 + 2)``.  With dictionary ordering (x1 fastest, then
x2, species slowest) the equivalent assembled matrix is the five-banded
structure of the paper's Fig. 1: bands at offsets ``0``, ``+/-1`` (x1
neighbours) and ``+/-x1`` (x2 neighbours), with pointwise
species-coupling entries appearing at offset ``+/- nx1*nx2`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.base import Array, Backend
from repro.kernels.suite import KernelSuite


@dataclass
class StencilCoefficients:
    """Coefficients of the matrix-free operator.

    Attributes
    ----------
    diag, west, east, south, north:
        ``(ns, nx1, nx2)`` stencil coefficients per species.  ``west`` /
        ``east`` couple along x1 (``i-1`` / ``i+1``), ``south`` /
        ``north`` along x2 (``j-1`` / ``j+1``).
    coupling:
        Optional ``(ns, ns, nx1, nx2)`` pointwise inter-species
        coupling; entry ``[s, sp]`` multiplies species ``sp`` in the
        equation for species ``s``.  The ``[s, s]`` diagonal must be
        zero (self coupling belongs in ``diag``).
    """

    diag: Array
    west: Array
    east: Array
    south: Array
    north: Array
    coupling: Array | None = None

    def __post_init__(self) -> None:
        shape = self.diag.shape
        if self.diag.ndim != 3:
            raise ValueError(f"coefficients must be (ns, nx1, nx2), got {shape}")
        for name in ("west", "east", "south", "north"):
            arr = getattr(self, name)
            if arr.shape != shape:
                raise ValueError(f"{name} shape {arr.shape} != diag shape {shape}")
        if self.coupling is not None:
            ns = shape[0]
            want = (ns, ns, shape[1], shape[2])
            if self.coupling.shape != want:
                raise ValueError(
                    f"coupling shape {self.coupling.shape} != {want}"
                )
            for s in range(ns):
                if np.any(self.coupling[s, s] != 0.0):
                    raise ValueError(
                        "coupling diagonal must be zero (fold it into diag)"
                    )

    @property
    def nspec(self) -> int:
        return self.diag.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """Interior grid shape ``(nx1, nx2)``."""
        return self.diag.shape[1], self.diag.shape[2]

    @property
    def nunknowns(self) -> int:
        return self.diag.size

    @classmethod
    def zeros(cls, ns: int, nx1: int, nx2: int, coupled: bool = False) -> "StencilCoefficients":
        """All-zero coefficients (coupling block allocated iff ``coupled``)."""
        mk = lambda: np.zeros((ns, nx1, nx2))  # noqa: E731
        coupling = np.zeros((ns, ns, nx1, nx2)) if coupled else None
        return cls(diag=mk(), west=mk(), east=mk(), south=mk(), north=mk(), coupling=coupling)

    def copy(self) -> "StencilCoefficients":
        return StencilCoefficients(
            diag=self.diag.copy(),
            west=self.west.copy(),
            east=self.east.copy(),
            south=self.south.copy(),
            north=self.north.copy(),
            coupling=None if self.coupling is None else self.coupling.copy(),
        )


@dataclass
class MultiSpeciesStencil:
    """Applies :class:`StencilCoefficients` to ghost-padded fields.

    The caller (usually :class:`repro.linalg.operators.StencilOperator`)
    is responsible for filling ghost zones (physical boundary conditions
    and/or halo exchange) *before* :meth:`apply`.
    """

    coeffs: StencilCoefficients
    suite: KernelSuite = field(default_factory=KernelSuite)

    @property
    def backend(self) -> Backend:
        return self.suite.backend

    def apply(self, xpad: Array, out: Array | None = None) -> Array:
        """``out = A @ x`` with ``xpad`` a ghost-padded ``(ns, nx1+2, nx2+2)`` field.

        Returns an interior-shaped ``(ns, nx1, nx2)`` array.
        """
        c = self.coeffs
        ns, (n1, n2) = c.nspec, c.shape
        if xpad.shape != (ns, n1 + 2, n2 + 2):
            raise ValueError(
                f"expected padded field {(ns, n1 + 2, n2 + 2)}, got {xpad.shape}"
            )
        if out is None:
            out = np.empty((ns, n1, n2))
        elif out.shape != (ns, n1, n2):
            raise ValueError(f"out shape {out.shape} != {(ns, n1, n2)}")

        npts = n1 * n2
        for s in range(ns):
            self.backend.stencil_apply(
                c.diag[s], c.west[s], c.east[s], c.south[s], c.north[s],
                xpad[s], out=out[s],
            )
        # 9 flops/point/species for the 5-point stencil; traffic: five
        # coefficient streams + field + result.
        if self.suite.counters is not None:
            self.suite._account(ns * npts, 9, 48, 8)
            self.suite.counters.matvecs += 1

        if c.coupling is not None:
            interior = xpad[:, 1:-1, 1:-1]
            bk = self.backend
            for s in range(ns):
                for sp in range(ns):
                    if s == sp:
                        continue
                    coup = c.coupling[s, sp]
                    if not coup.any():
                        continue
                    # out[s] += coupling[s,sp] * x[sp]  (pointwise)
                    tmp = bk.mul(coup, interior[sp])
                    bk.add(out[s], tmp, out=out[s])
                    if self.suite.counters is not None:
                        self.suite._account(npts, 2, 24, 8)
        return out
