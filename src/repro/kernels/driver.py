"""The single-processor kernel driver program (paper Sec. II-F).

Because SVE optimization did not produce the expected speedup in the
full V2D code, the authors wrote "a simple single-processor driver
program that exercised the actual V2D routines that are utilized in the
BiCGSTAB solver without the added complications of the other V2D code",
using a 1000-equation linear system and 100,000 repetitions, timed both
with the hardware clock and PAPI software timers (differences
insignificant).

:class:`KernelDriver` is that program: it builds a five-banded system
of ``n`` equations, runs each of MATVEC / DPROD / DAXPY / DSCAL /
DDAXPY ``reps`` times under a chosen backend, and reports per-routine
CPU seconds plus PAPI-style event counts.  Comparing a ``scalar`` run
against a ``vector`` run reproduces the structure of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.base import Backend
from repro.kernels.suite import KernelSuite
from repro.monitor.counters import Counters
from repro.monitor.timers import CpuTimer, WallTimer

#: Table II routine order.
ROUTINES: tuple[str, ...] = ("MATVEC", "DPROD", "DAXPY", "DSCAL", "DDAXPY")

#: The measured SVE/No-SVE CPU-time ratios of paper Table II.
PAPER_TABLE2_RATIOS: dict[str, float] = {
    "MATVEC": 0.16,
    "DPROD": 0.18,
    "DAXPY": 0.26,
    "DSCAL": 0.31,
    "DDAXPY": 0.22,
}


@dataclass
class DriverResult:
    """Per-routine timings from one driver run."""

    backend: str
    n: int
    reps: int
    cpu_seconds: dict[str, float]
    wall_seconds: dict[str, float]
    counters: dict[str, dict[str, int]]

    def ratio_to(self, baseline: "DriverResult") -> dict[str, float]:
        """CPU-time ratios self/baseline per routine (Table II's SVE/No-SVE)."""
        out = {}
        for r in ROUTINES:
            base = baseline.cpu_seconds[r]
            out[r] = self.cpu_seconds[r] / base if base > 0 else float("nan")
        return out

    def table(self) -> str:
        lines = [
            f"Kernel driver ({self.backend} backend, n={self.n}, reps={self.reps})",
            f"{'Routine':<8} {'cpu(s)':>10} {'wall(s)':>10} {'flops':>14}",
        ]
        for r in ROUTINES:
            lines.append(
                f"{r:<8} {self.cpu_seconds[r]:>10.4f} {self.wall_seconds[r]:>10.4f} "
                f"{self.counters[r]['flops']:>14,d}"
            )
        return "\n".join(lines)


@dataclass
class KernelDriver:
    """Exercise the five V2D solver routines in isolation.

    Parameters
    ----------
    n:
        Number of equations (paper: 1000).
    reps:
        Repetitions per routine (paper: 100,000; scale down for tests).
    band_offset:
        Distance of the outlying bands from the main diagonal (the
        "x1 parameter" of the paper's matrix description).
    seed:
        RNG seed for the synthetic system data.
    """

    n: int = 1000
    reps: int = 1000
    band_offset: int = 25
    seed: int = 20220901
    _offsets: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.band_offset < self.n:
            raise ValueError("band_offset must be in (0, n)")
        self._offsets = (0, -1, 1, -self.band_offset, self.band_offset)

    def _setup(self, rng: np.random.Generator) -> dict[str, np.ndarray]:
        n = self.n
        bands = [rng.uniform(-1.0, 1.0, size=n) for _ in self._offsets]
        bands[0] = np.abs(bands[0]) + 4.0  # diagonally dominant, like the FD operator
        return {
            "bands": bands,
            "x": rng.standard_normal(n),
            "y": rng.standard_normal(n),
            "z": rng.standard_normal(n),
        }

    def run(self, backend: str | Backend) -> DriverResult:
        """Run all five routines ``reps`` times each under ``backend``."""
        rng = np.random.default_rng(self.seed)
        data = self._setup(rng)
        counters = Counters()
        suite = KernelSuite(backend, counters=counters)
        out = np.empty(self.n)

        cpu: dict[str, float] = {}
        wall: dict[str, float] = {}
        events: dict[str, dict[str, int]] = {}
        x, y, z, bands = data["x"], data["y"], data["z"], data["bands"]
        offsets = list(self._offsets)

        def timed(name: str, fn) -> None:
            # One untimed warm-up before the counter snapshot and the
            # clocks: first-call costs (the jit tier's numba
            # compilation, cold caches) must never land in a timed
            # window, and snapshotting *after* the warm-up keeps the
            # recorded event counts exactly reps x per-call counts.
            fn()
            before = counters.snapshot()
            ct, wt = CpuTimer(), WallTimer()
            ct.start()
            wt.start()
            for _ in range(self.reps):
                fn()
            cpu[name] = ct.stop()
            wall[name] = wt.stop()
            after = counters.snapshot()
            events[name] = {k: after[k] - before[k] for k in after}

        timed("MATVEC", lambda: suite.matvec_banded(offsets, bands, x, out=out))
        timed("DPROD", lambda: suite.dprod(x, y))
        timed("DAXPY", lambda: suite.daxpy(1.1, x, y, out=out))
        timed("DSCAL", lambda: suite.dscal(y, 0.9, x, out=out))
        timed("DDAXPY", lambda: suite.ddaxpy(1.1, x, -0.7, y, z, out=out))

        name = suite.backend.name
        return DriverResult(
            backend=name,
            n=self.n,
            reps=self.reps,
            cpu_seconds=cpu,
            wall_seconds=wall,
            counters=events,
        )

    def compare(self) -> tuple[DriverResult, DriverResult, dict[str, float]]:
        """Run scalar (no-SVE) and vector (SVE) and return both + ratios.

        The returned ratios dict plays the role of Table II's final
        column (SVE/No-SVE); in this Python proxy the vectorized column
        typically lands *below* the paper's 0.16-0.31 because NumPy
        removes interpreter overhead as well as scalar arithmetic.
        """
        no_sve = self.run("scalar")
        sve = self.run("vector")
        return no_sve, sve, sve.ratio_to(no_sve)


@dataclass
class SpmdDriverResult:
    """A decomposed driver run: per-rank timings plus reduced totals.

    ``cpu_seconds`` holds the per-routine maximum over ranks and
    ``total_flops`` the sum -- both carried by a single batched
    all-reduce round, so the result doubles as an end-to-end exercise
    of cross-process collectives.
    """

    ranks: int
    backend: str
    transport: str
    wall_seconds: float
    cpu_seconds: dict[str, float]
    total_flops: int
    per_rank: list[DriverResult]

    def table(self) -> str:
        lines = [
            f"SPMD kernel driver ({self.backend} backend, {self.ranks} "
            f"rank(s), transport={self.transport})",
            f"  job wall time: {self.wall_seconds:.4f} s, "
            f"total flops: {self.total_flops:,d}",
            f"{'Routine':<8} {'max cpu(s)':>12}",
        ]
        for r in ROUTINES:
            lines.append(f"{r:<8} {self.cpu_seconds[r]:>12.4f}")
        return "\n".join(lines)


def run_driver_spmd(
    ranks: int,
    n: int = 1000,
    reps: int = 1000,
    backend: str = "scalar",
    transport: str | None = None,
    band_offset: int = 25,
    seed: int = 20220901,
    timeout: float | None = 120.0,
) -> SpmdDriverResult:
    """Run the Sec. II-F driver on every rank of an SPMD job.

    Each rank exercises the five routines on its own ``n``-equation
    system (seed varied per rank), then all ranks join one batched
    all-reduce combining per-routine maxima and the flop total.  Under
    the ``scalar`` backend the work is pure-Python and CPU-bound, which
    makes this the measured workload of the ``BENCH_scaling_mp`` suite:
    threads serialize on the GIL, processes use the machine's cores.
    """
    from repro.parallel.comm import ReduceOp
    from repro.parallel.links import get_transport
    from repro.parallel.runtime import run_spmd

    transport_name = get_transport(transport).name

    def rank_body(comm):
        driver = KernelDriver(
            n=n, reps=reps, band_offset=band_offset, seed=seed + comm.rank
        )
        result = driver.run(backend)
        payloads = [result.cpu_seconds[r] for r in ROUTINES] + [
            sum(ev["flops"] for ev in result.counters.values())
        ]
        ops = [ReduceOp.MAX] * len(ROUTINES) + [ReduceOp.SUM]
        return result, comm.allreduce_batch(payloads, ops=ops)

    timer = WallTimer()
    timer.start()
    out = run_spmd(ranks, rank_body, timeout=timeout, transport=transport_name)
    wall = timer.stop()
    reduced = out[0][1]
    return SpmdDriverResult(
        ranks=ranks,
        backend=backend,
        transport=transport_name,
        wall_seconds=wall,
        cpu_seconds={r: float(reduced[i]) for i, r in enumerate(ROUTINES)},
        total_flops=int(reduced[len(ROUTINES)]),
        per_rank=[r for r, _ in out],
    )


def format_table2(
    no_sve: DriverResult, sve: DriverResult, paper: dict[str, float] | None = None
) -> str:
    """Render the Table II layout from two driver runs."""
    paper = PAPER_TABLE2_RATIOS if paper is None else paper
    ratios = sve.ratio_to(no_sve)
    lines = [
        "LINEAR ALGEBRA ROUTINES TIMES (cpu seconds)",
        f"{'Routine':<8} {'No-SVE':>10} {'SVE':>10} {'SVE/No-SVE':>12} {'paper':>7}",
    ]
    for r in ROUTINES:
        lines.append(
            f"{r:<8} {no_sve.cpu_seconds[r]:>10.4f} {sve.cpu_seconds[r]:>10.4f} "
            f"{ratios[r]:>12.3f} {paper.get(r, float('nan')):>7.2f}"
        )
    return "\n".join(lines)
