"""TAU-style hierarchical region profiler.

The study used TAU and its ParaProf visualizer to "see which routines
contributed most to the total time without the need to add additional
routine calls".  We cannot avoid instrumentation in Python, but this
module keeps it to a single context manager, builds the same calling
tree TAU would, and renders ParaProf-style flat and tree profiles:
inclusive/exclusive seconds, call counts, and percent of total.

A thread-local *current node* makes the profiler safe to use from the
SPMD thread launcher in :mod:`repro.parallel`: each rank thread builds
its own independent tree under a shared :class:`Profiler` when given a
distinct ``rank`` id.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class ProfileNode:
    """One region in the calling tree."""

    name: str
    parent: "ProfileNode | None" = None
    children: dict[str, "ProfileNode"] = field(default_factory=dict)
    calls: int = 0
    inclusive: float = 0.0

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name=name, parent=self)
            self.children[name] = node
        return node

    @property
    def exclusive(self) -> float:
        """Inclusive time minus time attributed to children."""
        return self.inclusive - sum(c.inclusive for c in self.children.values())

    def walk(self) -> Iterator["ProfileNode"]:
        yield self
        for child in self.children.values():
            yield from child.walk()

    def depth(self) -> int:
        d, node = 0, self
        while node.parent is not None:
            d += 1
            node = node.parent
        return d


class Profiler:
    """Collects per-rank region trees and renders TAU-like reports."""

    def __init__(self) -> None:
        self._roots: dict[int, ProfileNode] = {}
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: thread-id -> currently open region (for the MAP-style
        #: sampler); plain dict writes are atomic under the GIL.
        self._active: dict[int, ProfileNode | None] = {}

    def _root(self, rank: int) -> ProfileNode:
        with self._lock:
            root = self._roots.get(rank)
            if root is None:
                root = ProfileNode(name=f".TAU application (rank {rank})")
                self._roots[rank] = root
            return root

    @contextmanager
    def region(self, name: str, rank: int = 0) -> Iterator[ProfileNode]:
        """Time a named region nested under the current one."""
        parent = getattr(self._tls, "current", None)
        if parent is None:
            parent = self._root(rank)
        node = parent.child(name)
        self._tls.current = node
        tid = threading.get_ident()
        self._active[tid] = node
        t0 = time.perf_counter()
        try:
            yield node
        finally:
            dt = time.perf_counter() - t0
            node.inclusive += dt
            node.calls += 1
            self._tls.current = parent
            self._active[tid] = parent if parent.parent is not None else None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def active_regions(self) -> list[ProfileNode]:
        """Currently open regions, one per active thread (sampler hook)."""
        return [node for node in list(self._active.values()) if node is not None]

    def ranks(self) -> list[int]:
        with self._lock:
            return sorted(self._roots)

    def total_time(self, rank: int = 0) -> float:
        root = self._roots.get(rank)
        if root is None:
            return 0.0
        return sum(c.inclusive for c in root.children.values())

    def flat(self, rank: int = 0) -> dict[str, tuple[float, float, int]]:
        """Aggregate regions by name: ``{name: (incl, excl, calls)}``.

        Regions appearing at several tree positions (e.g. ``matvec``
        called from three BiCGSTAB call sites) are merged, matching
        TAU's flat profile semantics.
        """
        root = self._roots.get(rank)
        out: dict[str, tuple[float, float, int]] = {}
        if root is None:
            return out
        for node in root.walk():
            if node is root:
                continue
            incl, excl, calls = out.get(node.name, (0.0, 0.0, 0))
            out[node.name] = (incl + node.inclusive, excl + node.exclusive, calls + node.calls)
        return out

    def exclusive_fraction(self, name: str, rank: int = 0) -> float:
        """Fraction of total rank time spent exclusively in ``name``."""
        total = self.total_time(rank)
        if total == 0.0:
            return 0.0
        entry = self.flat(rank).get(name)
        return (entry[1] / total) if entry else 0.0

    def inclusive_fraction(self, name: str, rank: int = 0) -> float:
        total = self.total_time(rank)
        if total == 0.0:
            return 0.0
        entry = self.flat(rank).get(name)
        return (entry[0] / total) if entry else 0.0

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def flat_profile(self, rank: int = 0) -> str:
        """ParaProf-style flat profile sorted by exclusive time."""
        total = self.total_time(rank)
        rows = sorted(self.flat(rank).items(), key=lambda kv: -kv[1][1])
        lines = [
            f"FLAT PROFILE (rank {rank}, total {total:.4f} s)",
            f"{'%excl':>6} {'excl(s)':>10} {'incl(s)':>10} {'calls':>8}  name",
        ]
        for name, (incl, excl, calls) in rows:
            pct = 100.0 * excl / total if total else 0.0
            lines.append(f"{pct:>6.1f} {excl:>10.4f} {incl:>10.4f} {calls:>8d}  {name}")
        return "\n".join(lines)

    def tree_profile(self, rank: int = 0) -> str:
        """Indented calling-tree report (inclusive times)."""
        root = self._roots.get(rank)
        if root is None:
            return f"(no profile data for rank {rank})"
        total = self.total_time(rank)
        lines = [f"CALL TREE (rank {rank}, total {total:.4f} s)"]
        for node in root.walk():
            if node is root:
                continue
            indent = "  " * node.depth()
            pct = 100.0 * node.inclusive / total if total else 0.0
            lines.append(
                f"{indent}{node.name}: {node.inclusive:.4f}s incl "
                f"({pct:.1f}%), {node.calls} calls"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
            self._active.clear()
        self._tls = threading.local()


_GLOBAL_PROFILER = Profiler()


def get_profiler() -> Profiler:
    """The process-wide default profiler."""
    return _GLOBAL_PROFILER


@contextmanager
def profile_region(name: str, rank: int = 0) -> Iterator[ProfileNode]:
    """Shortcut: time ``name`` on the default profiler."""
    with _GLOBAL_PROFILER.region(name, rank=rank) as node:
        yield node
