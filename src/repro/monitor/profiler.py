"""TAU-style hierarchical region profiler.

The study used TAU and its ParaProf visualizer to "see which routines
contributed most to the total time without the need to add additional
routine calls".  We cannot avoid instrumentation in Python, but this
module keeps it to a single context manager, builds the same calling
tree TAU would, and renders ParaProf-style flat and tree profiles:
inclusive/exclusive seconds, call counts, and percent of total.

A thread-local *current node* makes the profiler safe to use from the
SPMD thread launcher in :mod:`repro.parallel`: each rank thread builds
its own independent tree under a shared :class:`Profiler` when given a
distinct ``rank`` id.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class ProfileNode:
    """One region in the calling tree."""

    name: str
    parent: "ProfileNode | None" = None
    children: dict[str, "ProfileNode"] = field(default_factory=dict)
    calls: int = 0
    inclusive: float = 0.0

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name=name, parent=self)
            self.children[name] = node
        return node

    @property
    def exclusive(self) -> float:
        """Inclusive time minus time attributed to children."""
        return self.inclusive - sum(c.inclusive for c in self.children.values())

    def walk(self) -> Iterator["ProfileNode"]:
        yield self
        for child in self.children.values():
            yield from child.walk()

    def depth(self) -> int:
        d, node = 0, self
        while node.parent is not None:
            d += 1
            node = node.parent
        return d


class Profiler:
    """Collects per-rank region trees and renders TAU-like reports."""

    def __init__(self) -> None:
        self._roots: dict[int, ProfileNode] = {}
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: thread-id -> currently open region (for the MAP-style
        #: sampler); plain dict writes are atomic under the GIL.
        #: Entries are removed when a thread closes its outermost
        #: region, and :meth:`active_regions` prunes dead threads.
        self._active: dict[int, ProfileNode | None] = {}
        #: Bumped by :meth:`reset`; a region that closes after a reset
        #: discards its timing instead of resurrecting a stale node.
        self._epoch = 0

    # Profilers travel inside RunReports across the multiprocessing
    # transport's result pipe.  Thread-bound machinery (TLS, lock, the
    # open-region map keyed by thread id) is meaningless in another
    # process; the receiver gets a quiescent profiler carrying only the
    # finished region trees.
    def __getstate__(self) -> dict:
        with self._lock:
            state = self.__dict__.copy()
        for key in ("_tls", "_lock"):
            state.pop(key, None)
        state["_active"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._tls = threading.local()
        self._lock = threading.Lock()

    def _root(self, rank: int) -> ProfileNode:
        with self._lock:
            root = self._roots.get(rank)
            if root is None:
                root = ProfileNode(name=f".TAU application (rank {rank})")
                self._roots[rank] = root
            return root

    @contextmanager
    def region(self, name: str, rank: int = 0) -> Iterator[ProfileNode]:
        """Time a named region nested under the current one.

        Nesting is tracked *per rank*: opening a region with a ``rank``
        different from the enclosing region's attributes it to the
        requested rank's own tree (under that rank's innermost open
        region, or its root) instead of silently hanging it off the
        enclosing rank's tree.
        """
        tls = self._tls
        epoch = self._epoch
        current: dict[int, ProfileNode] | None = getattr(tls, "current", None)
        if current is None:
            current = tls.current = {}
            tls.stack = []
        parent = current.get(rank)
        if parent is None:
            parent = self._root(rank)
        node = parent.child(name)
        current[rank] = node
        tls.stack.append(node)
        tid = threading.get_ident()
        self._active[tid] = node
        t0 = time.perf_counter()
        try:
            yield node
        finally:
            dt = time.perf_counter() - t0
            stale = epoch != self._epoch
            if not stale:
                node.inclusive += dt
                node.calls += 1
            stack = getattr(tls, "stack", None)
            if stack:
                stack.pop()
            current[rank] = parent
            if stale or not stack:
                # Outermost region closed (or the tree was reset while
                # open): drop the thread's entry instead of leaking it.
                self._active.pop(tid, None)
            else:
                self._active[tid] = stack[-1]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def active_regions(self) -> list[ProfileNode]:
        """Currently open regions, one per active thread (sampler hook).

        Entries of threads that have exited are pruned by liveness, so
        a dead SPMD rank thread can never be reported as "in" a region
        it will never leave.
        """
        live = {t.ident for t in threading.enumerate()}
        for tid in list(self._active):
            if tid not in live:
                self._active.pop(tid, None)
        return [node for node in list(self._active.values()) if node is not None]

    def ranks(self) -> list[int]:
        with self._lock:
            return sorted(self._roots)

    def total_time(self, rank: int = 0) -> float:
        root = self._roots.get(rank)
        if root is None:
            return 0.0
        return sum(c.inclusive for c in root.children.values())

    def flat(self, rank: int = 0) -> dict[str, tuple[float, float, int]]:
        """Aggregate regions by name: ``{name: (incl, excl, calls)}``.

        Regions appearing at several tree positions (e.g. ``matvec``
        called from three BiCGSTAB call sites) are merged, matching
        TAU's flat profile semantics.  Inclusive time counts only the
        *outermost* occurrence of a name along each path: a recursive
        (self-nested) region contributes its inclusive seconds once, not
        once per depth, so ``exclusive <= inclusive <= total_time``
        always holds.  Exclusive time and call counts sum over every
        occurrence (exclusive intervals are disjoint by construction).
        """
        root = self._roots.get(rank)
        out: dict[str, tuple[float, float, int]] = {}
        if root is None:
            return out

        def visit(node: ProfileNode, on_path: set[str]) -> None:
            for child in node.children.values():
                incl, excl, calls = out.get(child.name, (0.0, 0.0, 0))
                outermost = child.name not in on_path
                out[child.name] = (
                    incl + (child.inclusive if outermost else 0.0),
                    excl + child.exclusive,
                    calls + child.calls,
                )
                if outermost:
                    on_path.add(child.name)
                visit(child, on_path)
                if outermost:
                    on_path.discard(child.name)

        visit(root, set())
        return out

    def exclusive_fraction(self, name: str, rank: int = 0) -> float:
        """Fraction of total rank time spent exclusively in ``name``."""
        total = self.total_time(rank)
        if total == 0.0:
            return 0.0
        entry = self.flat(rank).get(name)
        return (entry[1] / total) if entry else 0.0

    def inclusive_fraction(self, name: str, rank: int = 0) -> float:
        total = self.total_time(rank)
        if total == 0.0:
            return 0.0
        entry = self.flat(rank).get(name)
        return (entry[0] / total) if entry else 0.0

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def flat_profile(self, rank: int = 0) -> str:
        """ParaProf-style flat profile sorted by exclusive time."""
        total = self.total_time(rank)
        rows = sorted(self.flat(rank).items(), key=lambda kv: -kv[1][1])
        lines = [
            f"FLAT PROFILE (rank {rank}, total {total:.4f} s)",
            f"{'%excl':>6} {'excl(s)':>10} {'incl(s)':>10} {'calls':>8}  name",
        ]
        for name, (incl, excl, calls) in rows:
            pct = 100.0 * excl / total if total else 0.0
            lines.append(f"{pct:>6.1f} {excl:>10.4f} {incl:>10.4f} {calls:>8d}  {name}")
        return "\n".join(lines)

    def tree_profile(self, rank: int = 0) -> str:
        """Indented calling-tree report (inclusive times)."""
        root = self._roots.get(rank)
        if root is None:
            return f"(no profile data for rank {rank})"
        total = self.total_time(rank)
        lines = [f"CALL TREE (rank {rank}, total {total:.4f} s)"]
        for node in root.walk():
            if node is root:
                continue
            indent = "  " * node.depth()
            pct = 100.0 * node.inclusive / total if total else 0.0
            lines.append(
                f"{indent}{node.name}: {node.inclusive:.4f}s incl "
                f"({pct:.1f}%), {node.calls} calls"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every tree; regions still open discard their timing.

        A region entered before the reset and exited after it belongs
        to the discarded tree: its exit is a no-op (epoch guard) rather
        than a write into a node the reset already orphaned.
        """
        with self._lock:
            self._epoch += 1
            self._roots.clear()
            self._active.clear()
        self._tls = threading.local()


_GLOBAL_PROFILER = Profiler()


def get_profiler() -> Profiler:
    """The process-wide default profiler."""
    return _GLOBAL_PROFILER


@contextmanager
def profile_region(name: str, rank: int = 0) -> Iterator[ProfileNode]:
    """Shortcut: time ``name`` on the default profiler."""
    with _GLOBAL_PROFILER.region(name, rank=rank) as node:
        yield node
