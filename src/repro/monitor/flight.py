"""Per-rank flight recorders: bounded in-memory event rings.

The failure modes that motivated the resilience layer -- a rank dying
mid-collective, a silent child death under the ``mp`` transport, a
solver escalating through its ladder -- all share one frustration:
by the time the parent sees :class:`WorldAbortedError`, whatever the
failing rank was doing is gone.  A flight recorder fixes that the way
aircraft ones do: each rank keeps a small ring buffer of its most
recent spans, events, and log records, cheap enough to leave running,
and the ring is dumped to a post-mortem JSONL bundle when something
goes wrong (world abort, rank heartbeat timeout, resilience
escalation).

Recording is gated on :func:`repro.monitor.telemetry.enabled`: with
telemetry off, :func:`record` is one gate check and the solver path is
bitwise-identical to pre-telemetry behaviour.  Timestamps are
microseconds since the shared trace epoch, so bundle entries line up
with trace spans and structured log records.

Bundle layout (one directory per incident)::

    <flight-dir>/<reason>-<pid>/
        manifest.json      # reason, failing rank, cause, heartbeat ages
        rank0.jsonl        # newest-last ring contents, one event/line
        rank1.jsonl

Under the ``mp`` transport each child process dumps its own
``rank<r>.jsonl`` into a bundle directory the parent created before
forking; the parent writes the manifest when it collects the failure.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.monitor import telemetry
from repro.monitor.trace import Tracer

__all__ = [
    "FLIGHT_SCHEMA",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "recorder_for",
    "record",
    "active_ranks",
    "reset",
    "flight_dir",
    "bundle_path",
    "ensure_bundle_dir",
    "dump_rank",
    "write_manifest",
    "dump_bundle",
    "read_bundle",
]

#: ``manifest.json`` schema version.
FLIGHT_SCHEMA = 1

#: Ring capacity per rank; at ~200 bytes/event a full ring is ~100 KiB.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring of recent events for one rank.

    ``record`` is append-only onto a :class:`collections.deque` with
    ``maxlen`` -- O(1), no allocation beyond the event dict, oldest
    entries silently dropped.  Thread-safe by way of the GIL-atomic
    deque append (multiple hydro/comm threads of one rank may share a
    recorder).
    """

    __slots__ = ("rank", "capacity", "_ring", "dropped")

    def __init__(self, rank: int, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.rank = int(rank)
        self.capacity = int(capacity)
        self._ring: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self.dropped = 0

    def record(self, kind: str, name: str, **fields: Any) -> None:
        """Append one event (``kind`` ~ span/instant/log/error/...)."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        event = {"us": round(Tracer.now_us(), 3), "kind": kind, "name": name}
        if fields:
            event.update(fields)
        self._ring.append(event)

    def events(self) -> list[dict[str, Any]]:
        """Oldest-first snapshot of the ring."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def dump(self, path: str | Path) -> Path:
        """Write the ring as JSONL (atomic replace); returns the path."""
        from repro.io.atomic import atomic_write_bytes

        body = "".join(
            json.dumps(ev, default=repr) + "\n" for ev in self.events()
        )
        return atomic_write_bytes(path, body.encode())


# ----------------------------------------------------------------------
# Process-wide recorder registry
# ----------------------------------------------------------------------
_RECORDERS: dict[int, FlightRecorder] = {}
_REG_LOCK = threading.Lock()
_BUNDLE_SEQ = 0


def recorder_for(rank: int, capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    """The process-wide recorder for ``rank`` (created on first use)."""
    rec = _RECORDERS.get(rank)
    if rec is None:
        with _REG_LOCK:
            rec = _RECORDERS.setdefault(rank, FlightRecorder(rank, capacity))
    return rec


def record(rank: int, kind: str, name: str, **fields: Any) -> None:
    """Record onto ``rank``'s ring iff telemetry is armed.

    This is the call instrumented sites use: disabled telemetry makes
    it a single gate check and return.
    """
    if not telemetry.enabled():
        return
    recorder_for(rank).record(kind, name, **fields)


def active_ranks() -> list[int]:
    return sorted(_RECORDERS)


def reset() -> None:
    """Drop every recorder (test isolation)."""
    with _REG_LOCK:
        _RECORDERS.clear()


# ----------------------------------------------------------------------
# Bundles
# ----------------------------------------------------------------------
def flight_dir() -> Path:
    """Bundle root: ``$REPRO_FLIGHT_DIR`` or ``./.repro-flight``."""
    return Path(os.environ.get("REPRO_FLIGHT_DIR", ".repro-flight"))


def bundle_path(reason: str, directory: str | Path | None = None) -> Path:
    """Reserve a unique incident path under the root *without* creating it.

    Named ``<reason>-<pid>`` with a sequence suffix when the same
    process reserves more than once, so repeated incidents never
    clobber each other.  The ``mp`` transport reserves a path *before*
    forking so parent and children agree on where rank files land, but
    only an actual incident creates the directory.
    """
    global _BUNDLE_SEQ
    root = Path(directory) if directory is not None else flight_dir()
    with _REG_LOCK:
        _BUNDLE_SEQ += 1
        seq = _BUNDLE_SEQ
    name = f"{reason}-{os.getpid()}"
    if seq > 1:
        name = f"{name}-{seq}"
    return root / name


def ensure_bundle_dir(reason: str, directory: str | Path | None = None) -> Path:
    """Create (and return) a fresh incident directory under the root."""
    bundle = bundle_path(reason, directory)
    bundle.mkdir(parents=True, exist_ok=True)
    return bundle


def dump_rank(bundle: str | Path, rank: int) -> Path | None:
    """Write ``rank``'s ring into the bundle; ``None`` if it is empty."""
    rec = _RECORDERS.get(rank)
    if rec is None or len(rec) == 0:
        return None
    return rec.dump(Path(bundle) / f"rank{rank}.jsonl")


def write_manifest(
    bundle: str | Path,
    reason: str,
    failing_rank: int | None = None,
    cause: str | None = None,
    heartbeat_ages: Mapping[int, float] | None = None,
    extra: Mapping[str, Any] | None = None,
) -> Path:
    """Write ``manifest.json`` naming the incident and failing rank."""
    from repro.io.atomic import atomic_write_bytes

    rank_files = sorted(
        p.name for p in Path(bundle).glob("rank*.jsonl")
    )
    manifest: dict[str, Any] = {
        "schema": FLIGHT_SCHEMA,
        "reason": reason,
        "failing_rank": failing_rank,
        "cause": cause,
        "created_unix": round(time.time(), 3),
        "pid": os.getpid(),
        "rank_files": rank_files,
    }
    if heartbeat_ages:
        manifest["heartbeat_age_seconds"] = {
            str(r): round(float(age), 3) for r, age in heartbeat_ages.items()
        }
    if extra:
        manifest.update(dict(extra))
    body = json.dumps(manifest, indent=1, default=repr) + "\n"
    return atomic_write_bytes(Path(bundle) / "manifest.json", body.encode())


def dump_bundle(
    reason: str,
    failing_rank: int | None = None,
    cause: str | None = None,
    heartbeat_ages: Mapping[int, float] | None = None,
    directory: str | Path | None = None,
    ranks: Iterable[int] | None = None,
) -> Path:
    """Dump every (or the given) ranks' rings plus a manifest.

    The one-call path for in-process incidents (threads transport
    aborts, resilience escalation, heartbeat watchdog).  Returns the
    bundle directory.
    """
    bundle = ensure_bundle_dir(reason, directory)
    for rank in sorted(ranks) if ranks is not None else active_ranks():
        dump_rank(bundle, rank)
    write_manifest(
        bundle,
        reason,
        failing_rank=failing_rank,
        cause=cause,
        heartbeat_ages=heartbeat_ages,
    )
    return bundle


def read_bundle(bundle: str | Path) -> dict[str, Any]:
    """Load a bundle back: manifest plus per-rank event lists."""
    bundle = Path(bundle)
    with open(bundle / "manifest.json", encoding="utf-8") as fh:
        manifest = json.load(fh)
    ranks: dict[int, list[dict[str, Any]]] = {}
    for path in sorted(bundle.glob("rank*.jsonl")):
        rank = int(path.stem[len("rank"):])
        with open(path, encoding="utf-8") as fh:
            ranks[rank] = [json.loads(line) for line in fh if line.strip()]
    return {"manifest": manifest, "ranks": ranks}
