"""Structured logging on the stdlib ``logging`` stack.

Until this module existed nothing under ``src/`` imported ``logging``
-- diagnostics went to ``print`` in the CLI layer and silence
everywhere else.  This is the front door: every ``repro`` verb takes
``--log-level``/``--log-json``, and library code logs through
:func:`get_logger` without caring whether a handler is installed
(unconfigured, the root ``repro`` logger holds a ``NullHandler`` so
output and behaviour are exactly as before).

Records carry two kinds of shared context:

* the **trace epoch** -- every record's ``us`` field is microseconds
  since :data:`repro.monitor.trace._EPOCH_NS`, the same clock the
  tracer and flight recorder stamp, so logs line up with trace spans
  and flight-recorder entries on one timeline;
* **context vars** -- ``run``/``job``/``rank`` bound via
  :func:`bind_context`, carried by :mod:`contextvars` so they follow
  async tasks in the serve layer and thread-per-rank SPMD workers
  without threading arguments through every call.

JSON mode emits one JSON object per line (JSONL), the same framing as
the serve wire protocol and the flight-recorder bundles.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Mapping, TextIO

__all__ = [
    "ROOT_LOGGER",
    "LEVELS",
    "get_logger",
    "configure_logging",
    "add_logging_flags",
    "configure_from_args",
    "bind_context",
    "current_context",
    "JsonlFormatter",
]

#: Name of the package root logger every :func:`get_logger` hangs off.
ROOT_LOGGER = "repro"

#: CLI-exposed level names, in increasing verbosity order.
LEVELS = ("critical", "error", "warning", "info", "debug")

_RUN: ContextVar[str | None] = ContextVar("repro_log_run", default=None)
_JOB: ContextVar[str | None] = ContextVar("repro_log_job", default=None)
_RANK: ContextVar[int | None] = ContextVar("repro_log_rank", default=None)

# Handler installed by configure_logging, so reconfiguring replaces it
# instead of stacking duplicates.
_INSTALLED: logging.Handler | None = None

# Library code must be silent unless the application configures
# logging -- stdlib best practice, and what keeps CLI output stable.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("serve")`` and ``get_logger("repro.serve")`` both
    return the ``repro.serve`` logger.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


# ----------------------------------------------------------------------
# Context binding
# ----------------------------------------------------------------------
def current_context() -> dict[str, Any]:
    """The bound run/job/rank fields (unset fields omitted)."""
    ctx: dict[str, Any] = {}
    run, job, rank = _RUN.get(), _JOB.get(), _RANK.get()
    if run is not None:
        ctx["run"] = run
    if job is not None:
        ctx["job"] = job
    if rank is not None:
        ctx["rank"] = rank
    return ctx


@contextmanager
def bind_context(
    run: str | None = None,
    job: str | None = None,
    rank: int | None = None,
) -> Iterator[None]:
    """Bind run/job/rank onto every record emitted inside the block.

    Only the arguments given are (re)bound; the rest keep whatever the
    enclosing scope set.  Context travels with the current thread or
    asyncio task, so concurrent serve jobs and SPMD rank threads each
    see their own binding.
    """
    tokens = []
    if run is not None:
        tokens.append((_RUN, _RUN.set(str(run))))
    if job is not None:
        tokens.append((_JOB, _JOB.set(str(job))))
    if rank is not None:
        tokens.append((_RANK, _RANK.set(int(rank))))
    try:
        yield
    finally:
        for var, token in reversed(tokens):
            var.reset(token)


# ----------------------------------------------------------------------
# Formatters
# ----------------------------------------------------------------------
def _epoch_us() -> float:
    from repro.monitor.trace import Tracer

    return Tracer.now_us()


class JsonlFormatter(logging.Formatter):
    """One JSON object per record: the structured half of ``--log-json``.

    Fields: ``ts`` (unix seconds), ``us`` (microseconds since the
    shared trace epoch), ``level``, ``logger``, ``msg``, the bound
    context vars, any ``fields`` mapping passed via ``extra``, and
    ``exc`` when exception info rides along.
    """

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, Any] = {
            "ts": round(record.created, 6),
            "us": round(_epoch_us(), 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        entry.update(current_context())
        fields = getattr(record, "fields", None)
        if isinstance(fields, Mapping):
            for key, value in fields.items():
                entry.setdefault(str(key), value)
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, default=repr)


class TextFormatter(logging.Formatter):
    """Human-oriented single-line format with the same context fields."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        ctx = current_context()
        ctx_txt = "".join(f" {k}={v}" for k, v in ctx.items())
        fields = getattr(record, "fields", None)
        if isinstance(fields, Mapping):
            ctx_txt += "".join(f" {k}={v}" for k, v in fields.items())
        base = (
            f"{stamp} {record.levelname.lower():<8s} "
            f"{record.name}:{ctx_txt} {record.getMessage()}"
        )
        if record.exc_info:
            base += "\n" + self.formatException(record.exc_info)
        return base


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def configure_logging(
    level: str | int = "warning",
    json_mode: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Install (or replace) the handler on the ``repro`` root logger.

    Idempotent: calling again swaps the previously installed handler
    rather than stacking a second one.  Logs go to ``stream`` (default
    ``sys.stderr`` -- stdout stays reserved for verb output such as
    JSON stats and OpenMetrics text).
    """
    global _INSTALLED
    if isinstance(level, str):
        if level.lower() not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; pick from {LEVELS}")
        level = getattr(logging, level.upper())
    root = logging.getLogger(ROOT_LOGGER)
    if _INSTALLED is not None:
        root.removeHandler(_INSTALLED)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonlFormatter() if json_mode else TextFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    _INSTALLED = handler
    return root


def add_logging_flags(parser: Any) -> None:
    """Attach ``--log-level``/``--log-json`` to an argparse parser."""
    group = parser.add_argument_group("logging")
    group.add_argument(
        "--log-level",
        choices=LEVELS,
        default=None,
        help="enable structured logging at this level (default: off)",
    )
    group.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSONL instead of human-readable text",
    )


def configure_from_args(args: Any) -> None:
    """Apply ``add_logging_flags`` results; no-op when flags are absent."""
    level = getattr(args, "log_level", None)
    json_mode = bool(getattr(args, "log_json", False))
    if level is None and not json_mode:
        return
    configure_logging(level or "info", json_mode=json_mode)
