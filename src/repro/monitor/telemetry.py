"""Live telemetry: histograms, OpenMetrics exposition, and sampling.

The tracer (:mod:`repro.monitor.trace`) and the perf ledger answer
questions *after* the run.  This module is the in-flight half of the
observability story, the role APEX plays for HPX on Fugaku and the
FLASH benchmarking harness plays for production astrophysics runs:
continuously updated distributions (serve latency, queue wait, solver
iterations, halo wait) and a text exposition format any scraper can
read while the process is alive.

Three pieces live here:

* :class:`Histogram` -- fixed-bucket distribution sketch with quantile
  estimates, the value type behind :meth:`MetricsRegistry.observe`.
* :func:`render_openmetrics` / :func:`parse_openmetrics` -- the
  OpenMetrics text format (the Prometheus exposition format with the
  mandatory ``# EOF`` terminator), produced by the serve ``metrics``
  wire op and consumed by ``repro top`` and the CI smoke job.
* :class:`Telemetry` -- a background sampler that periodically writes
  the registry as an OpenMetrics file, so non-serve runs (a plain
  ``repro run``) are scrapeable from the filesystem.

Design rule, inherited from the tracing and resilience layers: **zero
cost when disabled**.  The module-level :func:`enabled` gate guards
every instrumented site in the solver/parallel layers; with telemetry
off those sites are a single attribute load + truth test, and runs are
bitwise-identical to pre-telemetry behaviour (asserted by the test
suite).  Service-layer metrics (the serve engine's counters) are always
on -- they observe the service, never the physics.
"""

from __future__ import annotations

import math
import os
import re
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "ITERATION_BUCKETS",
    "Histogram",
    "Telemetry",
    "enabled",
    "set_enabled",
    "enabled_scope",
    "render_openmetrics",
    "parse_openmetrics",
    "publish_heartbeats",
]

#: Seconds-scale buckets for service latencies (submit→done, queue
#: wait, halo wait).  Roughly log-spaced from 1 ms to 1 min.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Count-scale buckets for per-step solver iterations.
ITERATION_BUCKETS: tuple[float, ...] = (
    1, 2, 3, 5, 8, 12, 20, 35, 60, 100, 200, 500, 1000,
)

#: Default when ``observe()`` is called without explicit buckets.
DEFAULT_BUCKETS = LATENCY_BUCKETS


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimates.

    Prometheus-style: ``bounds`` are the *inclusive upper* edges of the
    finite buckets, with an implicit ``+Inf`` bucket at the end, so any
    real value lands somewhere.  ``observe`` is O(log n buckets) via
    bisection; memory is a flat int list regardless of sample count.

    Not internally locked: callers that share a histogram across
    threads go through :class:`~repro.monitor.trace.MetricsRegistry`,
    whose lock serializes access.  Keeping the instance lock-free makes
    it trivially picklable across the ``mp`` transport's forks.
    """

    __slots__ = ("bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        cleaned = sorted(float(b) for b in bounds)
        if not cleaned:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b != b or b == math.inf for b in cleaned):
            raise ValueError("bucket bounds must be finite numbers")
        if len(set(cleaned)) != len(cleaned):
            raise ValueError("bucket bounds must be distinct")
        self.bounds: tuple[float, ...] = tuple(cleaned)
        self.counts: list[int] = [0] * (len(cleaned) + 1)  # + the Inf bucket
        self.total: int = 0
        self.sum: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one sample."""
        v = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # leftmost bound >= v
            mid = (lo + hi) // 2
            if self.bounds[mid] < v:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.total += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def observe_many(self, values: Sequence[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def count(self) -> int:
        return self.total

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) of the samples.

        Standard Prometheus ``histogram_quantile`` estimation: find the
        bucket holding the target rank and interpolate linearly inside
        it, except the edges are tightened with the tracked ``min`` /
        ``max`` so single-bucket distributions do not smear across the
        whole bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.total == 0:
            return math.nan
        rank = q * self.total
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                cum += n
                continue
            if cum + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return upper
                frac = (rank - cum) / n
                return lower + frac * (upper - lower)
            cum += n
        return self.max

    def quantiles(self, n: int = 4) -> list[float]:
        """``n-1`` cut points, mirroring :func:`statistics.quantiles`."""
        if n < 2:
            raise ValueError("n must be at least 2")
        return [self.quantile(i / n) for i in range(1, n)]

    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bounds must agree)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def snapshot(self) -> dict[str, Any]:
        """Detached plain-data form (JSON- and pipe-friendly)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min if self.total else None,
            "max": self.max if self.total else None,
        }

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "Histogram":
        hist = cls(data["bounds"])
        counts = list(data["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("snapshot counts do not match bounds")
        hist.counts = [int(n) for n in counts]
        hist.total = int(data["total"])
        hist.sum = float(data["sum"])
        hist.min = math.inf if data.get("min") is None else float(data["min"])
        hist.max = -math.inf if data.get("max") is None else float(data["max"])
        return hist

    def __getstate__(self) -> dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram(n={self.total}, sum={self.sum:.6g}, "
            f"buckets={len(self.bounds) + 1})"
        )


# ----------------------------------------------------------------------
# Enablement gate
# ----------------------------------------------------------------------
def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() in {
        "1", "true", "on", "yes",
    }


_ENABLED: bool = _env_enabled()


def enabled() -> bool:
    """Is solver/parallel-layer telemetry instrumentation armed?

    This is the gate every physics-adjacent site checks (solver
    iteration observes, halo-wait timing, flight recording, heartbeat
    publication).  Defaults from the ``REPRO_TELEMETRY`` environment
    variable; flipped programmatically by :func:`set_enabled`.
    """
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Arm/disarm telemetry; returns the previous state."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(flag)
    return prev


@contextmanager
def enabled_scope(flag: bool = True) -> Iterator[None]:
    """Temporarily arm (or disarm) telemetry within a ``with`` block."""
    prev = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(prev)


# ----------------------------------------------------------------------
# OpenMetrics text exposition
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)


def metric_name(name: str) -> str:
    """Sanitize a registry key into a legal OpenMetrics metric name."""
    clean = _NAME_RE.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return clean


def _fmt(value: float) -> str:
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_openmetrics(
    registry: Any = None,
    *,
    values: Mapping[str, float] | None = None,
    histograms: Mapping[str, Mapping[str, Any]] | None = None,
) -> str:
    """Render a registry (or raw snapshots) as OpenMetrics text.

    ``registry`` may be a :class:`~repro.monitor.trace.MetricsRegistry`;
    alternatively pass explicit ``values``/``histograms`` snapshots
    (the transport-neutral form the ``metrics`` wire op ships).  All
    scalar registry entries are exposed as gauges -- the registry does
    not distinguish counters from gauges and ``gauge`` is always a
    valid declaration.  Output ends with the mandatory ``# EOF``.
    """
    if registry is not None:
        values = registry.snapshot()
        histograms = registry.histogram_snapshots()
    values = values or {}
    histograms = histograms or {}

    lines: list[str] = []
    for key in sorted(values):
        name = metric_name(key)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(values[key])}")
    for key in sorted(histograms):
        snap = histograms[key]
        name = metric_name(key)
        lines.append(f"# TYPE {name} histogram")
        cum = 0
        bounds = list(snap["bounds"]) + [math.inf]
        for bound, n in zip(bounds, snap["counts"]):
            cum += int(n)
            lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cum}')
        lines.append(f"{name}_count {int(snap['total'])}")
        lines.append(f"{name}_sum {_fmt(float(snap['sum']))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_value(text: str) -> float:
    low = text.strip().lower()
    if low in ("+inf", "inf"):
        return math.inf
    if low == "-inf":
        return -math.inf
    if low == "nan":
        return math.nan
    return float(text)


def parse_openmetrics(text: str) -> dict[str, Any]:
    """Parse OpenMetrics text back into families; strict on structure.

    Returns ``{name: {"type": "gauge", "value": float}}`` for scalars
    and ``{name: {"type": "histogram", "buckets": [(le, cum)], "count":
    int, "sum": float}}`` for histograms.  Raises :class:`ValueError`
    on malformed input: missing ``# EOF`` terminator, samples without a
    preceding ``# TYPE``, non-monotone cumulative bucket counts, or a
    ``_count`` that disagrees with the ``+Inf`` bucket.  This is the
    validator the CI telemetry-smoke job runs against a live scrape.
    """
    families: dict[str, Any] = {}
    types: dict[str, str] = {}
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, name, mtype = parts
            if mtype not in ("gauge", "counter", "histogram", "summary"):
                raise ValueError(f"line {lineno}: unknown type {mtype!r}")
            types[name] = mtype
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT comments are legal and ignored
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample, labels, value = m.group("name"), m.group("labels"), m.group("value")
        base = sample
        for suffix in ("_bucket", "_count", "_sum"):
            if sample.endswith(suffix) and sample[: -len(suffix)] in types:
                base = sample[: -len(suffix)]
                break
        mtype = types.get(base)
        if mtype is None:
            raise ValueError(f"line {lineno}: sample {sample!r} without # TYPE")
        if mtype == "histogram":
            fam = families.setdefault(
                base,
                {"type": "histogram", "buckets": [], "count": 0, "sum": 0.0},
            )
            if sample.endswith("_bucket"):
                le = None
                for pair in (labels or "").split(","):
                    if pair.startswith("le="):
                        le = _parse_value(pair[3:].strip('"'))
                if le is None:
                    raise ValueError(f"line {lineno}: bucket without le label")
                cum = int(float(value))
                if fam["buckets"] and cum < fam["buckets"][-1][1]:
                    raise ValueError(
                        f"line {lineno}: cumulative bucket count decreased"
                    )
                fam["buckets"].append((le, cum))
            elif sample.endswith("_count"):
                fam["count"] = int(float(value))
            elif sample.endswith("_sum"):
                fam["sum"] = _parse_value(value)
            else:
                raise ValueError(
                    f"line {lineno}: unexpected histogram sample {sample!r}"
                )
        else:
            families[base] = {"type": mtype, "value": _parse_value(value)}
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    for name, fam in families.items():
        if fam.get("type") != "histogram":
            continue
        if not fam["buckets"] or fam["buckets"][-1][0] != math.inf:
            raise ValueError(f"histogram {name!r} missing +Inf bucket")
        if fam["buckets"][-1][1] != fam["count"]:
            raise ValueError(
                f"histogram {name!r}: +Inf bucket {fam['buckets'][-1][1]} "
                f"!= count {fam['count']}"
            )
    return families


# ----------------------------------------------------------------------
# Heartbeat publication
# ----------------------------------------------------------------------
def publish_heartbeats(
    registry: Any, ages: Mapping[int, float], prefix: str = "repro.rank"
) -> None:
    """Set ``<prefix>.<rank>.heartbeat_age_seconds`` gauges from ages."""
    for rank, age in ages.items():
        registry.set(f"{prefix}.{rank}.heartbeat_age_seconds", float(age))


# ----------------------------------------------------------------------
# Background sampler for non-serve runs
# ----------------------------------------------------------------------
class Telemetry:
    """Periodic OpenMetrics snapshots of a registry to a file.

    A ``repro run`` has no wire protocol to scrape, so this sampler is
    its exposition surface: every ``interval`` seconds (or on demand
    via :meth:`sample`) the registry is rendered to ``path`` with an
    atomic replace, and ``repro top --file`` polls that file.  The
    sampler thread is a daemon and observation-only -- it never touches
    solver state.
    """

    def __init__(
        self,
        path: str | Path,
        registry: Any = None,
        interval: float = 1.0,
        heartbeats: Any = None,
    ) -> None:
        from repro.monitor.trace import get_metrics

        self.path = Path(path)
        self.registry = registry if registry is not None else get_metrics()
        self.interval = float(interval)
        # Optional zero-arg callable returning {rank: age_seconds}.
        self.heartbeats = heartbeats
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample(self) -> Path:
        """Take one sample: publish heartbeats, render, atomic write."""
        from repro.io.atomic import atomic_write_bytes

        if self.heartbeats is not None:
            try:
                publish_heartbeats(self.registry, self.heartbeats())
            except Exception:  # pragma: no cover - heartbeat source died
                pass
        self.samples += 1
        self.registry.set("repro.telemetry.samples", float(self.samples))
        self.registry.set("repro.telemetry.sampled_unix", time.time())
        body = render_openmetrics(self.registry)
        return atomic_write_bytes(self.path, body.encode())

    # ------------------------------------------------------------------
    def start(self) -> "Telemetry":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=max(5.0, 2 * self.interval))
        if final_sample:
            self.sample()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample()
            except Exception:  # pragma: no cover - sampler must not kill runs
                pass

    def __enter__(self) -> "Telemetry":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
