"""``perf stat``-style timers.

The paper timed whole-process executions with::

    perf stat -e duration_time -e cpu-cycles <v2d>

and cross-checked PAPI software timers against the hardware clock,
finding the differences insignificant.  This module provides the
software side of that comparison: monotonic wall-clock and process CPU
timers, a re-enterable region timer, and a :func:`perf_stat` context
manager that reports the same two events (``duration_time`` in
nanoseconds, ``cpu-cycles`` estimated from CPU time at a nominal clock
rate -- a documented software proxy, since cycle counters are not
readable from Python).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Nominal A64FX clock rate used to convert CPU seconds into an
#: estimated ``cpu-cycles`` count (the A64FX on Ookami runs at 1.8 GHz).
NOMINAL_HZ: float = 1.8e9


class WallTimer:
    """Accumulating monotonic wall-clock timer."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0
        self.calls: int = 0

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        dt = time.perf_counter() - self._start
        self._start = None
        self.elapsed += dt
        self.calls += 1
        return dt

    @property
    def running(self) -> bool:
        return self._start is not None

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0
        self.calls = 0

    def __enter__(self) -> "WallTimer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


class CpuTimer(WallTimer):
    """Accumulating process CPU-time timer (``time.process_time``)."""

    def start(self) -> None:  # noqa: D102 - inherited docstring
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.process_time()

    def stop(self) -> float:  # noqa: D102 - inherited docstring
        if self._start is None:
            raise RuntimeError("timer not running")
        dt = time.process_time() - self._start
        self._start = None
        self.elapsed += dt
        self.calls += 1
        return dt


@dataclass
class RegionTimer:
    """Named pair of wall + CPU timers for a code region."""

    name: str
    wall: WallTimer = field(default_factory=WallTimer)
    cpu: CpuTimer = field(default_factory=CpuTimer)

    def start(self) -> None:
        self.wall.start()
        self.cpu.start()

    def stop(self) -> None:
        self.wall.stop()
        self.cpu.stop()

    def __enter__(self) -> "RegionTimer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def calls(self) -> int:
        return self.wall.calls


@dataclass(frozen=True)
class PerfStatResult:
    """Result of a :func:`perf_stat` measurement.

    Mirrors the two events the study collected: ``duration_time``
    (nanoseconds of wall clock) and ``cpu-cycles`` (estimated as CPU
    seconds x nominal clock).
    """

    duration_time_ns: int
    cpu_cycles: int
    wall_seconds: float
    cpu_seconds: float

    def report(self) -> str:
        """A ``perf stat``-style text block."""
        lines = [
            " Performance counter stats:",
            "",
            f"  {self.duration_time_ns:>20,d}      duration_time",
            f"  {self.cpu_cycles:>20,d}      cpu-cycles (estimated @ {NOMINAL_HZ/1e9:.1f} GHz)",
            "",
            f"  {self.wall_seconds:>17.6f} seconds time elapsed",
            f"  {self.cpu_seconds:>17.6f} seconds cpu",
        ]
        return "\n".join(lines)


class _PerfStatBox:
    """Mutable holder filled in when the perf_stat region exits."""

    def __init__(self) -> None:
        self.result: PerfStatResult | None = None


@contextmanager
def perf_stat(nominal_hz: float = NOMINAL_HZ) -> Iterator[_PerfStatBox]:
    """Measure a region the way the study ran ``perf stat``.

    Yields a box whose ``.result`` is a :class:`PerfStatResult` once the
    ``with`` block exits::

        with perf_stat() as ps:
            run_simulation()
        print(ps.result.report())
    """
    box = _PerfStatBox()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        yield box
    finally:
        wall = time.perf_counter() - wall0
        cpu = time.process_time() - cpu0
        box.result = PerfStatResult(
            duration_time_ns=int(wall * 1e9),
            cpu_cycles=int(cpu * nominal_hz),
            wall_seconds=wall,
            cpu_seconds=cpu,
        )
