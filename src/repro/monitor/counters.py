"""PAPI-style software event counters.

The paper used PAPI analysis calls to time the V2D linear-algebra
routines and to attribute speedup to SVE vectorization.  Hardware
counters are unavailable from Python, so this module provides software
counters with a PAPI-flavoured API: instrumented code (kernels,
communicator, solvers) increments named events, and an
:class:`EventSet` can be started/stopped/read around a region exactly
like a PAPI event set.

Events are plain integers; the cost of incrementing them is a handful
of attribute additions, so counters default to *enabled* but every
instrumented call site accepts ``counters=None`` to skip accounting
entirely on hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


#: Mapping from PAPI-style event names to :class:`Counters` attributes.
#: Only events meaningful for this reproduction are provided; the names
#: follow the PAPI preset naming convention used in the study.
PAPI_EVENTS: dict[str, str] = {
    "PAPI_DP_OPS": "flops",          # double-precision floating point operations
    "PAPI_VEC_DP": "vector_ops",     # vectorized (packed SIMD) DP operations
    "PAPI_SP_OPS": "scalar_ops",     # scalar (unvectorized) operations
    "PAPI_LD_INS": "bytes_loaded",   # bytes loaded (proxy for load instructions)
    "PAPI_SR_INS": "bytes_stored",   # bytes stored (proxy for store instructions)
    "PAPI_MSG_SND": "messages_sent",
    "PAPI_MSG_BYT": "bytes_sent",
    "PAPI_RED_OPS": "reductions",
    "PAPI_HALO_EX": "halo_exchanges",
    "PAPI_MATVECS": "matvecs",
    "PAPI_DOTPROD": "dot_products",
    "PAPI_SOLVES": "linear_solves",
    "PAPI_ITERS": "solver_iterations",
    "PAPI_KNL_CALL": "kernel_calls",
    "PAPI_FUSED_OP": "fused_ops",
    # Resilience events (software-only; no PAPI preset exists, the
    # names follow the same convention).
    "PAPI_FLT_INJ": "faults_injected",
    "PAPI_FLT_NUM": "faults_numeric",
    "PAPI_FLT_COM": "faults_comm",
    "PAPI_FLT_IO": "faults_io",
    "PAPI_RCV_MSG": "comm_retransmits",
    "PAPI_RCV_SLV": "solver_escalations",
    "PAPI_RCV_GMR": "solver_fallbacks",
    "PAPI_RCV_STP": "step_retries",
    "PAPI_RCV_RBK": "rollbacks",
    "PAPI_RCV_IO": "io_recoveries",
}


@dataclass
class Counters:
    """Accumulated software event counts.

    Attributes mirror the quantities the paper measured or reasoned
    about: double-precision operation counts (to estimate arithmetic
    intensity), bytes moved (the kernels are memory-bandwidth limited),
    SIMD vs scalar operation counts (the SVE story), and message/
    reduction counts (the MPI-scaling story of Table I).
    """

    flops: int = 0
    vector_ops: int = 0
    scalar_ops: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    reductions: int = 0
    halo_exchanges: int = 0
    matvecs: int = 0
    dot_products: int = 0
    linear_solves: int = 0
    solver_iterations: int = 0
    kernel_calls: int = 0
    fused_ops: int = 0
    # Resilience: injected faults by site, recoveries by layer.
    faults_injected: int = 0
    faults_numeric: int = 0
    faults_comm: int = 0
    faults_io: int = 0
    comm_retransmits: int = 0
    solver_escalations: int = 0
    solver_fallbacks: int = 0
    step_retries: int = 0
    rollbacks: int = 0
    io_recoveries: int = 0

    def add_flops(self, n: int) -> None:
        self.flops += n

    def add_vector_ops(self, n: int) -> None:
        self.vector_ops += n

    def add_scalar_ops(self, n: int) -> None:
        self.scalar_ops += n

    def add_traffic(self, loaded: int, stored: int) -> None:
        """Record ``loaded`` bytes read and ``stored`` bytes written."""
        self.bytes_loaded += loaded
        self.bytes_stored += stored

    def add_message(self, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes

    @property
    def bytes_moved(self) -> int:
        """Total memory traffic in bytes (loads + stores)."""
        return self.bytes_loaded + self.bytes_stored

    @property
    def recoveries(self) -> int:
        """Recovery actions across every resilience layer."""
        return (
            self.comm_retransmits
            + self.solver_escalations
            + self.solver_fallbacks
            + self.step_retries
            + self.rollbacks
            + self.io_recoveries
        )

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of memory traffic (roofline x-axis).

        Returns 0.0 when no traffic has been recorded.
        """
        moved = self.bytes_moved
        return self.flops / moved if moved else 0.0

    @property
    def vector_fraction(self) -> float:
        """Fraction of retired operations that were packed SIMD.

        The counter-level vector-dilution measure: 1.0 means every
        accounted operation went through the wide unit, 0.0 means pure
        scalar issue.  Returns 0.0 when nothing has been recorded.
        """
        total = self.vector_ops + self.scalar_ops
        return self.vector_ops / total if total else 0.0

    def achieved_gflops(self, seconds: float) -> float:
        """Measured GF/s over a timed window (the roofline y-axis).

        Returns 0.0 for a non-positive window so callers can render
        unmeasured rows without guarding.
        """
        if seconds <= 0.0:
            return 0.0
        return self.flops / seconds / 1e9

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of all counters."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_snapshot(cls, data: dict[str, int]) -> "Counters":
        """Rebuild counters from a :meth:`snapshot` dict.

        The inverse of :meth:`snapshot` for serialized counters (a
        campaign job result that crossed a process boundary as JSON).
        Unknown keys are ignored so snapshots from newer builds load.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in known})

    def merge_snapshot(self, data: dict[str, int]) -> None:
        """Accumulate a serialized snapshot into ``self`` (e.g. when
        folding per-job counter exports into campaign totals)."""
        self.merge(Counters.from_snapshot(data))

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "Counters") -> None:
        """Accumulate ``other`` into ``self`` (e.g. across ranks)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __sub__(self, other: "Counters") -> "Counters":
        diff = Counters()
        for f in fields(self):
            setattr(diff, f.name, getattr(self, f.name) - getattr(other, f.name))
        return diff


@dataclass
class EventSet:
    """A PAPI-like event set bound to a :class:`Counters` instance.

    Usage mirrors the PAPI C API used by the study's driver program::

        es = EventSet(counters, ["PAPI_DP_OPS", "PAPI_LD_INS"])
        es.start()
        ...  # instrumented work
        values = es.stop()          # counts accumulated since start()

    Unknown event names raise ``KeyError`` at construction, matching
    PAPI's behaviour of rejecting unsupported presets up front.
    """

    counters: Counters
    events: list[str]
    _baseline: dict[str, int] = field(default_factory=dict, repr=False)
    _running: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        for name in self.events:
            if name not in PAPI_EVENTS:
                raise KeyError(f"unknown PAPI event: {name!r}")

    def start(self) -> None:
        if self._running:
            raise RuntimeError("EventSet already running")
        snap = self.counters.snapshot()
        self._baseline = {name: snap[PAPI_EVENTS[name]] for name in self.events}
        self._running = True

    def read(self) -> dict[str, int]:
        """Counts accumulated since :meth:`start` without stopping."""
        if not self._running:
            raise RuntimeError("EventSet not running")
        snap = self.counters.snapshot()
        return {
            name: snap[PAPI_EVENTS[name]] - self._baseline[name] for name in self.events
        }

    def stop(self) -> dict[str, int]:
        values = self.read()
        self._running = False
        return values
