"""``repro top``: a polling live view over live telemetry.

Two data sources, same renderer:

* a running ``repro serve`` instance, scraped over the wire protocol's
  ``metrics``/``health`` ops (the default), or
* an OpenMetrics file written by :class:`~repro.monitor.telemetry.
  Telemetry`'s background sampler (``--file``), for non-serve runs.

The view is deliberately ``top``-shaped: one screenful, refreshed in
place, showing queue depth and job states, monotonic totals, latency
and queue-wait quantiles, per-tenant active-job counts, per-backend
achieved GF/s, and per-rank/per-worker heartbeat ages.  ``--json``
emits the same snapshot as machine-readable JSON instead.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from typing import Any

from repro.monitor.telemetry import parse_openmetrics

__all__ = ["add_top_parser", "cmd_top", "build_view", "render_view"]

_GFLOPS_RE = re.compile(r"^repro_kernel_(\w+)_gflops$")
_RANK_HB_RE = re.compile(r"^repro_rank_(\d+)_heartbeat_age_seconds$")
_TOTAL_RE = re.compile(r"^repro_serve_(\w+)$")


def _hist_quantile(hist: dict[str, Any], q: float) -> float | None:
    """Quantile from parsed OpenMetrics histogram buckets (interpolated)."""
    count = hist.get("count", 0)
    buckets = hist.get("buckets", [])
    if not count or not buckets:
        return None
    target = q * count
    prev_le, prev_cum = 0.0, 0
    for le, cum in buckets:
        if cum >= target:
            if le == float("inf"):
                return prev_le
            span = cum - prev_cum
            if span <= 0:
                return le
            frac = (target - prev_cum) / span
            return prev_le + frac * (le - prev_le)
        prev_le, prev_cum = le, cum
    return buckets[-1][0]


def _hist_view(hist: dict[str, Any] | None) -> dict[str, Any]:
    if not hist or not hist.get("count"):
        return {"count": 0, "p50": None, "p99": None, "mean": None}
    count = hist["count"]
    return {
        "count": count,
        "p50": _hist_quantile(hist, 0.50),
        "p99": _hist_quantile(hist, 0.99),
        "mean": hist.get("sum", 0.0) / count if count else None,
    }


def build_view(
    metrics: dict[str, Any],
    stats: dict[str, Any] | None = None,
    health: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold parsed metrics + serve stats/health into one snapshot dict.

    ``metrics`` is :func:`parse_openmetrics` output; ``stats``/``health``
    are the serve wire payloads (None when scraping a sampler file).
    """
    gauges = {
        name: entry["value"]
        for name, entry in metrics.items()
        if entry.get("type") == "gauge"
    }
    hists = {
        name: entry for name, entry in metrics.items()
        if entry.get("type") == "histogram"
    }

    gflops = {}
    ranks = {}
    counters = {}
    for name, value in sorted(gauges.items()):
        m = _GFLOPS_RE.match(name)
        if m:
            gflops[m.group(1)] = value
            continue
        m = _RANK_HB_RE.match(name)
        if m:
            ranks[int(m.group(1))] = value
            continue
        m = _TOTAL_RE.match(name)
        if m:
            counters[m.group(1)] = value

    view: dict[str, Any] = {
        "gflops": gflops,
        "rank_heartbeat_age_seconds": ranks,
        "counters": counters,
        "latency": _hist_view(hists.get("repro_serve_latency_seconds")),
        "queue_wait": _hist_view(hists.get("repro_serve_queue_wait_seconds")),
        "solver_iterations": _hist_view(
            hists.get("repro_solver_iterations_per_step")
        ),
        "halo_wait": _hist_view(hists.get("repro_halo_wait_seconds")),
        "sampled_unix": gauges.get("repro_telemetry_sampled_unix"),
    }
    if stats is not None:
        view["queue"] = {
            "depth": stats.get("queued", 0),
            "high_watermark": stats.get("queue_depth_high_watermark", 0),
            "jobs": stats.get("jobs", {}),
        }
        view["totals"] = stats.get("totals", {})
        view["cache"] = stats.get("cache", {})
        view["tenants"] = (stats.get("quota") or {}).get("active", {})
        view["uptime_seconds"] = stats.get("uptime_seconds")
        view["workers"] = stats.get("workers")
        # Serve-side hist stats are authoritative (exact min/max);
        # prefer them over the bucket-interpolated view when present.
        for key in ("latency", "queue_wait"):
            if stats.get(key, {}).get("count"):
                view[key] = stats[key]
    if health is not None:
        view["status"] = health.get("status")
        view["busy_workers"] = health.get("busy_workers")
        view["worker_heartbeat_age_seconds"] = health.get(
            "worker_heartbeat_age_seconds", {}
        )
    return view


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt_s(value: Any, digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}g}"


def _fmt_age(age: float) -> str:
    flag = "" if age < 5.0 else " !!"
    return f"{age:.1f}s{flag}"


def render_view(view: dict[str, Any]) -> str:
    """One screenful of telemetry as plain text."""
    lines: list[str] = []
    status = view.get("status")
    header = "repro top"
    if status is not None:
        up = view.get("uptime_seconds")
        header += (
            f" -- server {status}, up {_fmt_s(up, 3)}s, "
            f"{view.get('busy_workers', 0)}/{view.get('workers', '?')} "
            f"workers busy"
        )
    elif view.get("sampled_unix"):
        age = time.time() - view["sampled_unix"]
        header += f" -- sampler file, written {age:.1f}s ago"
    lines.append(header)

    queue = view.get("queue")
    if queue is not None:
        jobs = queue.get("jobs", {})
        states = " ".join(f"{k}={v}" for k, v in sorted(jobs.items())) or "none"
        lines.append(
            f"queue    depth={queue['depth']} "
            f"high-watermark={queue['high_watermark']}  jobs: {states}"
        )
    totals = view.get("totals")
    if totals:
        keys = ("submitted", "executed", "completed", "failed", "cancelled",
                "cache_hits", "dedup_inflight", "rejected")
        lines.append("totals   " + " ".join(
            f"{k}={int(totals[k])}" for k in keys if k in totals
        ))
    tenants = view.get("tenants")
    if tenants:
        lines.append("tenants  " + " ".join(
            f"{t}={n}" for t, n in sorted(tenants.items())
        ) + " active")

    for key, label in (("latency", "latency"), ("queue_wait", "q-wait"),
                       ("solver_iterations", "solv-it"),
                       ("halo_wait", "halo")):
        h = view.get(key) or {}
        if h.get("count"):
            extra = h.get("max", h.get("mean"))
            extra_label = "max" if "max" in h else "mean"
            lines.append(
                f"{label:<8} n={h['count']} p50={_fmt_s(h['p50'])} "
                f"p99={_fmt_s(h['p99'])} {extra_label}={_fmt_s(extra)}"
            )

    gflops = view.get("gflops")
    if gflops:
        lines.append("kernel   " + "  ".join(
            f"{backend}={rate:.3f} GF/s" for backend, rate in gflops.items()
        ))

    ranks = view.get("rank_heartbeat_age_seconds")
    if ranks:
        lines.append("ranks    " + "  ".join(
            f"r{r}={_fmt_age(age)}" for r, age in sorted(ranks.items())
        ))
    workers = view.get("worker_heartbeat_age_seconds")
    if workers:
        lines.append("workers  " + "  ".join(
            f"w{w}={_fmt_age(age)}" for w, age in sorted(workers.items())
        ))
    if len(lines) == 1:
        lines.append("(no telemetry yet -- is REPRO_TELEMETRY=1 set on "
                     "the producer?)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# data sources
# ----------------------------------------------------------------------
def _scrape_server(args: argparse.Namespace) -> dict[str, Any]:
    from repro.serve.client import ServeClient

    with ServeClient(host=args.host, port=args.port,
                     timeout=args.timeout) as client:
        payload = client.metrics()
        health = client.health()
    metrics = parse_openmetrics(payload["openmetrics"])
    return build_view(metrics, stats=payload.get("stats"), health=health)


def _scrape_file(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        metrics = parse_openmetrics(fh.read())
    return build_view(metrics)


# ----------------------------------------------------------------------
# the verb
# ----------------------------------------------------------------------
def cmd_top(args: argparse.Namespace) -> int:
    iterations = 1 if args.once else args.iterations
    live = (not args.json and not args.once and sys.stdout.isatty())
    n = 0
    try:
        while True:
            try:
                if args.file:
                    view = _scrape_file(args.file)
                else:
                    view = _scrape_server(args)
            except FileNotFoundError:
                print(f"repro top: no sampler file at {args.file!r} yet",
                      file=sys.stderr)
                return 2
            except ValueError as exc:
                print(f"repro top: bad OpenMetrics payload: {exc}",
                      file=sys.stderr)
                return 2
            except (ConnectionError, OSError) as exc:
                print(
                    f"repro top: cannot reach {args.host}:{args.port} ({exc})",
                    file=sys.stderr,
                )
                return 2
            if args.json:
                print(json.dumps(view, indent=2, sort_keys=True), flush=True)
            else:
                if live:
                    sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
                print(render_view(view), flush=True)
            n += 1
            if iterations and n >= iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's a clean exit
        # for a streaming view, not an error.
        sys.stderr.close()
        return 0


def add_top_parser(sub) -> None:
    p = sub.add_parser(
        "top", help="live telemetry view over a serve instance or "
                    "sampler file"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7070)
    p.add_argument("--timeout", type=float, default=10.0,
                   help="scrape socket timeout in seconds")
    p.add_argument("--file", metavar="PATH", default=None,
                   help="read an OpenMetrics sampler file instead of "
                        "scraping a server")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes")
    p.add_argument("--iterations", type=int, default=0,
                   help="stop after this many refreshes (0 = until ^C)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable snapshots instead of the "
                        "text view")
    p.set_defaults(fn=cmd_top)
