"""Structured span/event tracer with Chrome trace-event export.

The paper's measurement story is TAU/ParaProf attribution plus Arm MAP
sampling; what neither gives is a *timeline* -- when each BiCGSTAB call
site ran, how the halo exchange's in-flight window overlaps compute,
where a resilience retry re-entered the step, which campaign jobs the
scheduler had in flight.  This module closes that gap the way the
APEX/perf-level A64FX studies do: a structured tracer whose output is
the Chrome trace-event JSON format, loadable in Perfetto or
``chrome://tracing`` with one track group per rank.

Design rules (mirroring the resilience layer's):

* **Zero cost when disabled.**  Nothing here runs unless a caller holds
  a :class:`Tracer`; every instrumented site guards on ``tracer is not
  None`` exactly like the existing ``profiler is not None`` checks.
* **Observation only.**  The tracer reads clocks and counters; it never
  touches operands, so runs with tracing enabled are bitwise-identical
  to runs without (asserted by the test suite).

Event vocabulary (Chrome trace-event phases):

=====  ==================================================================
``B``/``E``  synchronous span begin/end (per-thread, properly nested)
``b``/``e``  async span begin/end (overlap windows: halo in-flight,
             campaign job lifecycles), matched by ``(cat, id)``
``i``        instant event (solver iterations, retries, escalations)
``C``        counter snapshot (PAPI-style counters, metrics registry)
``M``        metadata (process/thread names for the per-rank tracks)
=====  ==================================================================

All tracers share one process-wide monotonic epoch, so traces from the
per-rank tracers of a decomposed run merge onto one aligned timeline
(:func:`merged_payload`).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

#: Trace payload schema version (``metadata.schema`` in the export).
TRACE_SCHEMA = 1

#: Event phases the validator accepts.
_PHASES = frozenset({"B", "E", "i", "I", "C", "M", "b", "n", "e", "X"})

#: Shared monotonic epoch: every tracer's ``ts`` is microseconds since
#: this instant, so per-rank tracers merge onto one aligned timeline.
_EPOCH_NS = time.perf_counter_ns()


class MetricsRegistry:
    """Process-wide named metrics (counters, gauges, and histograms).

    A minimal Prometheus-flavoured registry: instrumented code bumps
    named values, and the tracer snapshots the whole registry into a
    counter track.  Thread-safe; scalar values are plain floats, and
    :meth:`observe` feeds fixed-bucket
    :class:`~repro.monitor.telemetry.Histogram` distributions that the
    OpenMetrics exposition and ``repro top`` render live.  Histograms
    are kept out of :meth:`snapshot` so every consumer of the scalar
    view (tracer counter tracks, perf reports) keeps seeing a flat
    ``{name: float}`` dict.
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = {}
        self._hists: dict[str, Any] = {}
        self._lock = threading.Lock()

    # The registry crosses process boundaries twice: the ``mp``
    # transport forks it (children inherit, then snapshot-and-reset so
    # their deltas fold back through the result pipes), and tests
    # pickle it.  Locks are per-process machinery -- same treatment as
    # Tracer below.
    def __getstate__(self) -> dict[str, Any]:
        with self._lock:
            state = self.__dict__.copy()
            state["_values"] = dict(self._values)
            state["_hists"] = dict(self._hists)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def inc(self, name: str, delta: float = 1.0) -> None:
        """Add ``delta`` to the named counter (creating it at 0)."""
        with self._lock:
            self._values[name] = self._values.get(name, 0.0) + delta

    def set(self, name: str, value: float) -> None:
        """Set the named gauge to ``value``."""
        with self._lock:
            self._values[name] = float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._values.get(name, default)

    def snapshot(self) -> dict[str, float]:
        """Detached copy of every scalar metric."""
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()
            self._hists.clear()

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def observe(
        self, name: str, value: float, buckets: Sequence[float] | None = None
    ) -> None:
        """Record ``value`` into the named histogram (created lazily).

        ``buckets`` (finite upper bounds) only matters on first touch;
        later observations reuse the existing bucket layout.
        """
        from repro.monitor.telemetry import DEFAULT_BUCKETS, Histogram

        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = Histogram(buckets if buckets is not None else DEFAULT_BUCKETS)
                self._hists[name] = hist
            hist.observe(value)

    def histogram(self, name: str) -> Any | None:
        """The named :class:`Histogram`, or ``None`` if never observed."""
        with self._lock:
            return self._hists.get(name)

    def quantile(self, name: str, q: float, default: float = 0.0) -> float:
        """Estimated ``q``-quantile of the named histogram."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None or hist.total == 0:
                return default
            return hist.quantile(q)

    def histogram_snapshots(self) -> dict[str, dict[str, Any]]:
        """``{name: plain-data snapshot}`` for every histogram."""
        with self._lock:
            return {name: h.snapshot() for name, h in self._hists.items()}

    # ------------------------------------------------------------------
    # Cross-process fold-back
    # ------------------------------------------------------------------
    def export(self) -> dict[str, Any]:
        """Transport-neutral full state (scalars + histograms)."""
        with self._lock:
            return {
                "values": dict(self._values),
                "histograms": {n: h.snapshot() for n, h in self._hists.items()},
            }

    def export_and_reset(self) -> dict[str, Any]:
        """Atomically :meth:`export` then clear -- the child-rank half
        of the ``mp`` transport's snapshot-and-reset fold-back.

        A forked child inherits the parent's pre-fork metrics; calling
        this right after the fork discards that inherited baseline so
        whatever the child exports at exit is *its own* delta, safe for
        the parent to merge without double counting.
        """
        with self._lock:
            state = {
                "values": dict(self._values),
                "histograms": {n: h.snapshot() for n, h in self._hists.items()},
            }
            self._values.clear()
            self._hists.clear()
        return state

    def merge_export(self, data: Mapping[str, Any] | None) -> None:
        """Fold an :meth:`export` payload in: scalars add, hists merge.

        Additive semantics match the fold-back use case (child deltas
        accumulate onto the parent's registry); gauges set by a child
        therefore arrive as additive contributions too, which is the
        right call for every ``repro.*`` gauge we publish (rates and
        ages are re-set by the parent's own sampler after merging).
        """
        from repro.monitor.telemetry import Histogram

        if not data:
            return
        with self._lock:
            for name, value in data.get("values", {}).items():
                self._values[name] = self._values.get(name, 0.0) + float(value)
            for name, snap in data.get("histograms", {}).items():
                incoming = Histogram.from_snapshot(snap)
                mine = self._hists.get(name)
                if mine is None or mine.bounds != incoming.bounds:
                    # Bucket-layout drift: last writer wins rather than
                    # raising inside a result-collection path.
                    self._hists[name] = incoming
                else:
                    mine.merge(incoming)


_GLOBAL_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _GLOBAL_METRICS


class Tracer:
    """Collects trace events; one instance per traced rank (or tool).

    Spans map to ``B``/``E`` pairs on the track ``pid = rank``; the
    ``tid`` is a small per-tracer index interned from the writing
    thread, so multi-thread ranks (e.g. SPMD + hydro) keep properly
    nested per-thread stacks.  Appends ride the GIL (one ``list.append``
    per event), so the hot-path overhead is a clock read plus a dict
    construction -- and zero when no tracer is installed.
    """

    def __init__(self, process_label: str = "repro") -> None:
        self.process_label = process_label
        self._events: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._tids: dict[int, int] = {}
        self._ranks: set[int] = set()
        self._async_seq = 0

    # A tracer must cross process boundaries (per-rank span streams of
    # the multiprocessing transport return inside RunReports); the lock
    # is per-process machinery, the event list is the state.  The fork
    # shares ``_EPOCH_NS`` and CLOCK_MONOTONIC is system-wide on Linux,
    # so timestamps from different rank processes stay on one timeline.
    def __getstate__(self) -> dict[str, Any]:
        with self._lock:
            state = self.__dict__.copy()
            state["_events"] = list(self._events)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @staticmethod
    def now_us() -> float:
        """Microseconds since the shared process epoch."""
        return (time.perf_counter_ns() - _EPOCH_NS) / 1000.0

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _emit(
        self,
        ph: str,
        name: str,
        rank: int,
        cat: str,
        args: Mapping[str, Any] | None = None,
        **extra: Any,
    ) -> None:
        self._ranks.add(rank)
        ev: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": ph,
            "ts": self.now_us(),
            "pid": rank,
            "tid": self._tid(),
        }
        if args:
            ev["args"] = dict(args)
        ev.update(extra)
        self._events.append(ev)  # GIL-atomic

    # ------------------------------------------------------------------
    # Emission API
    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        rank: int = 0,
        cat: str = "region",
        args: Mapping[str, Any] | None = None,
    ) -> Iterator[None]:
        """Synchronous span: ``B`` at entry, matching ``E`` at exit."""
        self._emit("B", name, rank, cat, args)
        try:
            yield
        finally:
            self._emit("E", name, rank, cat)

    def instant(
        self,
        name: str,
        rank: int = 0,
        cat: str = "event",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Zero-duration marker on the rank's track (thread scope)."""
        self._emit("i", name, rank, cat, args, s="t")

    def counter(
        self, name: str, values: Mapping[str, float], rank: int = 0
    ) -> None:
        """Counter snapshot; Perfetto renders one series per key."""
        self._emit("C", name, rank, "counter", values)

    def counter_snapshot(
        self, registry: MetricsRegistry, rank: int = 0, name: str = "metrics"
    ) -> None:
        """Snapshot a :class:`MetricsRegistry` onto the counter track."""
        values = registry.snapshot()
        if values:
            self.counter(name, values, rank=rank)

    def async_begin(
        self,
        name: str,
        rank: int = 0,
        cat: str = "async",
        args: Mapping[str, Any] | None = None,
    ) -> int:
        """Open an async (overlap) window; returns the id to close it."""
        with self._lock:
            self._async_seq += 1
            aid = self._async_seq
        # Ids are scoped with the rank so windows from different ranks
        # never collide when per-rank tracers are merged into one file.
        self._emit("b", name, rank, cat, args, id=f"{rank}.{aid}")
        return aid

    def async_end(
        self,
        name: str,
        aid: int,
        rank: int = 0,
        cat: str = "async",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Close the async window ``aid`` (from :meth:`async_begin`)."""
        self._emit("e", name, rank, cat, args, id=f"{rank}.{aid}")

    # ------------------------------------------------------------------
    # Queries / export
    # ------------------------------------------------------------------
    def events(self) -> list[dict[str, Any]]:
        """Snapshot of the events emitted so far (insertion order)."""
        return list(self._events)

    def ranks(self) -> list[int]:
        return sorted(self._ranks)

    def __len__(self) -> int:
        return len(self._events)

    def summary(self) -> dict[str, Any]:
        """Aggregate view for reports and campaign roll-ups.

        Pairs each track's ``B``/``E`` events into per-name span counts
        and total microseconds, and counts instants; async windows are
        summarized by their begin events.  This is the per-job payload
        the campaign aggregator merges into ``BENCH_campaign.json``.
        """
        spans: dict[str, dict[str, float]] = {}
        instants: dict[str, int] = {}
        stacks: dict[tuple[int, int], list[tuple[str, float]]] = {}
        for ev in list(self._events):
            ph = ev["ph"]
            if ph == "B":
                stacks.setdefault((ev["pid"], ev["tid"]), []).append(
                    (ev["name"], ev["ts"])
                )
            elif ph == "E":
                stack = stacks.get((ev["pid"], ev["tid"]))
                if stack:
                    name, t0 = stack.pop()
                    agg = spans.setdefault(name, {"count": 0, "us": 0.0})
                    agg["count"] += 1
                    agg["us"] += ev["ts"] - t0
            elif ph in ("i", "b"):
                instants[ev["name"]] = instants.get(ev["name"], 0) + 1
        return {
            "schema": TRACE_SCHEMA,
            "events": len(self._events),
            "ranks": self.ranks(),
            "spans": spans,
            "instants": instants,
        }

    def _metadata_events(self) -> list[dict[str, Any]]:
        meta: list[dict[str, Any]] = []
        for rank in self.ranks():
            meta.append({
                "name": "process_name", "ph": "M", "pid": rank, "tid": 0,
                "args": {"name": f"{self.process_label} rank {rank}"},
            })
            meta.append({
                "name": "process_sort_index", "ph": "M", "pid": rank,
                "tid": 0, "args": {"sort_index": rank},
            })
        return meta

    def to_payload(
        self, metadata: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """The Perfetto-loadable trace payload for this tracer alone."""
        return merged_payload([self], metadata=metadata)

    def export(
        self, path: str | Path, metadata: Mapping[str, Any] | None = None
    ) -> Path:
        """Atomically write the trace JSON; returns the final path."""
        return write_trace(self.to_payload(metadata), path)


# ----------------------------------------------------------------------
# Merging / writing
# ----------------------------------------------------------------------
def merged_payload(
    tracers: Sequence[Tracer], metadata: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """One trace payload from several tracers (e.g. one per rank).

    Tracers share the process epoch, so merging is concatenation; each
    rank keeps its own ``pid`` track group.  Events are ordered by
    timestamp for readability (per-track order is already monotone).
    """
    events: list[dict[str, Any]] = []
    for tracer in tracers:
        events.extend(tracer._metadata_events())
    body: list[dict[str, Any]] = []
    for tracer in tracers:
        body.extend(tracer.events())
    body.sort(key=lambda ev: ev["ts"])
    events.extend(body)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "schema": TRACE_SCHEMA,
            "tool": "repro.monitor.trace",
            **(dict(metadata) if metadata else {}),
        },
    }


def write_trace(payload: Mapping[str, Any], path: str | Path) -> Path:
    """Atomically write a trace payload as JSON."""
    # Imported here: repro.io pulls in the checkpoint stack, whose halo
    # imports land back on this module at package-init time.
    from repro.io.atomic import atomic_write_bytes

    body = json.dumps(payload, indent=1) + "\n"
    return atomic_write_bytes(path, body.encode())


def merge_summaries(summaries: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold per-tracer :meth:`Tracer.summary` dicts into campaign totals."""
    spans: dict[str, dict[str, float]] = {}
    instants: dict[str, int] = {}
    events = 0
    ranks: set[int] = set()
    for summ in summaries:
        events += int(summ.get("events", 0))
        ranks.update(summ.get("ranks", ()))
        for name, agg in summ.get("spans", {}).items():
            out = spans.setdefault(name, {"count": 0, "us": 0.0})
            out["count"] += int(agg.get("count", 0))
            out["us"] += float(agg.get("us", 0.0))
        for name, n in summ.get("instants", {}).items():
            instants[name] = instants.get(name, 0) + int(n)
    return {
        "schema": TRACE_SCHEMA,
        "events": events,
        "ranks": sorted(ranks),
        "spans": spans,
        "instants": instants,
    }


def span_seconds(summary: Mapping[str, Any]) -> dict[str, tuple[float, int]]:
    """``{span name: (total seconds, count)}`` from a summary dict.

    The join key the efficiency reporter uses to pair tracer-measured
    span time with counter-measured work (summaries record span totals
    in microseconds; attribution wants seconds).
    """
    out: dict[str, tuple[float, int]] = {}
    for name, agg in summary.get("spans", {}).items():
        out[name] = (float(agg.get("us", 0.0)) / 1e6, int(agg.get("count", 0)))
    return out


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_trace(payload: Any) -> list[str]:
    """Schema/consistency check of a trace payload; returns problems.

    An empty list means the payload is a well-formed trace: every event
    carries the required fields with a known phase, per-track
    timestamps are monotone non-decreasing, every ``B`` has a matching
    ``E`` (properly nested per track, names agreeing), and every async
    ``b`` is closed by an ``e`` with the same ``(cat, id)``.  Used by
    the tests, the ``repro trace`` CLI verb and the CI trace-smoke job.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' missing or not a list"]

    stacks: dict[tuple[Any, Any], list[str]] = {}
    last_ts: dict[tuple[Any, Any], float] = {}
    asyncs: dict[tuple[Any, Any], int] = {}
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            if "name" not in ev:
                errors.append(f"{where}: metadata event without a name")
            continue
        missing = [k for k in ("ts", "pid", "tid") if k not in ev]
        if missing:
            errors.append(f"{where}: missing {missing}")
            continue
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad timestamp {ts!r}")
            continue
        track = (ev["pid"], ev["tid"])
        if ts < last_ts.get(track, float("-inf")):
            errors.append(
                f"{where}: timestamp {ts} goes backwards on track {track}"
            )
        last_ts[track] = ts

        if ph == "B":
            if "name" not in ev:
                errors.append(f"{where}: B event without a name")
            stacks.setdefault(track, []).append(ev.get("name", "?"))
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                errors.append(f"{where}: E without an open B on track {track}")
                continue
            opened = stack.pop()
            name = ev.get("name")
            if name is not None and name != opened:
                errors.append(
                    f"{where}: E for {name!r} but innermost open span "
                    f"is {opened!r}"
                )
        elif ph in ("b", "n", "e"):
            if "id" not in ev:
                errors.append(f"{where}: async event without an id")
                continue
            key = (ev.get("cat"), ev["id"])
            if ph == "b":
                asyncs[key] = asyncs.get(key, 0) + 1
            elif ph == "e":
                depth = asyncs.get(key, 0) - 1
                if depth < 0:
                    errors.append(f"{where}: async end without begin {key}")
                asyncs[key] = depth

    for track, stack in stacks.items():
        for name in stack:
            errors.append(f"unclosed span {name!r} on track {track}")
    for key, depth in asyncs.items():
        if depth > 0:
            errors.append(f"unclosed async window {key}")
    return errors
