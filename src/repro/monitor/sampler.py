"""Statistical sampling profiler (the Arm MAP stand-in).

The study "also [made] use of Arm's MAP performance analysis tool,
which indicated that the three calls to the BiCGSTAB routine each took
approximately 31-33% of the total time using a single processor".
MAP works by sampling: a timer thread periodically records where the
program is, and percent-of-samples approximates percent-of-time.

:class:`SamplingProfiler` does the same against the instrumented
region stack: the :class:`~repro.monitor.profiler.Profiler` publishes
each thread's active region, and a daemon thread samples it at a fixed
interval.  Sample shares converge to the instrumented inclusive-time
shares (asserted by the test suite), which is exactly the
cross-validation the paper performed between MAP and TAU.
"""

from __future__ import annotations

import threading
import time
from collections import Counter as _Counter
from dataclasses import dataclass, field

from repro.monitor.profiler import Profiler


@dataclass
class SampleReport:
    """Aggregated samples: region name -> hit count."""

    counts: dict[str, int] = field(default_factory=dict)
    total: int = 0
    interval: float = 0.0

    def fraction(self, name: str) -> float:
        """Share of samples landing in ``name`` (inclusive: a sample in
        a child is also attributed to its ancestors)."""
        if self.total == 0:
            return 0.0
        return self.counts.get(name, 0) / self.total

    def table(self) -> str:
        lines = [
            f"MAP-style sample profile ({self.total} samples @ "
            f"{1e3 * self.interval:.1f} ms)",
            f"{'%samples':>9}  region",
        ]
        for name, n in sorted(self.counts.items(), key=lambda kv: -kv[1]):
            lines.append(f"{100 * n / max(self.total, 1):>8.1f}%  {name}")
        return "\n".join(lines)


class SamplingProfiler:
    """Samples a :class:`Profiler`'s active-region stacks.

    Usage::

        prof = Profiler()
        sampler = SamplingProfiler(prof, interval=0.002)
        sampler.start()
        ...  # instrumented work
        report = sampler.stop()
        report.fraction("BiCGSTAB")

    Samples attribute hits to the active region *and all its
    ancestors*, so fractions are inclusive-time estimates comparable to
    the instrumented profiler's inclusive seconds.
    """

    def __init__(self, profiler: Profiler, interval: float = 0.005) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.profiler = profiler
        self.interval = interval
        self._hits: _Counter = _Counter()
        self._total = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _sample_once(self) -> None:
        active = self.profiler.active_regions()
        if not active:
            return
        self._total += len(active)
        for node in active:
            seen = set()
            while node is not None and node.parent is not None:
                if node.name not in seen:     # recursion-safe
                    self._hits[node.name] += 1
                    seen.add(node.name)
                node = node.parent

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()

    # ------------------------------------------------------------------
    def sample_now(self) -> None:
        """Take one sample synchronously.

        Lets callers drive sampling deterministically (e.g. from a
        known program point or a test) instead of from the timer
        thread; hits accumulate into the same report.
        """
        self._sample_once()

    def report(self) -> SampleReport:
        """The samples aggregated so far, without stopping the timer
        thread (which need not be running at all when sampling is
        driven via :meth:`sample_now`)."""
        return SampleReport(
            counts=dict(self._hits), total=self._total, interval=self.interval
        )

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("sampler already running")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="map-sampler")
        self._thread.start()

    def stop(self) -> SampleReport:
        if self._thread is None:
            raise RuntimeError("sampler not running")
        self._stop.set()
        self._thread.join()
        self._thread = None
        return SampleReport(
            counts=dict(self._hits), total=self._total, interval=self.interval
        )
