"""Performance-monitoring substrate.

This package stands in for the measurement stack used in the paper:

* :mod:`repro.monitor.timers` -- ``perf stat``-style region timing
  (``duration_time`` / ``cpu-cycles`` events) via software clocks.
* :mod:`repro.monitor.counters` -- PAPI-style hardware event counters,
  implemented as software counters incremented by the instrumented
  kernels and communicator.
* :mod:`repro.monitor.profiler` -- TAU-style hierarchical region
  profiler with ParaProf-like flat-profile text reports.
* :mod:`repro.monitor.sampler` -- Arm-MAP-style statistical sampler
  over the profiler's active-region stacks.
* :mod:`repro.monitor.trace` -- structured span/event tracer with a
  process-wide metrics registry, exporting Chrome trace-event JSON
  (Perfetto-loadable timelines with per-rank tracks).

The paper measured V2D with ``perf stat -e duration_time -e
cpu-cycles``, PAPI timers inside the linear-algebra routines, TAU's
ParaProf to attribute time to routines, and Arm MAP.  None of those can
observe a pure-Python reproduction, so the substitution is software
instrumentation that exposes the *same quantities*: wall/CPU seconds per
region, event counts per routine, and percent-of-total attributions.
"""

from repro.monitor.counters import Counters, EventSet, PAPI_EVENTS
from repro.monitor.flight import FlightRecorder, dump_bundle, read_bundle
from repro.monitor.log import bind_context, configure_logging, get_logger
from repro.monitor.profiler import Profiler, ProfileNode, get_profiler, profile_region
from repro.monitor.sampler import SampleReport, SamplingProfiler
from repro.monitor.timers import CpuTimer, PerfStatResult, RegionTimer, WallTimer, perf_stat
from repro.monitor.telemetry import (
    Histogram,
    Telemetry,
    parse_openmetrics,
    render_openmetrics,
)
from repro.monitor.trace import (
    MetricsRegistry,
    TRACE_SCHEMA,
    Tracer,
    get_metrics,
    merge_summaries,
    merged_payload,
    validate_trace,
    write_trace,
)

__all__ = [
    "FlightRecorder",
    "dump_bundle",
    "read_bundle",
    "bind_context",
    "configure_logging",
    "get_logger",
    "Histogram",
    "Telemetry",
    "parse_openmetrics",
    "render_openmetrics",
    "Counters",
    "EventSet",
    "PAPI_EVENTS",
    "Profiler",
    "ProfileNode",
    "get_profiler",
    "profile_region",
    "WallTimer",
    "CpuTimer",
    "RegionTimer",
    "PerfStatResult",
    "perf_stat",
    "SamplingProfiler",
    "SampleReport",
    "Tracer",
    "MetricsRegistry",
    "TRACE_SCHEMA",
    "get_metrics",
    "merge_summaries",
    "merged_payload",
    "validate_trace",
    "write_trace",
]
