"""Face reconstruction: piecewise-constant and slope-limited MUSCL.

Given zone-averaged primitives with two ghost layers along the sweep
axis, produce left/right face states at every interior face.  Slope
limiting (minmod or monotonized-central) keeps the scheme TVD; the
piecewise-constant option recovers the first-order Godunov method.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

Array = np.ndarray


class Reconstruction(Enum):
    PIECEWISE_CONSTANT = "pcm"
    MUSCL_MINMOD = "minmod"
    MUSCL_MC = "mc"


def _minmod(a: Array, b: Array) -> Array:
    """Minmod of two slope candidates."""
    return np.where(a * b > 0.0, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def _mc_limiter(a: Array, b: Array) -> Array:
    """Monotonized-central limiter of the one-sided slopes a, b."""
    s = _minmod(2.0 * a, 2.0 * b)
    return _minmod(0.5 * (a + b), s)


def reconstruct_faces(
    w: Array, method: Reconstruction | str = Reconstruction.MUSCL_MINMOD, axis: int = 1
) -> tuple[Array, Array]:
    """Left/right states at interior faces along ``axis``.

    Parameters
    ----------
    w:
        Primitive state ``(4, n + 2*g, ...)`` including at least the
        ghost zones the method needs along ``axis`` (1 for PCM, 2 for
        MUSCL).  All zones present are treated uniformly; the caller
        slices the result to the faces it owns.
    axis:
        Grid axis to sweep (1 = x1, 2 = x2).

    Returns
    -------
    (wl, wr):
        States just left/right of each face between consecutive zones;
        with ``m`` zones along the axis the face count is ``m - 1``
        for PCM and ``m - 3`` (interior zones' faces) for MUSCL.
    """
    if isinstance(method, str):
        method = Reconstruction(method)
    w = np.asarray(w)
    if axis not in (1, 2) or w.ndim < axis + 1:
        raise ValueError("axis must index a grid dimension of the state")

    def shift(arr: Array, k: int) -> Array:
        sl = [slice(None)] * arr.ndim
        m = arr.shape[axis]
        sl[axis] = slice(max(k, 0), m + min(k, 0))
        return arr[tuple(sl)]

    if method is Reconstruction.PIECEWISE_CONSTANT:
        wl = shift(w, 0)
        wr = shift(w, 1)
        # trim to equal length: faces between zones i and i+1
        n = min(wl.shape[axis], wr.shape[axis])
        wl, wr = _trim(wl, n, axis), _trim(wr, n, axis)
        return wl, wr

    # MUSCL: slopes need one neighbour either side.  With m zones along
    # the axis, zones 1..m-2 get limited slopes and the m-3 faces
    # between them get second-order states.
    dminus = np.diff(w, axis=axis)
    a = _trim(dminus, dminus.shape[axis] - 1, axis)             # d_{i-1/2} at zones 1..m-1
    b = _shift_from(dminus, 1, axis)                            # d_{i+1/2} at zones 1..m-1
    if method is Reconstruction.MUSCL_MINMOD:
        slope = _minmod(a, b)
    else:
        slope = _mc_limiter(a, b)
    centers = _shift_from(w, 1, axis)
    centers = _trim(centers, slope.shape[axis], axis)
    wplus = centers + 0.5 * slope    # right face of each centered zone
    wminus = centers - 0.5 * slope   # left face of each centered zone
    # Faces between consecutive *centered* zones: left state is zone i's
    # plus-side, right state is zone i+1's minus-side.
    wl = _trim(wplus, wplus.shape[axis] - 1, axis)
    wr = _shift_from(wminus, 1, axis)
    return wl, wr


def _trim(arr: Array, n: int, axis: int) -> Array:
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(0, n)
    return arr[tuple(sl)]


def _shift_from(arr: Array, k: int, axis: int) -> Array:
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(k, None)
    return arr[tuple(sl)]
