"""Gamma-law (ideal gas) equation of state.

The only microphysics the hydro module needs: closing the Euler
equations with ``p = (gamma - 1) rho e`` and providing sound speeds for
wave-speed estimates and the CFL condition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

Array = np.ndarray


@dataclass(frozen=True)
class IdealGasEOS:
    """``p = (gamma - 1) * rho * e`` with adiabatic index ``gamma``."""

    gamma: float = 1.4

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise ValueError("gamma must exceed 1")

    def pressure(self, rho: Array, eint: Array) -> Array:
        """Pressure from density and *specific* internal energy."""
        return (self.gamma - 1.0) * rho * eint

    def internal_energy(self, rho: Array, p: Array) -> Array:
        """Specific internal energy from density and pressure."""
        return p / ((self.gamma - 1.0) * np.maximum(rho, 1e-300))

    def sound_speed(self, rho: Array, p: Array) -> Array:
        """Adiabatic sound speed ``sqrt(gamma p / rho)``."""
        return np.sqrt(self.gamma * np.maximum(p, 0.0) / np.maximum(rho, 1e-300))

    def total_energy_density(self, rho: Array, v1: Array, v2: Array, p: Array) -> Array:
        """Conserved total energy per volume: internal + kinetic."""
        return p / (self.gamma - 1.0) + 0.5 * rho * (v1 * v1 + v2 * v2)

    def pressure_from_conserved(
        self, rho: Array, mom1: Array, mom2: Array, ener: Array
    ) -> Array:
        """Pressure from the conserved state (kinetic energy removed)."""
        kinetic = 0.5 * (mom1 * mom1 + mom2 * mom2) / np.maximum(rho, 1e-300)
        return (self.gamma - 1.0) * (ener - kinetic)
