"""Dimensionally split finite-volume Euler solver.

Godunov-type update with MUSCL reconstruction and an HLL-family
Riemann flux, split into x1 and x2 sweeps whose order alternates each
step (Strang-like symmetrization).  The state lives in a two-ghost
:class:`~repro.grid.field.Field`, so decomposed runs reuse the same
halo machinery as the radiation solver.

Geometry: Cartesian meshes only -- curvilinear Euler needs geometric
source terms that V2D's radiation test problem never exercises; the
constructor rejects non-Cartesian meshes rather than silently
mis-integrating.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.grid.field import Field
from repro.grid.geometry import Cartesian
from repro.grid.mesh import Mesh2D
from repro.hydro.eos import IdealGasEOS
from repro.hydro.reconstruct import Reconstruction, reconstruct_faces
from repro.hydro.riemann import hll_flux, hllc_flux
from repro.hydro.state import (
    ENER,
    MX1,
    MX2,
    NCONS,
    RHO,
    conserved_to_primitive,
    primitive_to_conserved,
)
from repro.parallel.cart import CartComm
from repro.parallel.comm import ReduceOp
from repro.parallel.halo import HaloExchanger, BoundaryCondition

Array = np.ndarray


class HydroBC(Enum):
    """Physical-boundary treatments."""

    REFLECT = "reflect"    # solid wall: mirror + negate normal velocity
    OUTFLOW = "outflow"    # zero-gradient
    PERIODIC = "periodic"  # wraparound (serial runs only; both sides of
                           # an axis must be periodic together)


_NORMAL = {"west": MX1, "east": MX1, "south": MX2, "north": MX2}
_RIEMANN = {"hll": hll_flux, "hllc": hllc_flux}


class HydroSolver2D:
    """2-D Eulerian hydrodynamics on a (possibly decomposed) mesh.

    Parameters
    ----------
    mesh:
        This rank's (Cartesian) tile mesh.
    eos:
        Equation of state.
    reconstruction:
        Face reconstruction scheme.
    riemann:
        ``"hll"`` or ``"hllc"``.
    cfl:
        Courant number for :meth:`cfl_dt`.
    bc:
        Physical boundary treatment (single or per-side dict).
    cart:
        Cartesian topology for decomposed runs.
    """

    NGHOST = 2

    def __init__(
        self,
        mesh: Mesh2D,
        eos: IdealGasEOS | None = None,
        reconstruction: Reconstruction | str = Reconstruction.MUSCL_MINMOD,
        riemann: str = "hllc",
        cfl: float = 0.4,
        bc: HydroBC | dict[str, HydroBC] = HydroBC.OUTFLOW,
        cart: CartComm | None = None,
        pressure_floor: float = 1e-12,
    ) -> None:
        if not isinstance(mesh.coord, Cartesian):
            raise ValueError("HydroSolver2D supports Cartesian meshes only")
        if riemann not in _RIEMANN:
            raise ValueError(f"riemann must be one of {sorted(_RIEMANN)}")
        if not 0.0 < cfl <= 1.0:
            raise ValueError("cfl must be in (0, 1]")
        if cart is not None and cart.tile.shape != mesh.shape:
            raise ValueError("mesh shape does not match this rank's tile")
        self.mesh = mesh
        self.eos = eos if eos is not None else IdealGasEOS()
        self.reconstruction = (
            Reconstruction(reconstruction) if isinstance(reconstruction, str) else reconstruction
        )
        self.riemann = _RIEMANN[riemann]
        self.cfl = cfl
        self.bc = bc
        self.cart = cart
        self.pressure_floor = pressure_floor
        self.U = Field(NCONS, mesh.shape, nghost=self.NGHOST)
        self._halo = (
            HaloExchanger(cart, BoundaryCondition.REFLECT) if cart is not None else None
        )
        self.time = 0.0
        self.step_count = 0
        self._validate_periodic()

    def _validate_periodic(self) -> None:
        """Periodic wrap is serial-only and must pair opposite sides."""
        def mode(side: str) -> HydroBC:
            return self.bc if isinstance(self.bc, HydroBC) else self.bc[side]

        has_periodic = any(
            mode(s) is HydroBC.PERIODIC for s in ("west", "east", "south", "north")
        )
        if not has_periodic:
            return
        if self.cart is not None:
            raise ValueError("PERIODIC boundaries are supported in serial runs only")
        for lo, hi in (("west", "east"), ("south", "north")):
            if (mode(lo) is HydroBC.PERIODIC) != (mode(hi) is HydroBC.PERIODIC):
                raise ValueError(f"{lo}/{hi} must both be PERIODIC or neither")

    # ------------------------------------------------------------------
    @property
    def comm(self):
        return self.cart.comm if self.cart is not None else None

    def _bc_for(self, side: str) -> HydroBC:
        return self.bc if isinstance(self.bc, HydroBC) else self.bc[side]

    def set_primitive(self, w: Array) -> None:
        """Load interior primitives ``(4, nx1, nx2)``."""
        if w.shape != (NCONS,) + self.mesh.shape:
            raise ValueError(f"expected {(NCONS,) + self.mesh.shape}, got {w.shape}")
        self.U.interior = primitive_to_conserved(w, self.eos)

    def primitive(self) -> Array:
        """Interior primitives ``(4, nx1, nx2)``."""
        return conserved_to_primitive(
            self.U.interior, self.eos, pressure_floor=self.pressure_floor
        )

    def conserved_totals(self) -> Array:
        """Volume-integrated conserved quantities (global)."""
        local = np.array(
            [float(np.sum(self.U.interior[k] * self.mesh.volumes)) for k in range(NCONS)]
        )
        if self.comm is not None and self.comm.size > 1:
            return np.asarray(self.comm.allreduce(local))
        return local

    # ------------------------------------------------------------------
    # Ghost handling
    # ------------------------------------------------------------------
    def _fill_ghosts(self) -> None:
        fld = self.U
        if self._halo is not None:
            self._halo.exchange(fld)
            # Physical faces were filled with REFLECT by the exchanger's
            # BC; now impose the hydro-specific treatment.
            neighbors = self.cart.neighbors
        else:
            for side in ("west", "east", "south", "north"):
                fld.reflect_side(side)
            neighbors = {s: None for s in ("west", "east", "south", "north")}

        g = self.NGHOST
        for side, nbr in neighbors.items():
            if nbr is not None:
                continue
            mode = self._bc_for(side)
            ghost = fld.ghost_strip(side)
            if mode is HydroBC.REFLECT:
                ghost[_NORMAL[side]] *= -1.0
            elif mode is HydroBC.PERIODIC:
                # wrap: this side's ghosts come from the far side's
                # interior boundary strip (serial only, validated).
                opposite = {"west": "east", "east": "west",
                            "south": "north", "north": "south"}[side]
                ghost[...] = fld.send_strip(opposite)
            else:  # OUTFLOW: zero-gradient copy of the edge zone
                edge = fld.send_strip(side, width=1)
                if side in ("west", "east"):
                    ghost[...] = np.repeat(edge, g, axis=1)
                else:
                    ghost[...] = np.repeat(edge, g, axis=2)

        # Corner blocks are outside every exchanged/BC-filled strip and
        # outside every flux stencil, but the padded primitive
        # conversion must still see a valid state there: replicate the
        # nearest interior corner zone.
        d = fld.data
        d[:, :g, :g] = d[:, g : g + 1, g : g + 1]
        d[:, :g, -g:] = d[:, g : g + 1, -g - 1 : -g]
        d[:, -g:, :g] = d[:, -g - 1 : -g, g : g + 1]
        d[:, -g:, -g:] = d[:, -g - 1 : -g, -g - 1 : -g]

    # ------------------------------------------------------------------
    # Timestep control
    # ------------------------------------------------------------------
    def cfl_dt(self) -> float:
        """Largest stable timestep (global over the decomposition)."""
        w = self.primitive()
        c = self.eos.sound_speed(w[RHO], w[3])
        dx1 = self.mesh.dx1[:, None]
        dx2 = self.mesh.dx2[None, :]
        rate = (np.abs(w[1]) + c) / dx1 + (np.abs(w[2]) + c) / dx2
        local = self.cfl / float(rate.max()) if rate.max() > 0 else np.inf
        if self.comm is not None and self.comm.size > 1:
            return float(self.comm.allreduce(local, op=ReduceOp.MIN))
        return float(local)

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def _sweep(self, dt: float, axis: int) -> None:
        """Finite-volume update along grid ``axis`` (1 = x1, 2 = x2)."""
        self._fill_ghosts()
        wpad = conserved_to_primitive(
            self.U.data, self.eos, pressure_floor=self.pressure_floor
        )
        if axis == 2:
            wpad = wpad.copy()
            wpad[[MX1, MX2]] = wpad[[MX2, MX1]]

        wl, wr = reconstruct_faces(wpad, self.reconstruction, axis=axis)
        # Trim the transverse ghost zones: reconstruct kept them.
        g = self.NGHOST
        if axis == 1:
            wl, wr = wl[:, :, g:-g], wr[:, :, g:-g]
        else:
            wl, wr = wl[:, g:-g, :], wr[:, g:-g, :]

        # With two ghost layers and MUSCL, faces run from one zone
        # outside the interior on each side; keep exactly the nx+1
        # interior faces.
        if self.reconstruction is Reconstruction.PIECEWISE_CONSTANT:
            lo = g - 1
        else:
            lo = g - 2  # MUSCL already dropped one zone per side
        n = self.mesh.shape[axis - 1]
        sl = [slice(None)] * wl.ndim
        sl[axis] = slice(lo, lo + n + 1)
        wl, wr = wl[tuple(sl)], wr[tuple(sl)]

        flux = self.riemann(wl, wr, self.eos)
        if axis == 2:
            flux[[MX1, MX2]] = flux[[MX2, MX1]]

        vol = self.mesh.volumes
        if axis == 1:
            area = self.mesh.areas_x1  # (n1+1, n2)
            df = area[None, 1:, :] * flux[:, 1:, :] - area[None, :-1, :] * flux[:, :-1, :]
        else:
            area = self.mesh.areas_x2  # (n1, n2+1)
            df = area[None, :, 1:] * flux[:, :, 1:] - area[None, :, :-1] * flux[:, :, :-1]
        self.U.interior = self.U.interior - dt * df / vol[None]

    def step(self, dt: float | None = None) -> float:
        """Advance one step (both sweeps); returns the dt used."""
        if dt is None:
            dt = self.cfl_dt()
        if dt <= 0 or not np.isfinite(dt):
            raise ValueError(f"invalid timestep {dt}")
        order = (1, 2) if self.step_count % 2 == 0 else (2, 1)
        for axis in order:
            self._sweep(dt, axis)
        self.time += dt
        self.step_count += 1
        return dt

    def run(self, t_end: float, max_steps: int = 100_000) -> int:
        """Advance to ``t_end``; returns the number of steps taken."""
        steps = 0
        while self.time < t_end - 1e-14 and steps < max_steps:
            dt = min(self.cfl_dt(), t_end - self.time)
            self.step(dt)
            steps += 1
        return steps
