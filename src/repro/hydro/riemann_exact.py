"""Exact Riemann solver for the 1-D Euler equations (validation).

Classic Godunov/Toro exact solution: Newton iteration on the star-region
pressure, then sampling by wave pattern.  Used by the test suite to
validate the hydro solver against the Sod shock tube, and by the
``sod_shock_tube`` example to plot numerical vs exact profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

Array = np.ndarray


@dataclass(frozen=True)
class RiemannState:
    """One side of the Riemann problem."""

    rho: float
    v: float
    p: float

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.p <= 0:
            raise ValueError("density and pressure must be positive")


def _pressure_function(p: float, side: RiemannState, gamma: float) -> tuple[float, float]:
    """Toro's f(p) and f'(p) for one side."""
    a = np.sqrt(gamma * side.p / side.rho)
    if p > side.p:  # shock
        A = 2.0 / ((gamma + 1.0) * side.rho)
        B = (gamma - 1.0) / (gamma + 1.0) * side.p
        sq = np.sqrt(A / (p + B))
        f = (p - side.p) * sq
        fp = sq * (1.0 - 0.5 * (p - side.p) / (p + B))
    else:  # rarefaction
        f = (
            2.0 * a / (gamma - 1.0)
            * ((p / side.p) ** ((gamma - 1.0) / (2.0 * gamma)) - 1.0)
        )
        fp = (1.0 / (side.rho * a)) * (p / side.p) ** (-(gamma + 1.0) / (2.0 * gamma))
    return f, fp


def _star_pressure(
    left: RiemannState, right: RiemannState, gamma: float, tol: float = 1e-12
) -> float:
    """Newton iteration for the star-region pressure."""
    # Two-rarefaction initial guess (robust for Sod-like problems).
    al = np.sqrt(gamma * left.p / left.rho)
    ar = np.sqrt(gamma * right.p / right.rho)
    z = (gamma - 1.0) / (2.0 * gamma)
    # A strongly diverging flow (2/(gamma-1)*(al+ar) <= vr-vl) generates
    # a (near-)vacuum star region; the two-rarefaction guess then has a
    # negative base, and a negative base under a fractional power is NaN.
    # Clamping keeps the Newton iteration in the positive-pressure domain,
    # where it converges onto the pressure floor for true vacuum cases.
    base = max(al + ar - 0.5 * (gamma - 1.0) * (right.v - left.v), 1e-14)
    p = (base / (al / left.p**z + ar / right.p**z)) ** (1.0 / z)
    p = max(p, 1e-12)
    for _ in range(100):
        fl, fpl = _pressure_function(p, left, gamma)
        fr, fpr = _pressure_function(p, right, gamma)
        g = fl + fr + (right.v - left.v)
        dp = g / (fpl + fpr)
        p_new = max(p - dp, 1e-14)
        if abs(p_new - p) <= tol * max(p, p_new):
            return p_new
        p = p_new
    return p


def exact_riemann(
    left: RiemannState | tuple[float, float, float],
    right: RiemannState | tuple[float, float, float],
    xi: Array,
    gamma: float = 1.4,
) -> tuple[Array, Array, Array]:
    """Sample the exact solution at similarity coordinates ``xi = x/t``.

    Returns ``(rho, v, p)`` arrays over ``xi``.
    """
    if not isinstance(left, RiemannState):
        left = RiemannState(*left)
    if not isinstance(right, RiemannState):
        right = RiemannState(*right)
    xi = np.asarray(xi, dtype=float)

    ps = _star_pressure(left, right, gamma)
    fl, _ = _pressure_function(ps, left, gamma)
    fr, _ = _pressure_function(ps, right, gamma)
    vs = 0.5 * (left.v + right.v) + 0.5 * (fr - fl)

    rho = np.empty_like(xi)
    v = np.empty_like(xi)
    p = np.empty_like(xi)

    gm1, gp1 = gamma - 1.0, gamma + 1.0
    al = np.sqrt(gamma * left.p / left.rho)
    ar = np.sqrt(gamma * right.p / right.rho)

    for k, x in enumerate(xi):
        if x <= vs:
            # Left of contact.
            if ps > left.p:  # left shock
                sl = left.v - al * np.sqrt(gp1 / (2 * gamma) * ps / left.p + gm1 / (2 * gamma))
                if x <= sl:
                    rho[k], v[k], p[k] = left.rho, left.v, left.p
                else:
                    rho[k] = left.rho * (
                        (ps / left.p + gm1 / gp1) / (gm1 / gp1 * ps / left.p + 1.0)
                    )
                    v[k], p[k] = vs, ps
            else:  # left rarefaction
                head = left.v - al
                astar = al * (ps / left.p) ** (gm1 / (2 * gamma))
                tail = vs - astar
                if x <= head:
                    rho[k], v[k], p[k] = left.rho, left.v, left.p
                elif x >= tail:
                    rho[k] = left.rho * (ps / left.p) ** (1.0 / gamma)
                    v[k], p[k] = vs, ps
                else:  # inside the fan
                    v[k] = 2.0 / gp1 * (al + gm1 / 2.0 * left.v + x)
                    a = al - gm1 / 2.0 * (v[k] - left.v)
                    rho[k] = left.rho * (a / al) ** (2.0 / gm1)
                    p[k] = left.p * (a / al) ** (2.0 * gamma / gm1)
        else:
            # Right of contact.
            if ps > right.p:  # right shock
                sr = right.v + ar * np.sqrt(
                    gp1 / (2 * gamma) * ps / right.p + gm1 / (2 * gamma)
                )
                if x >= sr:
                    rho[k], v[k], p[k] = right.rho, right.v, right.p
                else:
                    rho[k] = right.rho * (
                        (ps / right.p + gm1 / gp1) / (gm1 / gp1 * ps / right.p + 1.0)
                    )
                    v[k], p[k] = vs, ps
            else:  # right rarefaction
                head = right.v + ar
                astar = ar * (ps / right.p) ** (gm1 / (2 * gamma))
                tail = vs + astar
                if x >= head:
                    rho[k], v[k], p[k] = right.rho, right.v, right.p
                elif x <= tail:
                    rho[k] = right.rho * (ps / right.p) ** (1.0 / gamma)
                    v[k], p[k] = vs, ps
                else:
                    v[k] = 2.0 / gp1 * (-ar + gm1 / 2.0 * right.v + x)
                    a = ar + gm1 / 2.0 * (v[k] - right.v)
                    rho[k] = right.rho * (a / ar) ** (2.0 / gm1)
                    p[k] = right.p * (a / ar) ** (2.0 * gamma / gm1)
    return rho, v, p
