"""Approximate Riemann solvers (HLL and HLLC).

Both take left/right primitive face states for a sweep along x1 (the
x2 sweep swaps components first) and return the conserved flux through
each face.  Wave-speed estimates follow Davis/Einfeldt:
``sL = min(v1L - cL, v1R - cR)``, ``sR = max(v1L + cL, v1R + cR)``.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.eos import IdealGasEOS
from repro.hydro.state import ENER, MX1, MX2, RHO, flux_x1, primitive_to_conserved

Array = np.ndarray


def _wave_speeds(wl: Array, wr: Array, eos: IdealGasEOS) -> tuple[Array, Array]:
    cl = eos.sound_speed(wl[RHO], wl[3])
    cr = eos.sound_speed(wr[RHO], wr[3])
    sl = np.minimum(wl[1] - cl, wr[1] - cr)
    sr = np.maximum(wl[1] + cl, wr[1] + cr)
    return sl, sr


def hll_flux(wl: Array, wr: Array, eos: IdealGasEOS) -> Array:
    """Harten-Lax-van Leer two-wave flux."""
    if wl.shape != wr.shape:
        raise ValueError("left/right states must have matching shapes")
    sl, sr = _wave_speeds(wl, wr, eos)
    ul = primitive_to_conserved(wl, eos)
    ur = primitive_to_conserved(wr, eos)
    fl = flux_x1(wl, eos)
    fr = flux_x1(wr, eos)

    flux = np.empty_like(fl)
    denom = sr - sl
    # Avoid 0/0 where both speeds coincide (uniform states).
    safe = np.where(np.abs(denom) < 1e-300, 1.0, denom)
    middle = (sr * fl - sl * fr + sl * sr * (ur - ul)) / safe
    take_l = sl >= 0.0
    take_r = sr <= 0.0
    flux[...] = middle
    flux[:, take_l] = fl[:, take_l]
    flux[:, take_r] = fr[:, take_r]
    return flux


def hllc_flux(wl: Array, wr: Array, eos: IdealGasEOS) -> Array:
    """HLLC flux: restores the contact wave HLL smears.

    Contact speed (Toro eq. 10.37)::

        s* = [pR - pL + rhoL vL (sL - vL) - rhoR vR (sR - vR)]
             / [rhoL (sL - vL) - rhoR (sR - vR)]
    """
    if wl.shape != wr.shape:
        raise ValueError("left/right states must have matching shapes")
    sl, sr = _wave_speeds(wl, wr, eos)
    rl, vl, pl = wl[RHO], wl[1], wl[3]
    rr, vr, pr = wr[RHO], wr[1], wr[3]

    ql = rl * (sl - vl)
    qr = rr * (sr - vr)
    denom = ql - qr
    safe = np.where(np.abs(denom) < 1e-300, 1.0, denom)
    s_star = (pr - pl + vl * ql - vr * qr) / safe

    ul = primitive_to_conserved(wl, eos)
    ur = primitive_to_conserved(wr, eos)
    fl = flux_x1(wl, eos)
    fr = flux_x1(wr, eos)

    def _safe(denom: Array) -> Array:
        """Sign-preserving division guard."""
        return np.where(np.abs(denom) < 1e-300, 1e-300, denom)

    def star_state(u: Array, w: Array, s: Array, q: Array) -> Array:
        rho, v1, p = w[RHO], w[1], w[3]
        factor = q / _safe(s - s_star)
        ustar = np.empty_like(u)
        ustar[RHO] = factor
        ustar[MX1] = factor * s_star
        ustar[MX2] = factor * w[2]
        e = u[ENER] / np.maximum(rho, 1e-300)
        ustar[ENER] = factor * (
            e + (s_star - v1) * (s_star + p / _safe(rho * (s - v1)))
        )
        return ustar

    ul_star = star_state(ul, wl, sl, ql)
    ur_star = star_state(ur, wr, sr, qr)

    flux = np.where(s_star >= 0.0, fl + sl * (ul_star - ul), fr + sr * (ur_star - ur))
    take_l = sl >= 0.0
    take_r = sr <= 0.0
    flux[:, take_l] = fl[:, take_l]
    flux[:, take_r] = fr[:, take_r]
    return flux
