"""Conserved / primitive variable conversions.

Conserved state ``U`` has components ``(rho, mom1, mom2, E)`` on axis
0; primitive state ``W`` has ``(rho, v1, v2, p)``.  Both are
``(4, ...)`` float arrays of any trailing grid shape.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.eos import IdealGasEOS

Array = np.ndarray

#: Component indices, used across the hydro package.
RHO, MX1, MX2, ENER = 0, 1, 2, 3
V1, V2, PRES = 1, 2, 3
NCONS = 4


def primitive_to_conserved(w: Array, eos: IdealGasEOS) -> Array:
    """``(rho, v1, v2, p) -> (rho, rho v1, rho v2, E)``."""
    if w.shape[0] != NCONS:
        raise ValueError(f"state must have {NCONS} leading components")
    rho, v1, v2, p = w[RHO], w[V1], w[V2], w[PRES]
    u = np.empty_like(w)
    u[RHO] = rho
    u[MX1] = rho * v1
    u[MX2] = rho * v2
    u[ENER] = eos.total_energy_density(rho, v1, v2, p)
    return u


def conserved_to_primitive(
    u: Array, eos: IdealGasEOS, pressure_floor: float = 0.0
) -> Array:
    """``(rho, rho v1, rho v2, E) -> (rho, v1, v2, p)``.

    ``pressure_floor`` guards against negative pressures produced by
    truncation error in near-vacuum zones.
    """
    if u.shape[0] != NCONS:
        raise ValueError(f"state must have {NCONS} leading components")
    rho = u[RHO]
    if np.any(rho <= 0.0):
        raise FloatingPointError("non-positive density in conserved state")
    w = np.empty_like(u)
    w[RHO] = rho
    w[V1] = u[MX1] / rho
    w[V2] = u[MX2] / rho
    p = eos.pressure_from_conserved(rho, u[MX1], u[MX2], u[ENER])
    w[PRES] = np.maximum(p, pressure_floor)
    return w


def flux_x1(w: Array, eos: IdealGasEOS) -> Array:
    """Physical Euler flux in the x1 direction from primitives."""
    rho, v1, v2, p = w[RHO], w[V1], w[V2], w[PRES]
    e_tot = eos.total_energy_density(rho, v1, v2, p)
    f = np.empty_like(w)
    f[RHO] = rho * v1
    f[MX1] = rho * v1 * v1 + p
    f[MX2] = rho * v1 * v2
    f[ENER] = (e_tot + p) * v1
    return f


def swap_axes_state(w: Array) -> Array:
    """Swap the roles of x1/x2 components (for the x2 sweep).

    Exchanges ``(v1, v2)`` (or ``(m1, m2)``) so the x2-direction update
    can reuse the x1-direction flux function verbatim.
    """
    out = w.copy()
    out[MX1] = w[MX2]
    out[MX2] = w[MX1]
    return out
