"""2-D Eulerian hydrodynamics.

V2D "solves the equations of Eulerian hydrodynamics and multi-species
flux-limited diffusive radiation transport" -- the radiation test
problem of the paper "does not involve hydrodynamic evolution", but
the hydro module is part of the code whose complexity dilutes the SVE
speedup, so it is built (and exercised by tests, an example, and the
radiative-shock coupled problem).

* :mod:`repro.hydro.eos` -- ideal-gas (gamma-law) equation of state.
* :mod:`repro.hydro.state` -- conserved/primitive variable handling.
* :mod:`repro.hydro.reconstruct` -- piecewise-constant and MUSCL
  (minmod / MC limiter) reconstruction.
* :mod:`repro.hydro.riemann` -- HLL and HLLC approximate Riemann
  solvers, plus the exact solver for validation (Sod shock tube).
* :mod:`repro.hydro.solver` -- dimensionally split finite-volume update
  with CFL control and decomposed-grid support.
"""

from repro.hydro.eos import IdealGasEOS
from repro.hydro.reconstruct import Reconstruction, reconstruct_faces
from repro.hydro.riemann import hll_flux, hllc_flux
from repro.hydro.riemann_exact import exact_riemann
from repro.hydro.solver import HydroBC, HydroSolver2D
from repro.hydro.state import conserved_to_primitive, primitive_to_conserved

__all__ = [
    "IdealGasEOS",
    "conserved_to_primitive",
    "primitive_to_conserved",
    "Reconstruction",
    "reconstruct_faces",
    "hll_flux",
    "hllc_flux",
    "exact_riemann",
    "HydroSolver2D",
    "HydroBC",
]
