"""Preconditioning: sparse approximate inverse (SPAI) and baselines.

"Preconditioning of the linear system is accomplished using a sparse
approximate inverse preconditioner" (paper Sec. I-C, citing Swesty,
Smolarski & Saylor 2004).

SPAI chooses M with a prescribed sparsity pattern (here: the pattern of
A itself) minimizing ``||A M - I||_F`` column by column.  Each column
is a tiny least-squares problem over the pattern; for a banded operator
the normal equations are identical small dense systems gathered from
the diagonals of ``S = A^T A``, so the whole construction vectorizes as
one batched ``m x m`` solve (m = number of bands).

Crucially, the resulting M has the *same banded/stencil structure as
A*, so applying the preconditioner is just another matrix-free stencil
Matvec -- the paper observed SVE speedup "in the routines that applied
the preconditioner to the system matrix" precisely because those
routines are the same vectorizable kernels.

In decomposed runs SPAI is built from the tile-local (block-diagonal)
part of the operator, the standard parallel SPAI practice: the
preconditioner application then needs no halo exchange.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.kernels.stencil import StencilCoefficients
from repro.kernels.suite import KernelSuite
from repro.linalg.banded import stencil_to_bands
from repro.linalg.operators import BandedOperator, StencilOperator
from repro.parallel.halo import BoundaryCondition

Array = np.ndarray


class Preconditioner(ABC):
    """Applies ``M ~= A^-1`` to a vector (right preconditioning)."""

    @abstractmethod
    def apply(self, x: Array, out: Array | None = None) -> Array:
        """Compute ``M x``."""


class IdentityPreconditioner(Preconditioner):
    """No preconditioning (baseline)."""

    def apply(self, x: Array, out: Array | None = None) -> Array:
        if out is None:
            return x.copy()
        out[...] = x
        return out


class JacobiPreconditioner(Preconditioner):
    """``M = diag(A)^-1`` (point-Jacobi / SPAI-0 baseline).

    Parameters
    ----------
    diagonal:
        The operator's main diagonal, operand-shaped.  Zero entries are
        rejected (a singular Jacobi preconditioner).
    """

    def __init__(self, diagonal: Array, suite: KernelSuite | None = None) -> None:
        if np.any(diagonal == 0.0):
            raise ValueError("Jacobi preconditioner requires a nonzero diagonal")
        self._inv = 1.0 / diagonal
        self.suite = suite if suite is not None else KernelSuite()

    @classmethod
    def from_stencil(
        cls, coeffs: StencilCoefficients, suite: KernelSuite | None = None
    ) -> "JacobiPreconditioner":
        return cls(coeffs.diag, suite=suite)

    @classmethod
    def from_banded(
        cls, op: BandedOperator, suite: KernelSuite | None = None
    ) -> "JacobiPreconditioner":
        return cls(op.diagonal(), suite=suite)

    def apply(self, x: Array, out: Array | None = None) -> Array:
        return self.suite.backend.mul(self._inv, x, out=out)


# ---------------------------------------------------------------------------
# Banded SPAI construction
# ---------------------------------------------------------------------------
def spai_bands(
    offsets: Sequence[int], bands: Sequence[Array], ridge: float = 0.0
) -> tuple[list[int], list[Array]]:
    """SPAI of a banded matrix, on the same banded pattern.

    Parameters
    ----------
    offsets, bands:
        Row-indexed banded form (``band[k][i] = A[i, i + offsets[k]]``)
        with structural zeros enforced at the matrix edges.  The offset
        set must be symmetric (``-d`` present for every ``d``) -- true
        for every operator in this package -- so that M's pattern
        equals A's.
    ridge:
        Optional Tikhonov term added to the normal equations (used as a
        retry when a column's little Gram matrix is singular).

    Returns
    -------
    (offsets, mbands):
        The banded form of M minimizing ``||A M - I||_F`` columnwise
        over the pattern.
    """
    offs = [int(o) for o in offsets]
    if sorted(offs) != sorted(-o for o in offs):
        raise ValueError("SPAI pattern requires a symmetric offset set")
    m = len(offs)
    n = bands[0].shape[0]
    bmap = {o: np.asarray(b, dtype=float) for o, b in zip(offs, bands)}

    # S = A^T A, as diagonals at every pairwise offset difference.
    idx = np.arange(n)
    sdiags: dict[int, Array] = {}
    for da, ba in bmap.items():
        for db, bb in bmap.items():
            e = db - da
            u = idx + da
            valid = (u >= 0) & (u < n)
            contrib = ba[idx[valid]] * bb[idx[valid]]
            sdiags.setdefault(e, np.zeros(n))
            np.add.at(sdiags[e], u[valid], contrib)

    # Batched normal equations: for column j, unknowns are the pattern
    # entries m_a at rows j + d_a.  Missing unknowns (rows outside the
    # matrix) are pinned to zero via identity rows.
    G = np.tile(np.eye(m), (n, 1, 1))
    f = np.zeros((n, m))
    j = np.arange(n)
    valid = {a: (j + offs[a] >= 0) & (j + offs[a] < n) for a in range(m)}
    for a in range(m):
        f[valid[a], a] = bmap[offs[a]][j[valid[a]]]
        for b in range(m):
            e = offs[b] - offs[a]
            mask = valid[a] & valid[b]
            u = j[mask] + offs[a]
            vals = sdiags[e][u]
            G[mask, a, b] = vals
        # Re-pin the diagonal for invalid unknowns (overwritten above
        # only on valid rows, so the identity remains elsewhere).

    if ridge > 0.0:
        G += ridge * np.eye(m)

    try:
        sol = np.linalg.solve(G, f[..., None])[..., 0]
    except np.linalg.LinAlgError:
        if ridge > 0.0:
            raise
        scale = float(np.mean(np.abs(bmap[0]))) if 0 in bmap else 1.0
        return spai_bands(offsets, bands, ridge=1e-10 * max(scale, 1.0) ** 2)

    # Scatter columns of M back into bands: M[u, u+o] with o = -d_a,
    # column j = u + o, value sol[j, a].
    mbands: list[Array] = []
    for o in offs:
        a = offs.index(-o)
        band = np.zeros(n)
        # Row-indexed: band[u] = M[u, u+o]; column j = u + o, so u = j - o.
        u = j - o
        ok = (u >= 0) & (u < n)
        band[u[ok]] = sol[j[ok], a]
        mbands.append(band)
    return offs, mbands


def bands_to_stencil(
    offsets: Sequence[int],
    bands: Sequence[Array],
    ns: int,
    nx1: int,
    nx2: int,
) -> StencilCoefficients:
    """Inverse of :func:`repro.linalg.banded.stencil_to_bands`.

    Only the stencil offsets ``0, +/-1, +/-nx1`` and species-coupling
    offsets ``+/-k*nx1*nx2`` are representable; anything else raises.
    """
    blk = nx1 * nx2

    def unflatten(flat: Array) -> Array:
        return flat.reshape(ns, nx2, nx1).transpose(0, 2, 1).copy()

    coupled = any(abs(o) >= blk and o != 0 for o in offsets)
    c = StencilCoefficients.zeros(ns, nx1, nx2, coupled=coupled)
    for off, band in zip(offsets, bands):
        if off == 0:
            c.diag[...] = unflatten(band)
        elif off == -1:
            c.west[...] = unflatten(band)
        elif off == 1:
            c.east[...] = unflatten(band)
        elif off == -nx1:
            c.south[...] = unflatten(band)
        elif off == nx1:
            c.north[...] = unflatten(band)
        elif off % blk == 0 and abs(off) // blk < ns:
            k = off // blk
            full = unflatten(band)
            for s in range(ns):
                sp = s + k
                if 0 <= sp < ns:
                    c.coupling[s, sp] = full[s]
        else:
            raise ValueError(f"band offset {off} is not stencil-representable")
    return c


class SPAIPreconditioner(Preconditioner):
    """Stencil-pattern SPAI applied as a matrix-free stencil Matvec."""

    def __init__(self, mcoeffs: StencilCoefficients, suite: KernelSuite | None = None) -> None:
        self.suite = suite if suite is not None else KernelSuite()
        self._op = StencilOperator(
            mcoeffs, suite=self.suite, bc=BoundaryCondition.DIRICHLET0, cart=None
        )
        self.mcoeffs = mcoeffs

    @classmethod
    def from_stencil(
        cls,
        coeffs: StencilCoefficients,
        bc: BoundaryCondition | dict[str, BoundaryCondition] = BoundaryCondition.DIRICHLET0,
        suite: KernelSuite | None = None,
    ) -> "SPAIPreconditioner":
        """Build SPAI for the (tile-local) operator-with-BCs."""
        offsets, bands = stencil_to_bands(coeffs, bc)
        moffs, mbands = spai_bands(offsets, bands)
        ns, (n1, n2) = coeffs.nspec, coeffs.shape
        mcoeffs = bands_to_stencil(moffs, mbands, ns, n1, n2)
        return cls(mcoeffs, suite=suite)

    def apply(self, x: Array, out: Array | None = None) -> Array:
        return self._op.apply(x, out=out)


class BandedSPAIPreconditioner(Preconditioner):
    """SPAI for 1-D banded systems (the Table-II driver path)."""

    def __init__(self, op: BandedOperator, suite: KernelSuite | None = None) -> None:
        self.suite = suite if suite is not None else op.suite
        moffs, mbands = spai_bands(op.offsets, op.bands)
        self._mop = BandedOperator(moffs, mbands, suite=self.suite)

    def apply(self, x: Array, out: Array | None = None) -> Array:
        return self._mop.apply(x, out=out)
