"""BiCGSTAB with optional ganged inner products.

V2D's linear solver is "a restructured version of the BiCGSTAB
algorithm, which gangs inner products to reduce the number of parallel
global reduction operations required per iteration" (paper Sec. I-C).

Two variants are provided:

* ``ganged=False`` -- the textbook algorithm [van der Vorst 1992]:
  six global reductions per iteration (rho, the alpha denominator, the
  early-exit norm of s, the two omega dots, and the residual norm).
* ``ganged=True`` -- the restructured algorithm: inner products whose
  operands coexist are computed in one fused pass and carried by a
  single reduction.  The norm of ``s``, the norm of the new residual
  and the next iteration's ``rho`` are recovered from ganged dots via
  the identities::

      ||s||^2      = (r,r) - 2 a (r,v) + a^2 (v,v)
      ||r_new||^2  = (s,s) - 2 w (t,s) + w^2 (t,t)
      rho_new      = (r0^,s) - w (r0^,t)

  leaving exactly two reductions per iteration.

Both variants are right-preconditioned (``A M^-1 y = b``, ``x = M^-1
y``), so the preconditioner application is itself just another stencil
Matvec when ``M`` is a SPAI operator.

Derived norms are validated: whenever the derived residual norm signals
convergence, the solver recomputes the true residual (one extra Matvec)
and keeps iterating if rounding in the identities lied.

The ganged variant additionally has a *fused* form (``fused=True``, the
default): each Matvec and the ganged dots against its result become one
fused kernel launch (:meth:`LinearOperator.apply_dots`), the two-DAXPY
solution update becomes one DDAXPY, and all scratch vectors come from a
preallocated :class:`~repro.kernels.fused.SolverWorkspace` reused
across solves, so the inner loop is allocation-free.  On the vector
backend the fused iteration is bit-identical to the unfused ganged one
(same element operations, same association, same reduction order); on
the scalar backend the fused DDAXPY reassociates the update, so results
agree to rounding error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.kernels.fused import SolverWorkspace
from repro.kernels.suite import KernelSuite
from repro.linalg.operators import LinearOperator
from repro.linalg.spai import Preconditioner
from repro.monitor.trace import Tracer
from repro.parallel.comm import Communicator

Array = np.ndarray

#: Reduction counts per iteration, used by tests and the perf model.
REDUCTIONS_PER_ITER_CLASSIC = 6
REDUCTIONS_PER_ITER_GANGED = 2


class DotContext:
    """Global inner products: local fused pass + one reduction."""

    def __init__(self, suite: KernelSuite, comm: Communicator | None = None) -> None:
        self.suite = suite
        self.comm = comm
        self.reductions = 0

    def dot(self, x: Array, y: Array) -> float:
        local = self.suite.dprod(x, y)
        self.reductions += 1
        if self.comm is not None and self.comm.size > 1:
            return float(self.comm.allreduce(local))
        if self.comm is not None:
            self.comm.counters.reductions += 1
        return local

    def gang(self, pairs: Sequence[tuple[Array, Array]]) -> np.ndarray:
        """Several inner products, one global reduction."""
        local = self.suite.dprod_gang(pairs)
        self.reductions += 1
        if self.comm is not None and self.comm.size > 1:
            return np.asarray(self.comm.allreduce(local))
        if self.comm is not None:
            self.comm.counters.reductions += 1
        return local

    def gang_matvec(
        self,
        op: LinearOperator,
        x: Array,
        dots: Sequence[object],
        out: Array | None = None,
    ) -> tuple[Array, np.ndarray]:
        """Fused Matvec + ganged dots, one global reduction."""
        out, local = op.apply_dots(x, dots, out=out)
        self.reductions += 1
        if self.comm is not None and self.comm.size > 1:
            return out, np.asarray(self.comm.allreduce(local))
        if self.comm is not None:
            self.comm.counters.reductions += 1
        return out, np.asarray(local)

    def reduce_scalar(self, local: float) -> float:
        """Globally reduce one locally computed inner product."""
        self.reductions += 1
        if self.comm is not None and self.comm.size > 1:
            return float(self.comm.allreduce(local))
        if self.comm is not None:
            self.comm.counters.reductions += 1
        return float(local)


@dataclass
class SolveResult:
    """Outcome of a Krylov solve."""

    x: Array
    converged: bool
    iterations: int
    residual_norm: float          # true ||b - A x|| at exit
    relative_residual: float      # residual_norm / ||b||
    reductions: int               # global reduction operations used
    matvecs: int                  # operator applications (excl. precond)
    precond_applies: int
    breakdowns: int = 0
    fused: bool = False           # solved via the fused-kernel path
    history: list[float] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult(converged={self.converged}, iters={self.iterations}, "
            f"rel_res={self.relative_residual:.3e}, reductions={self.reductions})"
        )


def _norm_from_sq(v: float) -> float:
    """``sqrt`` of a reduced sum of squares, poisoning impossibilities.

    ``(x, x)`` is a sum of non-negative terms, so a negative reduction
    can only mean a corrupted value (e.g. an injected comm fault).
    Clamping it to zero would fake an exact zero norm -- and a zero
    *rhs* norm silently commits ``x = 0`` as converged -- so negative
    inputs poison to NaN, which every caller treats as a breakdown.
    Finite non-negative inputs are untouched (bitwise-identical clean
    runs).
    """
    if v < 0.0:
        return float("nan")
    return float(np.sqrt(v))


def _true_residual(
    op: LinearOperator,
    b: Array,
    x: Array,
    suite: KernelSuite,
    dots: DotContext,
    fused: bool = False,
) -> tuple[Array, float]:
    ax = op.apply(x)
    if fused:
        # One launch: residual update + its squared norm.
        r, rr_local = suite.dscal_norm(b, 1.0, ax)
        return r, _norm_from_sq(dots.reduce_scalar(rr_local))
    r = suite.dscal(b, 1.0, ax)  # b - Ax
    return r, _norm_from_sq(dots.dot(r, r))


def bicgstab(
    op: LinearOperator,
    b: Array,
    x0: Array | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 1000,
    M: Preconditioner | None = None,
    suite: KernelSuite | None = None,
    comm: Communicator | None = None,
    ganged: bool = True,
    fused: bool = True,
    workspace: SolverWorkspace | None = None,
    max_restarts: int = 10,
    callback: Callable[[int, float], None] | None = None,
    tracer: Tracer | None = None,
    trace_rank: int = 0,
) -> SolveResult:
    """Solve ``A x = b`` with (preconditioned) BiCGSTAB.

    Parameters
    ----------
    op:
        The system operator (matrix-free).
    b:
        Right-hand side, operand-shaped.
    x0:
        Initial guess (zero when omitted).
    tol:
        Convergence on the *relative* residual ``||r|| <= tol * ||b||``.
    M:
        Right preconditioner (applied as ``M.apply``); ``None`` for
        unpreconditioned.
    suite:
        Kernel suite (execution backend + accounting); defaults to the
        operator's suite when it has one.
    comm:
        Communicator for decomposed operands; reductions become
        all-reduces.
    ganged:
        Use V2D's restructured two-reduction iteration (default) or the
        textbook six-reduction one.
    fused:
        With ``ganged``, run the fused-kernel hot path: Matvec + ganged
        dots in one launch, DDAXPY solution updates, and workspace
        reuse.  Ignored for the textbook variant.
    workspace:
        Preallocated :class:`~repro.kernels.fused.SolverWorkspace` to
        reuse across solves (one is created per call when omitted).
    max_restarts:
        BiCGSTAB breakdown recoveries (``rho ~ 0``) before giving up.
    callback:
        Called as ``callback(iteration, residual_norm)`` once per
        iteration with the (possibly derived) residual norm.
    tracer:
        Optional :class:`~repro.monitor.trace.Tracer`; when given, the
        solver marks every iteration (and every breakdown restart) on
        rank ``trace_rank``'s track.  ``None`` (the default) adds no
        work to the iteration at all.
    """
    if suite is None:
        suite = getattr(op, "suite", None) or KernelSuite()
    if b.shape != tuple(op.operand_shape):
        raise ValueError(f"rhs shape {b.shape} != operand shape {op.operand_shape}")
    use_fused = fused and ganged
    dots = DotContext(suite, comm)
    if suite.counters is not None:
        suite.counters.linear_solves += 1
    mv = 0
    mapplies = 0
    breakdowns = 0
    history: list[float] = []

    x = b * 0.0 if x0 is None else x0.copy()
    if x0 is None:
        r = b.copy()
    else:
        r = op.apply(x)
        mv += 1
        r = suite.dscal(b, 1.0, r)  # r = b - A x0

    rr: float | None = None
    if use_fused:
        if x0 is None:
            # r is a fresh copy of b, so (r, r) is (b, b) -- one
            # reduction covers both.
            bb = dots.dot(b, b)
            rr = float(bb)
        else:
            bb, rr = (float(val) for val in dots.gang([(b, b), (r, r)]))
    else:
        bb = dots.dot(b, b)
    bnorm = _norm_from_sq(float(bb))
    if bnorm == 0.0:
        # Zero RHS: the solution is zero (relative residual undefined;
        # report absolute zero residual).
        return SolveResult(
            x=np.zeros_like(b), converged=True, iterations=0, residual_norm=0.0,
            relative_residual=0.0, reductions=dots.reductions, matvecs=mv,
            precond_applies=0, fused=use_fused,
        )
    target = tol * bnorm

    if rr is None:
        rr = dots.dot(r, r)
    rnorm = _norm_from_sq(float(rr))
    if not (np.isfinite(bnorm) and np.isfinite(rnorm)):
        # Poisoned rhs or initial guess: nothing to iterate on.
        return SolveResult(
            x=x, converged=False, iterations=0, residual_norm=rnorm,
            relative_residual=rnorm / bnorm if bnorm else np.inf,
            reductions=dots.reductions, matvecs=mv, precond_applies=0,
            fused=use_fused, history=[rnorm],
        )
    if rnorm <= target:
        return SolveResult(
            x=x, converged=True, iterations=0, residual_norm=rnorm,
            relative_residual=rnorm / bnorm, reductions=dots.reductions,
            matvecs=mv, precond_applies=0, fused=use_fused, history=[rnorm],
        )

    rhat = r.copy()
    rho = rr          # (rhat, r) with rhat = r
    wbuf: Array | None = None
    if use_fused:
        # All inner-loop scratch comes from the reusable workspace, so
        # iterating allocates nothing (x/r/rhat stay fresh: x escapes
        # via the result and r is rebound on restarts).
        ws = workspace if workspace is not None else SolverWorkspace()
        ws.ensure(b.shape, dtype=b.dtype)
        p = ws.array("p")
        p[...] = r
        v = ws.array("v")
        v[...] = 0.0
        phat = ws.array("phat")
        shat = ws.array("shat")
        s = ws.array("s")
        t = ws.array("t")
        wbuf = ws.array("work")
    else:
        p = r.copy()
        v = np.zeros_like(b)
        phat = np.empty_like(b)
        shat = np.empty_like(b)
        s = np.empty_like(b)
        t = np.empty_like(b)
    alpha = omega = 1.0
    converged = False
    it = 0

    def trace_iter(iteration: int, norm: float) -> None:
        if tracer is not None:
            tracer.instant(
                "bicgstab_iter", rank=trace_rank, cat="solver",
                args={"iter": iteration, "rnorm": norm},
            )

    def precond(vec: Array, out: Array) -> Array:
        nonlocal mapplies
        if M is None:
            out[...] = vec
            return out
        mapplies += 1
        return M.apply(vec, out=out)

    def restart() -> bool:
        """Recover from a breakdown; returns False when out of budget."""
        nonlocal rhat, rho, rr, rnorm, breakdowns, r, x, mv
        breakdowns += 1
        if tracer is not None:
            tracer.instant(
                "bicgstab_restart", rank=trace_rank, cat="solver",
                args={"iter": it, "breakdowns": breakdowns},
            )
        if breakdowns > max_restarts:
            return False
        r, rnorm = _true_residual(op, b, x, suite, dots, fused=use_fused)
        mv += 1
        if not np.isfinite(rnorm):
            # The iterate itself is poisoned; restarting from it cannot
            # recover, so give up and let the caller escalate.
            return False
        rr = rnorm * rnorm
        rhat = r.copy()
        rho = rr
        p[...] = r
        v[...] = 0.0
        return True

    while it < maxiter:
        it += 1

        precond(p, phat)
        if use_fused:
            # One launch: Matvec + the three ganged dots on its result.
            _, (rhv, rv, vv) = dots.gang_matvec(op, phat, [rhat, r, None], out=v)
            mv += 1
        else:
            op.apply(phat, out=v)
            mv += 1
            if ganged:
                rhv, rv, vv = dots.gang([(rhat, v), (r, v), (v, v)])
            else:
                rhv = dots.dot(rhat, v)
        if rhv == 0.0 or not np.isfinite(rhv):
            if not restart():
                break
            continue
        alpha = rho / rhv

        # s = r - alpha v
        suite.dscal(r, alpha, v, out=s)
        if ganged:
            ss_derived = max(rr - 2.0 * alpha * rv + alpha * alpha * vv, 0.0)
            snorm = float(np.sqrt(ss_derived))
        else:
            snorm = _norm_from_sq(dots.dot(s, s))
        if not np.isfinite(snorm):
            if not restart():
                break
            continue

        if snorm <= target:
            suite.daxpy(alpha, phat, x, out=x, work=wbuf)
            r, rnorm = _true_residual(op, b, x, suite, dots, fused=use_fused)
            mv += 1
            rr = rnorm * rnorm
            history.append(rnorm)
            trace_iter(it, rnorm)
            if callback is not None:
                callback(it, rnorm)
            if rnorm <= target:
                converged = True
                break
            # Rounding lied; continue from the recomputed residual.
            if not restart():
                break
            continue

        precond(s, shat)
        if use_fused:
            # One launch: Matvec + the five ganged dots ((s, s) and
            # (rhat, s) ride along as independent pairs).
            _, (ts, tt, ss, rhs_, rht) = dots.gang_matvec(
                op, shat, [s, None, (s, s), (rhat, s), rhat], out=t
            )
            mv += 1
        else:
            op.apply(shat, out=t)
            mv += 1
            if ganged:
                ts, tt, ss, rhs_, rht = dots.gang(
                    [(t, s), (t, t), (s, s), (rhat, s), (rhat, t)]
                )
            else:
                ts = dots.dot(t, s)
                tt = dots.dot(t, t)
        if tt == 0.0 or not np.isfinite(tt) or not np.isfinite(ts):
            if not restart():
                break
            continue
        omega = ts / tt

        # x += alpha*phat + omega*shat
        if use_fused:
            # One DDAXPY launch; on the vector backend its association
            # (omega*shat + (alpha*phat + x)) matches the two-DAXPY
            # composition bit for bit.
            suite.ddaxpy(alpha, phat, omega, shat, x, out=x, work=wbuf)
        else:
            suite.daxpy(alpha, phat, x, out=x)
            suite.daxpy(omega, shat, x, out=x)
        # r = s - omega t
        suite.dscal(s, omega, t, out=r)

        if ganged:
            rr = max(ss - 2.0 * omega * ts + omega * omega * tt, 0.0)
            rnorm = float(np.sqrt(rr))
            rho_next = rhs_ - omega * rht
        else:
            rr = dots.dot(r, r)
            rnorm = _norm_from_sq(float(rr))
            rho_next = None

        history.append(rnorm)
        trace_iter(it, rnorm)
        if callback is not None:
            callback(it, rnorm)

        if not np.isfinite(rnorm):
            if not restart():
                break
            continue

        if rnorm <= target:
            r, rnorm = _true_residual(op, b, x, suite, dots, fused=use_fused)
            mv += 1
            rr = rnorm * rnorm
            if rnorm <= target:
                converged = True
                break
            if not restart():
                break
            continue

        if omega == 0.0:
            if not restart():
                break
            continue

        if ganged:
            rho_new = rho_next
        else:
            rho_new = dots.dot(rhat, r)
        if rho_new == 0.0 or not np.isfinite(rho_new):
            if not restart():
                break
            continue

        beta = (rho_new / rho) * (alpha / omega)
        # p = r + beta*(p - omega*v)  ==  beta*p + (-beta*omega)*v + r
        suite.ddaxpy(beta, p, -beta * omega, v, r, out=p, work=wbuf)
        rho = rho_new

    if not converged:
        _, rnorm = _true_residual(op, b, x, suite, dots, fused=use_fused)
        mv += 1
        converged = rnorm <= target

    if suite.counters is not None:
        suite.counters.solver_iterations += it

    return SolveResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=rnorm,
        relative_residual=rnorm / bnorm,
        reductions=dots.reductions,
        matvecs=mv,
        precond_applies=mapplies,
        breakdowns=breakdowns,
        fused=use_fused,
        history=history,
    )
