"""Assembled (banded / CSR / dense) forms of the stencil operator.

The production solver never stores the matrix; these assembly routines
exist for three purposes:

1. *Validation* -- tests assert the matrix-free Matvec agrees with the
   assembled matrix to machine precision.
2. *Fig. 1* -- the paper shows the sparsity pattern of the would-be
   matrix: with dictionary ordering it is five-banded, "on either side
   of the diagonal are two adjacent diagonals with two outlying
   diagonals spaced farther from the diagonal.  The x1 parameter
   indicates the distance of the two outlying diagonals".
3. *SPAI setup* -- the preconditioner works from the banded form of the
   (tile-local) operator.

Dictionary ordering: flat index ``p = i + j*nx1 + s*nx1*nx2`` (x1
fastest, species slowest), so x1 neighbours sit at offsets ``+/-1``,
x2 neighbours at ``+/-nx1`` -- the paper's five bands -- and pointwise
species coupling at ``+/-k*nx1*nx2``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kernels.stencil import StencilCoefficients
from repro.parallel.halo import BoundaryCondition

Array = np.ndarray

#: The four sides with (coefficient name, boundary predicate builder).
_SIDES = ("west", "east", "south", "north")


def band_offsets(ns: int, nx1: int, nx2: int, coupled: bool = False) -> list[int]:
    """Offsets of every band of the assembled system, sorted.

    The five spatial bands ``0, +/-1, +/-nx1`` always; species-coupling
    bands ``+/-k*nx1*nx2`` for ``k = 1..ns-1`` when ``coupled``.
    """
    offs = [0, -1, 1, -nx1, nx1]
    if coupled:
        blk = nx1 * nx2
        for k in range(1, ns):
            offs += [-k * blk, k * blk]
    return sorted(offs)


#: Backwards-compatible alias used in a few call sites.
SPECIES_BLOCK_OFFSETS = band_offsets


def _fold_reflect(coeffs: StencilCoefficients, bc) -> StencilCoefficients:
    """Fold reflecting boundaries into the diagonal.

    A REFLECT ghost equals the adjacent interior value, so the boundary
    stencil coefficient moves onto the diagonal of the same row.
    """
    def bc_for(side: str) -> BoundaryCondition:
        return bc if isinstance(bc, BoundaryCondition) else bc[side]

    c = coeffs.copy()
    if bc_for("west") is BoundaryCondition.REFLECT:
        c.diag[:, 0, :] += c.west[:, 0, :]
    if bc_for("east") is BoundaryCondition.REFLECT:
        c.diag[:, -1, :] += c.east[:, -1, :]
    if bc_for("south") is BoundaryCondition.REFLECT:
        c.diag[:, :, 0] += c.south[:, :, 0]
    if bc_for("north") is BoundaryCondition.REFLECT:
        c.diag[:, :, -1] += c.north[:, :, -1]
    return c


def stencil_to_bands(
    coeffs: StencilCoefficients,
    bc: BoundaryCondition | dict[str, BoundaryCondition] = BoundaryCondition.DIRICHLET0,
) -> tuple[list[int], list[Array]]:
    """Exact banded form of the operator-with-boundary-conditions.

    Returns ``(offsets, bands)`` with the row-indexed convention
    ``band[k][p] = A[p, p + offsets[k]]`` and full-length (``N``) band
    arrays.  Entries that would cross a grid edge (and therefore a
    species-block edge) are structurally zero.
    """
    c = _fold_reflect(coeffs, bc)
    ns, (n1, n2) = c.nspec, c.shape
    blk = n1 * n2
    n = ns * blk

    def flatten(a: Array) -> Array:
        # (ns, nx1, nx2) -> flat with x1 fastest: transpose to
        # (ns, nx2, nx1) then ravel C-order.
        return np.ascontiguousarray(a.transpose(0, 2, 1)).reshape(-1)

    west = c.west.copy()
    east = c.east.copy()
    south = c.south.copy()
    north = c.north.copy()
    # Grid-edge entries are structural zeros in the matrix: under
    # DIRICHLET0 the ghost is zero; under REFLECT the coefficient was
    # folded into the diagonal above (the off-diagonal entry vanishes).
    west[:, 0, :] = 0.0
    east[:, -1, :] = 0.0
    south[:, :, 0] = 0.0
    north[:, :, -1] = 0.0

    offsets = [0, -1, 1, -n1, n1]
    bands = [flatten(c.diag), flatten(west), flatten(east), flatten(south), flatten(north)]

    if c.coupling is not None:
        for s in range(ns):
            for sp in range(ns):
                if s == sp or not c.coupling[s, sp].any():
                    continue
                off = (sp - s) * blk
                band = np.zeros(n)
                band[s * blk : (s + 1) * blk] = flatten(c.coupling[s, sp][None])[:blk]
                offsets.append(off)
                bands.append(band)

    # Merge duplicate coupling offsets (e.g. ns=3: s=0->1 and s=1->2
    # both have offset +blk but live in disjoint row ranges).
    merged: dict[int, Array] = {}
    for off, band in zip(offsets, bands):
        if off in merged:
            merged[off] = merged[off] + band
        else:
            merged[off] = band.copy()
    offs = sorted(merged)
    return offs, [merged[o] for o in offs]


def assemble_csr(
    coeffs: StencilCoefficients,
    bc: BoundaryCondition | dict[str, BoundaryCondition] = BoundaryCondition.DIRICHLET0,
) -> sp.csr_matrix:
    """Assemble the full sparse matrix (validation / SPAI setup)."""
    offsets, bands = stencil_to_bands(coeffs, bc)
    n = bands[0].shape[0]
    diags = []
    for off, band in zip(offsets, bands):
        if off >= 0:
            diags.append(band[: n - off])
        else:
            diags.append(band[-off:])
    return sp.diags(diags, offsets, shape=(n, n), format="csr")


def assemble_dense(
    coeffs: StencilCoefficients,
    bc: BoundaryCondition | dict[str, BoundaryCondition] = BoundaryCondition.DIRICHLET0,
) -> Array:
    """Dense equivalent (small validation problems only)."""
    return assemble_csr(coeffs, bc).toarray()


def sparsity_block(
    nx1: int, nx2: int, ns: int = 2, block: int = 400, coupled: bool = False
) -> Array:
    """Boolean sparsity pattern of the upper-left ``block x block``
    corner of the would-be matrix (the view the paper's Fig. 1 shows:
    the upper-left 400 x 400 of the 40,000 x 40,000 system).

    Built analytically from the band structure -- the full matrix is
    never formed, matching how one would draw the figure.
    """
    n = ns * nx1 * nx2
    block = min(block, n)
    pat = np.zeros((block, block), dtype=bool)
    rows = np.arange(block)
    for off in band_offsets(ns, nx1, nx2, coupled=coupled):
        cols = rows + off
        ok = (cols >= 0) & (cols < block)
        r, cvals = rows[ok], cols[ok]
        if abs(off) == 1:
            # x1-neighbour band: zero where the row sits on an x1 edge.
            i = r % nx1
            keep = (i != nx1 - 1) if off > 0 else (i != 0)
            r, cvals = r[keep], cvals[keep]
        elif abs(off) == nx1:
            j = (r % (nx1 * nx2)) // nx1
            keep = (j != nx2 - 1) if off > 0 else (j != 0)
            r, cvals = r[keep], cvals[keep]
        pat[r, cvals] = True
    return pat


def pattern_report(nx1: int, nx2: int, ns: int = 2) -> str:
    """Text summary of the Fig. 1 structure for a given grid."""
    n = ns * nx1 * nx2
    offs = band_offsets(ns, nx1, nx2)
    lines = [
        f"System: {nx1} x {nx2} zones x {ns} species = {n:,} equations",
        f"Banded structure ({len(offs)} bands, dictionary ordering, x1 fastest):",
        f"  band offsets: {offs}",
        f"  adjacent diagonals at +/-1 (x1 neighbours)",
        f"  outlying diagonals at +/-{nx1} (x2 neighbours; distance = x1 zones)",
    ]
    return "\n".join(lines)
