"""Restarted GMRES baseline.

The solver-comparison study behind V2D's choices (Swesty, Smolarski &
Saylor 2004, the paper's ref. [7]) measured Krylov methods for exactly
these multi-group flux-limited diffusion systems.  GMRES(m) is the
classic alternative to BiCGSTAB for non-symmetric systems: monotone
residuals and no breakdowns, at the cost of ``m`` stored basis vectors
and one global reduction per Arnoldi step (modified Gram-Schmidt),
versus BiCGSTAB's two vectors and two ganged reductions per iteration.

Right-preconditioned (like the package's BiCGSTAB), with Givens
rotations maintaining the least-squares residual incrementally.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.kernels.suite import KernelSuite
from repro.linalg.bicgstab import DotContext, SolveResult, _norm_from_sq
from repro.linalg.operators import LinearOperator
from repro.linalg.spai import Preconditioner
from repro.parallel.comm import Communicator

Array = np.ndarray


def gmres(
    op: LinearOperator,
    b: Array,
    x0: Array | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 1000,
    restart: int = 30,
    M: Preconditioner | None = None,
    suite: KernelSuite | None = None,
    comm: Communicator | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> SolveResult:
    """Solve ``A x = b`` with right-preconditioned GMRES(restart).

    Same conventions as :func:`repro.linalg.bicgstab.bicgstab`:
    relative tolerance on the true residual, operand-shaped vectors,
    optional communicator for decomposed operands.  ``maxiter`` counts
    total Arnoldi steps (inner iterations), not restarts.
    """
    if suite is None:
        suite = getattr(op, "suite", None) or KernelSuite()
    if b.shape != tuple(op.operand_shape):
        raise ValueError(f"rhs shape {b.shape} != operand shape {op.operand_shape}")
    if restart < 1:
        raise ValueError("restart length must be >= 1")
    dots = DotContext(suite, comm)
    if suite.counters is not None:
        suite.counters.linear_solves += 1
    mv = 0
    mapplies = 0
    history: list[float] = []

    bnorm = _norm_from_sq(dots.dot(b, b))
    if bnorm == 0.0:
        return SolveResult(
            x=np.zeros_like(b), converged=True, iterations=0, residual_norm=0.0,
            relative_residual=0.0, reductions=dots.reductions, matvecs=0,
            precond_applies=0,
        )
    if not np.isfinite(bnorm):
        # Poisoned rhs (or corrupted reduction): nothing to iterate on.
        return SolveResult(
            x=np.zeros_like(b) if x0 is None else x0.copy(), converged=False,
            iterations=0, residual_norm=float("nan"),
            relative_residual=float("nan"), reductions=dots.reductions,
            matvecs=0, precond_applies=0,
        )
    target = tol * bnorm

    x = b * 0.0 if x0 is None else x0.copy()

    def precond(vec: Array) -> Array:
        nonlocal mapplies
        if M is None:
            return vec.copy()
        mapplies += 1
        return M.apply(vec)

    it = 0
    converged = False
    rnorm = float("inf")

    while it < maxiter and not converged:
        # residual for this cycle
        ax = op.apply(x)
        mv += 1
        r = suite.dscal(b, 1.0, ax)
        rnorm = _norm_from_sq(dots.dot(r, r))
        history.append(rnorm)
        if not np.isfinite(rnorm):
            # Poisoned iterate: no basis can be built from it.
            break
        if rnorm <= target:
            converged = True
            break

        m = min(restart, maxiter - it)
        V = [r / rnorm]                       # Krylov basis (grid-shaped)
        Z: list[Array] = []                   # preconditioned directions
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = rnorm
        k_used = 0

        for k in range(m):
            it += 1
            k_used = k + 1
            z = precond(V[k])
            Z.append(z)
            w = op.apply(z)
            mv += 1
            # Modified Gram-Schmidt; one ganged reduction per step.
            hcol = dots.gang([(V[j], w) for j in range(k + 1)])
            for j in range(k + 1):
                H[j, k] = hcol[j]
                w = suite.daxpy(-hcol[j], V[j], w)
            hk1 = _norm_from_sq(dots.dot(w, w))
            if not np.isfinite(hk1):
                # Corrupted orthogonalization: close the cycle early on
                # whatever basis was built so far.
                hk1 = 0.0
            H[k + 1, k] = hk1

            # Apply stored Givens rotations to the new column.
            for j in range(k):
                t = cs[j] * H[j, k] + sn[j] * H[j + 1, k]
                H[j + 1, k] = -sn[j] * H[j, k] + cs[j] * H[j + 1, k]
                H[j, k] = t
            # New rotation annihilating H[k+1, k].
            denom = float(np.hypot(H[k, k], H[k + 1, k]))
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]

            rnorm = abs(float(g[k + 1]))
            history.append(rnorm)
            if callback is not None:
                callback(it, rnorm)
            if rnorm <= target or hk1 == 0.0 or not np.isfinite(rnorm):
                break
            V.append(w / hk1)

        # Solve the small triangular system and update x (skipping the
        # update entirely if corruption made the coefficients non-finite,
        # so the incoming x survives for the caller to diagnose).
        y = np.zeros(k_used)
        for i in range(k_used - 1, -1, -1):
            y[i] = (g[i] - H[i, i + 1 : k_used] @ y[i + 1 : k_used]) / H[i, i]
        if np.all(np.isfinite(y)):
            for i in range(k_used):
                suite.daxpy(float(y[i]), Z[i], x, out=x)

        if rnorm <= target:
            # verify with the true residual on the next loop turn
            ax = op.apply(x)
            mv += 1
            rtrue = suite.dscal(b, 1.0, ax)
            rnorm = _norm_from_sq(dots.dot(rtrue, rtrue))
            converged = rnorm <= target
            if converged:
                break

    if not converged:
        ax = op.apply(x)
        mv += 1
        rtrue = suite.dscal(b, 1.0, ax)
        rnorm = _norm_from_sq(dots.dot(rtrue, rtrue))
        converged = rnorm <= target

    if suite.counters is not None:
        suite.counters.solver_iterations += it

    return SolveResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=rnorm,
        relative_residual=rnorm / bnorm,
        reductions=dots.reductions,
        matvecs=mv,
        precond_applies=mapplies,
        history=history,
    )
