"""Conjugate Gradient baseline.

BiCGSTAB "is an extension of the Conjugate Gradient (CG) method (which
is designed for a symmetric linear system ...) to those cases where the
system matrix A is non-symmetric" (paper Sec. II-A).  The pure
radiation-diffusion operator without species coupling *is* symmetric,
so CG serves both as a correctness cross-check and as the baseline the
2004 solver-comparison paper (ref. [7]) measured BiCGSTAB against.

Implementation: textbook preconditioned CG over the same kernel suite
and global-dot machinery as :func:`repro.linalg.bicgstab.bicgstab`
(three reductions per iteration).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.kernels.suite import KernelSuite
from repro.linalg.bicgstab import DotContext, SolveResult
from repro.linalg.operators import LinearOperator
from repro.linalg.spai import Preconditioner
from repro.parallel.comm import Communicator

Array = np.ndarray


def conjugate_gradient(
    op: LinearOperator,
    b: Array,
    x0: Array | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 1000,
    M: Preconditioner | None = None,
    suite: KernelSuite | None = None,
    comm: Communicator | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> SolveResult:
    """Solve the symmetric system ``A x = b`` with preconditioned CG.

    Same conventions as :func:`repro.linalg.bicgstab.bicgstab`
    (relative tolerance, operand-shaped vectors, optional communicator
    for decomposed operands).  Symmetry of ``op`` is assumed, not
    checked.
    """
    if suite is None:
        suite = getattr(op, "suite", None) or KernelSuite()
    if b.shape != tuple(op.operand_shape):
        raise ValueError(f"rhs shape {b.shape} != operand shape {op.operand_shape}")
    dots = DotContext(suite, comm)
    if suite.counters is not None:
        suite.counters.linear_solves += 1
    mv = 0
    mapplies = 0
    history: list[float] = []

    x = b * 0.0 if x0 is None else x0.copy()
    if x0 is None:
        r = b.copy()
    else:
        r = op.apply(x)
        mv += 1
        r = suite.dscal(b, 1.0, r)

    bnorm = float(np.sqrt(max(dots.dot(b, b), 0.0)))
    if bnorm == 0.0:
        return SolveResult(
            x=np.zeros_like(b), converged=True, iterations=0, residual_norm=0.0,
            relative_residual=0.0, reductions=dots.reductions, matvecs=mv,
            precond_applies=0,
        )
    target = tol * bnorm

    def precond(vec: Array) -> Array:
        nonlocal mapplies
        if M is None:
            return vec
        mapplies += 1
        return M.apply(vec)

    z = precond(r).copy() if M is not None else r.copy()
    p = z.copy()
    rz = dots.dot(r, z)
    rnorm = float(np.sqrt(max(dots.dot(r, r), 0.0)))
    converged = rnorm <= target
    it = 0
    q = np.empty_like(b)

    while not converged and it < maxiter:
        it += 1
        op.apply(p, out=q)
        mv += 1
        pq = dots.dot(p, q)
        if pq == 0.0:
            break
        alpha = rz / pq
        suite.daxpy(alpha, p, x, out=x)
        suite.dscal(r, alpha, q, out=r)   # r -= alpha q
        rnorm = float(np.sqrt(max(dots.dot(r, r), 0.0)))
        history.append(rnorm)
        if callback is not None:
            callback(it, rnorm)
        if rnorm <= target:
            converged = True
            break
        z = precond(r)
        rz_new = dots.dot(r, z)
        beta = rz_new / rz
        suite.daxpy(beta, p, z, out=p)    # p = z + beta p
        rz = rz_new

    # True residual at exit (matches bicgstab's reporting contract).
    ax = op.apply(x)
    mv += 1
    rtrue = suite.dscal(b, 1.0, ax)
    rnorm = float(np.sqrt(max(dots.dot(rtrue, rtrue), 0.0)))
    converged = rnorm <= target

    if suite.counters is not None:
        suite.counters.solver_iterations += it

    return SolveResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=rnorm,
        relative_residual=rnorm / bnorm,
        reductions=dots.reductions,
        matvecs=mv,
        precond_applies=mapplies,
        history=history,
    )
