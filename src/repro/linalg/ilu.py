"""ILU(0) preconditioning — the alternative V2D did *not* choose.

Incomplete LU with zero fill is the classic competitor to sparse
approximate inverses (the 2004 comparison paper weighed exactly this
trade).  On the five-banded radiation systems ILU(0) usually cuts more
iterations than SPAI -- but its application is two *sequential*
triangular solves with loop-carried dependencies, which neither SVE
nor any SIMD ISA can vectorize across rows.  SPAI's application is
just another 5-point stencil Matvec, fully vectorizable.  That
asymmetry is the reason a code tuned for vector hardware prefers SPAI,
and this module exists to measure it (see
``benchmarks/bench_ablation_ilu.py``).

Implementation: pattern-restricted IKJ factorization on the banded
form; triangular solves are genuinely sequential (a Python loop --
honest about the algorithm's character; the vector backend cannot help
it, exactly as SVE cannot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.kernels.stencil import StencilCoefficients
from repro.kernels.suite import KernelSuite
from repro.linalg.banded import stencil_to_bands
from repro.linalg.spai import Preconditioner
from repro.parallel.halo import BoundaryCondition

Array = np.ndarray


@dataclass
class ILU0Factorization:
    """Banded ILU(0) factors: unit-lower L and upper U on A's pattern."""

    offsets: tuple[int, ...]
    lower: dict[int, Array]   # offset -> band (offsets < 0), unit diagonal implied
    upper: dict[int, Array]   # offset -> band (offsets >= 0)
    n: int

    def solve(self, rhs: Array, out: Array | None = None) -> Array:
        """Solve ``L U x = rhs`` (forward then backward substitution)."""
        if rhs.shape != (self.n,):
            raise ValueError(f"rhs must be 1-D of length {self.n}")
        y = np.empty(self.n)
        lo_offsets = sorted(self.lower)
        # Forward: (L y)_i = rhs_i, L unit-diagonal.
        for i in range(self.n):
            acc = rhs[i]
            for d in lo_offsets:
                j = i + d
                if j >= 0:
                    acc -= self.lower[d][i] * y[j]
            y[i] = acc
        x = out if out is not None else np.empty(self.n)
        hi_offsets = sorted(o for o in self.upper if o > 0)
        diag = self.upper[0]
        # Backward: (U x)_i = y_i.
        for i in range(self.n - 1, -1, -1):
            acc = y[i]
            for d in hi_offsets:
                j = i + d
                if j < self.n:
                    acc -= self.upper[d][i] * x[j]
            x[i] = acc / diag[i]
        return x


def ilu0_banded(offsets: Sequence[int], bands: Sequence[Array]) -> ILU0Factorization:
    """Pattern-restricted ILU(0) of a banded matrix.

    Standard IKJ algorithm, dropping every update that falls outside
    A's own band pattern.  Requires a nonzero main diagonal (checked as
    pivots are consumed).
    """
    offs = [int(o) for o in offsets]
    if 0 not in offs:
        raise ValueError("ILU(0) requires a main diagonal band")
    n = bands[0].shape[0]
    pattern = set(offs)
    work = {o: np.array(b, dtype=float, copy=True) for o, b in zip(offs, bands)}
    lower_offsets = sorted(o for o in offs if o < 0)

    for i in range(n):
        for d in lower_offsets:           # ascending: leftmost column first
            k = i + d
            if k < 0:
                continue
            pivot = work[0][k]
            if pivot == 0.0:
                raise ZeroDivisionError(f"zero pivot at row {k}")
            lik = work[d][i] / pivot
            work[d][i] = lik
            if lik == 0.0:
                continue
            # Update row i entries to the right of column k that stay
            # inside the pattern: A[i, j] -= L[i, k] * U[k, j] needs
            # both (j - i) and (j - k) in the pattern, j > k.
            for du in offs:
                if du <= 0:
                    continue
                j = k + du                 # column of U[k, j]
                dj = j - i                 # offset of A[i, j]
                if dj in pattern and 0 <= j < n:
                    work[dj][i] -= lik * work[du][k]

    lower = {o: work[o] for o in offs if o < 0}
    upper = {o: work[o] for o in offs if o >= 0}
    return ILU0Factorization(offsets=tuple(sorted(offs)), lower=lower, upper=upper, n=n)


class ILU0Preconditioner(Preconditioner):
    """Apply ``M ~ A^-1`` via the sequential triangular solves.

    Works on grid-shaped vectors by flattening through the dictionary
    ordering; the factorization covers the (tile-local) operator with
    its boundary conditions, like SPAI.
    """

    def __init__(self, fact: ILU0Factorization, unflatten=None) -> None:
        self._fact = fact
        self._unflatten = unflatten

    @classmethod
    def from_banded(cls, offsets: Sequence[int], bands: Sequence[Array]) -> "ILU0Preconditioner":
        return cls(ilu0_banded(offsets, bands))

    @classmethod
    def from_stencil(
        cls,
        coeffs: StencilCoefficients,
        bc: BoundaryCondition | dict[str, BoundaryCondition] = BoundaryCondition.DIRICHLET0,
        suite: KernelSuite | None = None,
    ) -> "ILU0Preconditioner":
        offsets, bands = stencil_to_bands(coeffs, bc)
        ns, (n1, n2) = coeffs.nspec, coeffs.shape

        def unflatten(flat: Array) -> Array:
            return flat.reshape(ns, n2, n1).transpose(0, 2, 1)

        return cls(ilu0_banded(offsets, bands), unflatten=unflatten)

    def apply(self, x: Array, out: Array | None = None) -> Array:
        if x.ndim == 1:
            return self._fact.solve(x, out=out)
        flat = x.transpose(0, 2, 1).reshape(-1)
        sol = self._fact.solve(flat)
        result = self._unflatten(sol) if self._unflatten is not None else sol
        if out is None:
            return result.copy()
        out[...] = result
        return out
