"""Matrix-free linear operators.

"Because of its prohibitive size, the sparse linear system matrix is
never stored and the Krylov subspace methods are implemented in
matrix-free form by application of a finite-difference operator to
column vectors that are stored as Fortran arrays defined with the same
spatial shape as the 2D grid."  (paper, Sec. I-C)

:class:`StencilOperator` is that operator: it owns a ghost-padded
workspace, fills ghosts (physical boundary conditions and, when a
Cartesian topology is attached, halo exchange with neighbouring tiles)
and applies the multi-species 5-point stencil through the instrumented
kernel suite.  Solver vectors remain plain interior-shaped arrays
``(ns, nx1, nx2)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.backend.base import Backend
from repro.grid.field import Field
from repro.kernels.stencil import MultiSpeciesStencil, StencilCoefficients
from repro.kernels.suite import KernelSuite
from repro.parallel.cart import CartComm
from repro.parallel.halo import BoundaryCondition, HaloExchanger

Array = np.ndarray


class LinearOperator(ABC):
    """A matrix-free ``y = A x`` with known operand shape."""

    @property
    @abstractmethod
    def operand_shape(self) -> tuple[int, ...]:
        """Shape of the vectors this operator acts on."""

    @abstractmethod
    def apply(self, x: Array, out: Array | None = None) -> Array:
        """Compute ``A x`` (allocating ``out`` when not supplied)."""

    @property
    def size(self) -> int:
        """Number of unknowns."""
        n = 1
        for d in self.operand_shape:
            n *= d
        return n

    def new_vector(self) -> Array:
        """A zeroed vector of the operand shape."""
        return np.zeros(self.operand_shape)

    def apply_dots(
        self, x: Array, dots: Sequence[object], out: Array | None = None
    ) -> tuple[Array, Array]:
        """Fused ``A x`` plus ganged inner products against the result.

        ``dots`` entries follow the backend dot-spec forms (``None`` ->
        ``<Ax, Ax>``; array ``w`` -> ``<Ax, w>``; ``(a, b)`` tuple -> an
        independent pair).  Returns ``(Ax, values)`` with the values
        local to this rank.  The default is the unfused composition;
        operators with a fused kernel path override it.
        """
        out = self.apply(x, out=out)
        pairs = Backend._resolve_dot_pairs(out, dots)
        suite = getattr(self, "suite", None)
        if suite is not None:
            return out, suite.dprod_gang(pairs)
        return out, np.array([float(np.dot(a.ravel(), b.ravel())) for a, b in pairs])

    def __matmul__(self, x: Array) -> Array:
        return self.apply(x)


class StencilOperator(LinearOperator):
    """V2D's Matvec: ghost fill + multi-species 5-point stencil.

    Parameters
    ----------
    coeffs:
        The operator's stencil coefficients.
    suite:
        Instrumented kernel suite (chooses the execution backend).
    bc:
        Physical-boundary ghost-fill strategy (linear, so the operator
        stays linear).  Either one :class:`BoundaryCondition` or a
        per-side dict.
    cart:
        Optional Cartesian topology.  When given, ``coeffs`` describe
        this rank's tile and every :meth:`apply` performs a halo
        exchange; sides facing neighbouring tiles take their ghosts
        from the exchange, physical sides from ``bc``.
    tracer:
        Optional tracer handed to the internal halo exchanger, so the
        per-Matvec exchanges of decomposed solves land on the timeline.
    """

    def __init__(
        self,
        coeffs: StencilCoefficients,
        suite: KernelSuite | None = None,
        bc: BoundaryCondition | dict[str, BoundaryCondition] = BoundaryCondition.DIRICHLET0,
        cart: CartComm | None = None,
        tracer=None,
    ) -> None:
        self.coeffs = coeffs
        self.suite = suite if suite is not None else KernelSuite()
        self.bc = bc
        self.cart = cart
        self._stencil = MultiSpeciesStencil(coeffs, self.suite)
        ns, (n1, n2) = coeffs.nspec, coeffs.shape
        if cart is not None and cart.tile.shape != (n1, n2):
            raise ValueError(
                f"coefficients shape {(n1, n2)} does not match this rank's "
                f"tile {cart.tile.shape}"
            )
        self._work = Field(ns, (n1, n2), nghost=1)
        self._halo = (
            HaloExchanger(cart, bc, tracer=tracer) if cart is not None else None
        )

    # ------------------------------------------------------------------
    @property
    def operand_shape(self) -> tuple[int, ...]:
        ns, (n1, n2) = self.coeffs.nspec, self.coeffs.shape
        return (ns, n1, n2)

    def fill_ghosts(self, x: Array) -> Field:
        """Load ``x`` into the workspace and fill every ghost zone."""
        if x.shape != self.operand_shape:
            raise ValueError(f"operand shape {x.shape} != {self.operand_shape}")
        work = self._work
        work.interior = x
        if self._halo is not None:
            self._halo.exchange(work)
        else:
            for side in ("west", "east", "south", "north"):
                bc = self.bc if isinstance(self.bc, BoundaryCondition) else self.bc[side]
                if bc is BoundaryCondition.DIRICHLET0:
                    work.zero_side(side)
                else:
                    work.reflect_side(side)
        return work

    def apply(self, x: Array, out: Array | None = None) -> Array:
        work = self.fill_ghosts(x)
        return self._stencil.apply(work.data, out=out)

    def apply_dots(
        self, x: Array, dots: Sequence[object], out: Array | None = None
    ) -> tuple[Array, Array]:
        """Fused Matvec + ganged DPROD through the stencil kernel."""
        work = self.fill_ghosts(x)
        return self._stencil.apply_dots(work.data, dots, out=out)


class BandedOperator(LinearOperator):
    """1-D banded operator (the Table-II driver's system form)."""

    def __init__(
        self,
        offsets: Sequence[int],
        bands: Sequence[Array],
        suite: KernelSuite | None = None,
    ) -> None:
        if len(offsets) != len(bands):
            raise ValueError("offsets and bands must pair up")
        if len(set(offsets)) != len(offsets):
            raise ValueError("duplicate band offsets")
        n = bands[0].shape[0]
        for b in bands:
            if b.shape != (n,):
                raise ValueError("all bands must be 1-D of equal length")
        self.offsets = tuple(int(o) for o in offsets)
        self.bands = [np.asarray(b, dtype=float) for b in bands]
        # Entries whose column index falls outside the matrix are
        # structurally zero; enforce that so banded algebra (e.g. SPAI's
        # A^T A) can trust the band arrays.
        for off, band in zip(self.offsets, self.bands):
            if off > 0:
                band[n - off :] = 0.0
            elif off < 0:
                band[: -off] = 0.0
        self.n = n
        self.suite = suite if suite is not None else KernelSuite()

    @property
    def operand_shape(self) -> tuple[int, ...]:
        return (self.n,)

    def apply(self, x: Array, out: Array | None = None) -> Array:
        return self.suite.matvec_banded(self.offsets, self.bands, x, out=out)

    def diagonal(self) -> Array:
        """The main diagonal (used by the Jacobi preconditioner)."""
        try:
            k = self.offsets.index(0)
        except ValueError:
            return np.zeros(self.n)
        return self.bands[k]

    def to_dense(self) -> Array:
        """Dense equivalent (validation only; O(n^2) memory)."""
        dense = np.zeros((self.n, self.n))
        for off, band in zip(self.offsets, self.bands):
            for i in range(self.n):
                j = i + off
                if 0 <= j < self.n:
                    dense[i, j] = band[i]
        return dense


class IdentityOperator(LinearOperator):
    """``A = I`` (degenerate baseline / solver smoke tests)."""

    def __init__(self, shape: tuple[int, ...]) -> None:
        self._shape = tuple(shape)

    @property
    def operand_shape(self) -> tuple[int, ...]:
        return self._shape

    def apply(self, x: Array, out: Array | None = None) -> Array:
        if out is None:
            return x.copy()
        out[...] = x
        return out
