"""Sparse linear algebra: V2D's Krylov solver stack.

* :mod:`repro.linalg.operators` -- matrix-free linear operators: the
  ghost-filling :class:`StencilOperator` (V2D's Matvec) and the
  :class:`BandedOperator` used by the Table-II driver.
* :mod:`repro.linalg.banded` -- assembly of the stencil operator into
  banded / CSR form for validation and for the Fig. 1 sparsity pattern.
* :mod:`repro.linalg.bicgstab` -- BiCGSTAB [van der Vorst 1992], both
  textbook and V2D's restructured variant that gangs inner products to
  cut global reductions per iteration from six to two.
* :mod:`repro.linalg.cg` -- Conjugate Gradient baseline (the method
  BiCGSTAB extends to non-symmetric systems).
* :mod:`repro.linalg.gmres` -- restarted GMRES baseline (the classic
  alternative weighed by the 2004 solver-comparison paper, ref. [7]).
* :mod:`repro.linalg.spai` -- sparse approximate inverse
  preconditioning [Swesty, Smolarski & Saylor 2004] plus Jacobi and
  identity baselines.
* :mod:`repro.linalg.ilu` -- banded ILU(0), the sequential competitor
  whose non-vectorizable triangular solves motivate SPAI on SIMD
  hardware.
"""

from repro.linalg.banded import (
    assemble_csr,
    assemble_dense,
    band_offsets,
    pattern_report,
    sparsity_block,
    stencil_to_bands,
)
from repro.linalg.bicgstab import (
    REDUCTIONS_PER_ITER_CLASSIC,
    REDUCTIONS_PER_ITER_GANGED,
    DotContext,
    SolveResult,
    bicgstab,
)
from repro.linalg.cg import conjugate_gradient
from repro.linalg.gmres import gmres
from repro.linalg.ilu import ILU0Factorization, ILU0Preconditioner, ilu0_banded
from repro.linalg.operators import (
    BandedOperator,
    IdentityOperator,
    LinearOperator,
    StencilOperator,
)
from repro.linalg.spai import (
    BandedSPAIPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
    SPAIPreconditioner,
    bands_to_stencil,
    spai_bands,
)

__all__ = [
    "LinearOperator",
    "StencilOperator",
    "BandedOperator",
    "IdentityOperator",
    "bicgstab",
    "SolveResult",
    "DotContext",
    "REDUCTIONS_PER_ITER_CLASSIC",
    "REDUCTIONS_PER_ITER_GANGED",
    "conjugate_gradient",
    "gmres",
    "ilu0_banded",
    "ILU0Factorization",
    "ILU0Preconditioner",
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "SPAIPreconditioner",
    "BandedSPAIPreconditioner",
    "spai_bands",
    "bands_to_stencil",
    "stencil_to_bands",
    "assemble_csr",
    "assemble_dense",
    "sparsity_block",
    "band_offsets",
    "pattern_report",
]
