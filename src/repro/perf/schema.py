"""The canonical benchmark-entry schema and environment fingerprint.

Every performance number this repository produces -- the
``benchmarks/bench_*.py`` suites, the ``repro perf run`` smoke suite,
campaign roll-ups -- is recorded as one :class:`BenchResult`, the
machine-readable analogue of the paper's per-routine timing tables.
An entry carries

* identity: ``suite`` (one ledger stream per benchmark module) and
  ``name`` (one benchmark within it);
* ``metrics``: named :class:`Metric` values, each typed by *kind* so
  the regression gate knows how to judge it (``time`` metrics get
  noise-aware thresholds, ``count`` metrics are deterministic and
  compared near-exactly);
* an environment fingerprint (interpreter, NumPy, platform, CPU, git
  revision + dirty flag, backend) so any ledger line can be traced to
  the commit and machine that produced it;
* optionally the PAPI-style counter snapshot of the measured run, the
  raw material for roofline-efficiency attribution.

The schema is versioned (:data:`SCHEMA`); :func:`validate_entry` is
the single gatekeeper every ledger write goes through.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Schema tag stamped on (and required of) every ledger entry.
SCHEMA = "repro.bench/1"

#: Metric kinds the regression gate understands.
#:
#: ``time``  -- seconds (or any noisy measurement); gated with a
#:              relative threshold over a robust noise floor.
#: ``count`` -- deterministic event counts (iterations, flops, bytes);
#:              gated near-exactly, any drift is a real change.
#: ``ratio`` -- derived dimensionless quantities (speedups, fractions);
#:              gated like ``time`` (they inherit timing noise).
#: ``value`` -- informational; recorded and reported, never gated.
METRIC_KINDS = ("time", "count", "ratio", "value")


@dataclass
class Metric:
    """One measured quantity inside a :class:`BenchResult`."""

    value: float
    kind: str = "value"
    unit: str = ""
    repeats: int = 1
    #: Median absolute deviation of the repeat samples (same unit as
    #: ``value``); the regression gate's per-entry noise estimate.
    mad: float | None = None
    samples: list[float] | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"value": self.value, "kind": self.kind}
        if self.unit:
            out["unit"] = self.unit
        if self.repeats != 1:
            out["repeats"] = self.repeats
        if self.mad is not None:
            out["mad"] = self.mad
        if self.samples is not None:
            out["samples"] = list(self.samples)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Metric":
        return cls(
            value=float(data["value"]),
            kind=str(data.get("kind", "value")),
            unit=str(data.get("unit", "")),
            repeats=int(data.get("repeats", 1)),
            mad=None if data.get("mad") is None else float(data["mad"]),
            samples=(
                None
                if data.get("samples") is None
                else [float(s) for s in data["samples"]]
            ),
        )


def coerce_metric(value: Any, kind: str | None = None) -> Metric:
    """Accept a bare number, mapping, or :class:`Metric` as a metric."""
    if isinstance(value, Metric):
        return value
    if isinstance(value, Mapping):
        return Metric.from_dict(value)
    return Metric(value=float(value), kind=kind or "value")


@dataclass
class BenchResult:
    """One schema-versioned benchmark entry (one ledger line)."""

    suite: str
    name: str
    metrics: dict[str, Metric]
    config: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, int] | None = None
    env: dict[str, Any] = field(default_factory=dict)
    created: float = 0.0
    schema: str = SCHEMA

    def __post_init__(self) -> None:
        if not self.env:
            self.env = environment_fingerprint()
        if not self.created:
            self.created = time.time()

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "suite": self.suite,
            "name": self.name,
            "created": self.created,
            "env": dict(self.env),
            "config": dict(self.config),
            "metrics": {k: m.to_dict() for k, m in self.metrics.items()},
            **({"counters": dict(self.counters)} if self.counters else {}),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchResult":
        return cls(
            suite=str(data["suite"]),
            name=str(data["name"]),
            metrics={
                k: Metric.from_dict(v) for k, v in data.get("metrics", {}).items()
            },
            config=dict(data.get("config", {})),
            counters=(
                None if data.get("counters") is None else dict(data["counters"])
            ),
            env=dict(data.get("env", {})),
            created=float(data.get("created", 0.0)),
            schema=str(data.get("schema", "")),
        )


# ----------------------------------------------------------------------
# Environment fingerprint
# ----------------------------------------------------------------------
def git_revision(cwd: str | None = None) -> tuple[str | None, bool]:
    """``(sha, dirty)`` of the enclosing git checkout, or ``(None, False)``.

    ``dirty`` is True when tracked files carry uncommitted changes, so
    a ledger entry from a dirty tree can never masquerade as a clean
    measurement of its SHA.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return None, False
        status = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = status.returncode == 0 and bool(status.stdout.strip())
        return sha.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, False


def _cpu_name() -> str:
    name = platform.processor()
    if name:
        return name
    try:  # Linux fallback: the model line of /proc/cpuinfo
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith(("model name", "hardware", "cpu model")):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.machine() or "unknown"


def environment_fingerprint(backend: str | None = None) -> dict[str, Any]:
    """The provenance stamp attached to every ledger entry."""
    import numpy

    from repro import __version__

    sha, dirty = git_revision()
    env: dict[str, Any] = {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu": _cpu_name(),
        "git_sha": sha,
        "git_dirty": dirty,
        "executable": sys.executable,
    }
    if backend is not None:
        env["backend"] = backend
    return env


def version_string() -> str:
    """``<version> (<sha12>[ dirty])`` -- the ``repro --version`` face.

    Ledger entries carry the same ``git_sha``/``git_dirty`` pair, so a
    printed version line is directly matchable against history lines.
    """
    from repro import __version__

    sha, dirty = git_revision()
    if sha is None:
        return f"{__version__} (no git)"
    return f"{__version__} ({sha[:12]}{' dirty' if dirty else ''})"


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


#: Environment keys every entry must carry.
REQUIRED_ENV = ("python", "numpy", "platform", "git_sha", "git_dirty")


def validate_entry(entry: Any) -> list[str]:
    """Schema-check one ledger entry; returns the list of problems.

    An empty list means the entry is valid.  This is deliberately a
    report (not an exception) so callers scanning a ledger can count
    and skip bad lines without dying on the first one.
    """
    problems: list[str] = []
    if not isinstance(entry, Mapping):
        return [f"entry is {type(entry).__name__}, expected a mapping"]
    if entry.get("schema") != SCHEMA:
        problems.append(f"schema {entry.get('schema')!r} != {SCHEMA!r}")
    for key in ("suite", "name"):
        v = entry.get(key)
        if not isinstance(v, str) or not v:
            problems.append(f"{key} must be a non-empty string, got {v!r}")
    if not _is_number(entry.get("created")):
        problems.append(f"created must be a unix timestamp, got {entry.get('created')!r}")

    metrics = entry.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        problems.append("metrics must be a non-empty mapping")
    else:
        for mname, m in metrics.items():
            where = f"metrics[{mname!r}]"
            if not isinstance(m, Mapping):
                problems.append(f"{where} must be a mapping")
                continue
            if not _is_number(m.get("value")):
                problems.append(f"{where}.value must be a number, got {m.get('value')!r}")
            elif m["value"] != m["value"]:  # NaN
                problems.append(f"{where}.value is NaN")
            if m.get("kind") not in METRIC_KINDS:
                problems.append(
                    f"{where}.kind {m.get('kind')!r} not in {METRIC_KINDS}"
                )
            if m.get("mad") is not None and (
                not _is_number(m["mad"]) or m["mad"] < 0
            ):
                problems.append(f"{where}.mad must be a non-negative number")

    env = entry.get("env")
    if not isinstance(env, Mapping):
        problems.append("env must be a mapping")
    else:
        for key in REQUIRED_ENV:
            if key not in env:
                problems.append(f"env missing {key!r}")
        if "git_dirty" in env and not isinstance(env["git_dirty"], bool):
            problems.append("env.git_dirty must be a bool")

    counters = entry.get("counters")
    if counters is not None:
        if not isinstance(counters, Mapping):
            problems.append("counters must be a mapping when present")
        else:
            for k, v in counters.items():
                if not _is_number(v):
                    problems.append(f"counters[{k!r}] must be a number")
                    break

    config = entry.get("config")
    if config is not None and not isinstance(config, Mapping):
        problems.append("config must be a mapping when present")
    return problems
