"""Performance ledger: unified harness, attribution, regression gating.

Three layers (see DESIGN.md):

* :mod:`repro.perf.schema` / :mod:`repro.perf.ledger` -- the canonical
  :class:`BenchResult` entry and the append-only
  ``BENCH_history.jsonl`` + per-suite snapshot store;
* :mod:`repro.perf.harness` -- the one benchmark runner (warmup,
  median-of-k, environment fingerprint) everything measures through;
* :mod:`repro.perf.efficiency` / :mod:`repro.perf.regress` -- roofline
  attribution of measured counters and the statistical regression gate
  behind ``repro perf check``.
"""

from repro.perf.harness import Harness, mad, median
from repro.perf.ledger import Ledger, LedgerError, load_suite_snapshot
from repro.perf.schema import (
    SCHEMA,
    BenchResult,
    Metric,
    environment_fingerprint,
    git_revision,
    validate_entry,
    version_string,
)

__all__ = [
    "SCHEMA",
    "BenchResult",
    "Harness",
    "Ledger",
    "LedgerError",
    "Metric",
    "environment_fingerprint",
    "git_revision",
    "load_suite_snapshot",
    "mad",
    "median",
    "validate_entry",
    "version_string",
]
