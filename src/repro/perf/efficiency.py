"""Roofline-efficiency attribution: measured counters vs model peaks.

The Python analogue of the paper's PAPI attribution: join what the run
*measured* -- PAPI-style :class:`~repro.monitor.counters.Counters`
(flops, bytes loaded/stored, SIMD vs scalar op mix) and timed windows
(driver CPU seconds or tracer span times) -- against what the A64FX
machine model says is *attainable* at that arithmetic intensity, and
report per kernel (per rank, for application runs):

* achieved GF/s (flops / measured seconds),
* arithmetic intensity (flops / bytes moved),
* % of the roofline-attainable rate at that intensity and working-set
  residence (the efficiency number the paper reasons with), and
* vector dilution (fraction of retired ops that were packed SIMD).

Two joins are provided: :func:`driver_efficiency` for the Sec. II-F
kernel driver (exact per-routine counter windows) and
:func:`app_efficiency` for whole-application runs (per-rank tracer
spans joined with the stencil accounting conventions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.kernels.driver import ROUTINES, DriverResult
from repro.monitor.trace import span_seconds
from repro.perfmodel.machine import A64FX
from repro.perfmodel.roofline import RooflineModel
from repro.perfmodel.workload import BYTES_PER_ZONE, FLOPS_PER_ZONE


@dataclass(frozen=True)
class KernelEfficiency:
    """One attributed (kernel, backend[, rank]) row."""

    kernel: str
    backend: str
    seconds: float
    flops: float
    bytes_moved: float
    vector_fraction: float        # SIMD share of retired ops (dilution)
    residence: str                # working-set level on the model machine
    attainable_flops: float       # roofline bound at this AI + residence
    rank: int | None = None
    calls: int = 0

    @property
    def intensity(self) -> float:
        """Arithmetic intensity, flop/byte."""
        return self.flops / self.bytes_moved if self.bytes_moved else 0.0

    @property
    def achieved_gflops(self) -> float:
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def roofline_fraction(self) -> float:
        """Achieved / attainable on the model machine's roofline."""
        if self.attainable_flops <= 0:
            return 0.0
        return self.flops / self.seconds / self.attainable_flops if self.seconds > 0 else 0.0

    def metrics(self) -> dict[str, tuple[float, str]]:
        """The row as ledger metrics (``{name: (value, kind)}``)."""
        return {
            f"{self.kernel}_gflops": (self.achieved_gflops, "ratio"),
            f"{self.kernel}_intensity": (self.intensity, "count"),
            f"{self.kernel}_roofline_fraction": (self.roofline_fraction, "ratio"),
            f"{self.kernel}_vector_fraction": (self.vector_fraction, "count"),
        }


# ----------------------------------------------------------------------
# Driver join: exact per-routine counter windows
# ----------------------------------------------------------------------
def driver_efficiency(
    result: DriverResult,
    machine: A64FX | None = None,
    routines: Sequence[str] = ROUTINES,
) -> list[KernelEfficiency]:
    """Attribute one :class:`~repro.kernels.driver.DriverResult`.

    The driver times each routine under an exclusive counter window, so
    flops/bytes per routine are exact.  The working-set residence is
    judged from the per-call traffic (the driver's 1000-equation
    system is L1-resident, which is why its kernels see the
    compute-roof SVE gain rather than the HBM-bound one).
    """
    machine = machine or A64FX()
    roofline = RooflineModel(machine)
    # Every non-scalar tier (vector's whole-array NumPy, jit's compiled
    # loops) models packed-double execution against the SIMD roof.
    vectorized = result.backend != "scalar"
    rows: list[KernelEfficiency] = []
    for routine in routines:
        ev = result.counters[routine]
        flops = float(ev.get("flops", 0))
        moved = float(ev.get("bytes_loaded", 0) + ev.get("bytes_stored", 0))
        seconds = float(result.cpu_seconds[routine])
        vec = float(ev.get("vector_ops", 0))
        scl = float(ev.get("scalar_ops", 0))
        per_call = moved / result.reps if result.reps else moved
        residence = machine.working_set_level(int(per_call))
        intensity = flops / moved if moved else 0.0
        rows.append(
            KernelEfficiency(
                kernel=routine,
                backend=result.backend,
                seconds=seconds,
                flops=flops,
                bytes_moved=moved,
                vector_fraction=vec / (vec + scl) if vec + scl else 0.0,
                residence=residence,
                attainable_flops=roofline.attainable(
                    intensity, residence, vectorized=vectorized
                ),
                calls=result.reps,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Application join: per-rank tracer spans x stencil conventions
# ----------------------------------------------------------------------
#: Kernel span -> (flops, bytes) per unknown, the KernelSuite / workload
#: accounting conventions (PRECOND's SPAI apply is another 5-pt stencil).
APP_KERNEL_SPANS: dict[str, tuple[int, int]] = {
    "MATVEC": (FLOPS_PER_ZONE["matvec"], BYTES_PER_ZONE["matvec"]),
    "PRECOND": (FLOPS_PER_ZONE["precond"], BYTES_PER_ZONE["precond"]),
}


def app_efficiency(
    reports: Sequence[Any],
    nunknowns_by_rank: Mapping[int, int],
    backend: str = "vector",
    machine: A64FX | None = None,
) -> list[KernelEfficiency]:
    """Attribute a traced application run, per kernel per rank.

    For each rank report carrying a tracer, the MATVEC / PRECOND span
    times are joined with the stencil accounting conventions (flops and
    bytes per unknown x span count x local unknowns) and the rank's
    overall counter totals become a ``solver`` row (everything the
    PAPI counters saw over the whole BiCGSTAB span).  The residence is
    judged from the rank-local field footprint -- decomposing shrinks
    the per-rank working set down the hierarchy exactly as in the
    paper's strong-scaling story.
    """
    machine = machine or A64FX()
    roofline = RooflineModel(machine)
    rows: list[KernelEfficiency] = []
    for rep in reports:
        tracer = getattr(rep, "tracer", None)
        if tracer is None:
            continue
        rank = getattr(rep, "rank", 0)
        nunk = int(nunknowns_by_rank[rank])
        vectorized = backend != "scalar"
        spans = span_seconds(tracer.summary())
        # one double-precision field per stencil operand stream
        residence = machine.working_set_level(nunk * 8)
        for span, (flops_per, bytes_per) in APP_KERNEL_SPANS.items():
            if span not in spans:
                continue
            seconds, calls = spans[span]
            flops = float(flops_per * nunk * calls)
            moved = float(bytes_per * nunk * calls)
            intensity = flops / moved if moved else 0.0
            rows.append(
                KernelEfficiency(
                    kernel=span,
                    backend=backend,
                    seconds=seconds,
                    flops=flops,
                    bytes_moved=moved,
                    vector_fraction=1.0 if vectorized else 0.0,
                    residence=residence,
                    attainable_flops=roofline.attainable(
                        intensity, residence, vectorized=vectorized
                    ),
                    rank=rank,
                    calls=calls,
                )
            )
        counters = getattr(rep, "counters", None)
        solver = spans.get("BiCGSTAB")
        if counters is not None and solver is not None:
            seconds, calls = solver
            intensity = counters.arithmetic_intensity
            rows.append(
                KernelEfficiency(
                    kernel="solver",
                    backend=backend,
                    seconds=seconds,
                    flops=float(counters.flops),
                    bytes_moved=float(counters.bytes_moved),
                    vector_fraction=counters.vector_fraction,
                    residence=residence,
                    attainable_flops=roofline.attainable(
                        intensity, residence, vectorized=vectorized
                    ),
                    rank=rank,
                    calls=calls,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def efficiency_table(
    rows: Sequence[KernelEfficiency],
    title: str = "ROOFLINE EFFICIENCY",
    machine: A64FX | None = None,
) -> str:
    """Render attributed rows as the ``repro perf report`` table."""
    machine = machine or A64FX()
    per_rank = any(r.rank is not None for r in rows)
    lines = [title, f"  model: {machine.describe()}"]
    header = f"  {'kernel':<10} {'backend':<8}"
    if per_rank:
        header += f" {'rank':>4}"
    header += (
        f" {'time[s]':>9} {'GF/s':>9} {'AI':>7} "
        f"{'res':>4} {'roof GF/s':>10} {'%roof':>7} {'vec%':>6}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for r in rows:
        line = f"  {r.kernel:<10} {r.backend:<8}"
        if per_rank:
            line += f" {r.rank if r.rank is not None else '-':>4}"
        line += (
            f" {r.seconds:>9.4f} {r.achieved_gflops:>9.4f} {r.intensity:>7.3f} "
            f"{r.residence:>4} {r.attainable_flops / 1e9:>10.1f} "
            f"{100.0 * r.roofline_fraction:>6.2f}% {100.0 * r.vector_fraction:>5.0f}%"
        )
        lines.append(line)
    lines.append(
        "  (%roof: achieved/attainable on the modeled A64FX roofline at the"
    )
    lines.append(
        "   measured intensity; this Python substrate sits far below the"
    )
    lines.append(
        "   silicon roof -- the *ratios* between kernels and backends carry"
    )
    lines.append("   the paper's story)")
    return "\n".join(lines)
