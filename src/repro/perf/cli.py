"""``repro perf`` -- run / report / check / baseline over the ledger.

The performance-ledger workflow::

    repro perf run      [--ledger D] [--n N] [--reps K] [--no-app]
    repro perf report   [--ledger D] [--n N] [--reps K]
    repro perf check    [--ledger D] [--baselines D] [--suite S ...]
    repro perf baseline [--ledger D] [--baselines D] [--suite S ...]

``run`` executes the smoke suite -- the Sec. II-F kernel driver under
both backends plus a small traced application solve -- and appends
schema-validated entries to ``BENCH_history.jsonl``.  ``report`` joins
measured counters and span times against the A64FX roofline model and
prints per-kernel achieved GF/s, arithmetic intensity, %-of-roofline
and vector dilution for scalar vs vector backends.  ``check`` gates
the ledger's latest entries against committed baselines (nonzero exit
on regression); ``baseline`` rewrites those baselines deliberately.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.ledger import Ledger
from repro.perf.schema import Metric

#: Where benchmark artifacts land by default (the pytest benchmarks'
#: report directory, so CI archives one tree).
DEFAULT_LEDGER = "benchmarks/_reports"

#: Committed baselines the gate compares against.
DEFAULT_BASELINES = "benchmarks/baselines"

#: Ledger stream the smoke suite writes to.
SMOKE_SUITE = "smoke"


def _smoke_backends() -> tuple[str, ...]:
    """Backends the smoke suite measures: the two compiler builds, plus
    the jit tier whenever its optional numba dependency is present.

    The roofline report is then three-way scalar/vector/jit; on a
    numba-less machine it degrades to the classic two-way table
    instead of failing.
    """
    from repro.backend import numba_available

    return ("scalar", "vector") + (("jit",) if numba_available() else ())


# ----------------------------------------------------------------------
# Smoke measurements (shared by ``run`` and ``report``)
# ----------------------------------------------------------------------
def _run_driver(n: int, reps: int, backend: str):
    from repro.kernels.driver import KernelDriver
    from repro.perf.efficiency import driver_efficiency

    driver = KernelDriver(n=n, reps=reps, band_offset=min(25, n - 1))
    result = driver.run(backend)
    return result, driver_efficiency(result)


def _record_driver(harness, result, rows, time_scale: float = 1.0) -> None:
    """Fold one driver run into ledger entries, one per routine."""
    for row in rows:
        ev = result.counters[row.kernel]
        harness.record(
            f"{row.kernel}_{result.backend}",
            {
                "cpu_seconds": Metric(
                    value=result.cpu_seconds[row.kernel] * time_scale,
                    kind="time", unit="s",
                ),
                "wall_seconds": Metric(
                    value=result.wall_seconds[row.kernel] * time_scale,
                    kind="time", unit="s",
                ),
                "flops": (float(ev["flops"]), "count"),
                "bytes_moved": (
                    float(ev["bytes_loaded"] + ev["bytes_stored"]), "count",
                ),
                "vector_fraction": (row.vector_fraction, "count"),
                "achieved_gflops": (row.achieved_gflops, "value"),
                "roofline_fraction": (row.roofline_fraction, "value"),
            },
            config={"n": result.n, "reps": result.reps},
            counters=ev,
            backend=result.backend,
        )


def _run_app(nx: int, nsteps: int, backend: str):
    """One small traced single-rank application solve."""
    from repro.problems import GaussianPulseProblem
    from repro.v2d import Simulation, V2DConfig

    cfg = V2DConfig(
        nx1=nx, nx2=nx, nsteps=nsteps, dt=2e-4,
        backend=backend, trace=True, profile=False,
    )
    report = Simulation(cfg, GaussianPulseProblem()).run()
    return cfg, report


def _record_app(harness, cfg, report, time_scale: float = 1.0) -> None:
    from repro.monitor.trace import span_seconds

    spans = span_seconds(report.tracer.summary())
    solve_s, solves = spans.get("BiCGSTAB", (0.0, 0))
    c = report.counters
    harness.record(
        f"app_solve_{cfg.backend}",
        {
            "solve_seconds": Metric(
                value=solve_s * time_scale, kind="time", unit="s",
            ),
            "flops": (float(c.flops), "count"),
            "bytes_moved": (float(c.bytes_moved), "count"),
            "matvecs": (float(c.matvecs), "count"),
            "dot_products": (float(c.dot_products), "count"),
            "kernel_launches": (float(c.kernel_calls), "count"),
            "vector_fraction": (c.vector_fraction, "count"),
            "solves": (float(solves), "count"),
        },
        config={
            "nx1": cfg.nx1, "nx2": cfg.nx2, "nsteps": cfg.nsteps,
            "precond": cfg.precond,
        },
        counters=c,
        backend=cfg.backend,
    )


# ----------------------------------------------------------------------
# Verbs
# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    from repro.perf.harness import Harness

    ledger = Ledger(args.ledger)
    harness = Harness(SMOKE_SUITE, ledger=ledger)
    if args.time_scale != 1.0:
        print(f"(debug: scaling recorded times by {args.time_scale}x)")
    for backend in _smoke_backends():
        result, rows = _run_driver(args.n, args.reps, backend)
        _record_driver(harness, result, rows, time_scale=args.time_scale)
        print(f"driver[{backend}]: {len(rows)} routines recorded "
              f"(n={args.n}, reps={args.reps})")
    if not args.no_app:
        for backend in _smoke_backends():
            cfg, report = _run_app(args.nx, args.nsteps, backend)
            _record_app(harness, cfg, report, time_scale=args.time_scale)
            print(f"app[{backend}]: solve recorded "
                  f"({cfg.nx1}x{cfg.nx2}, {cfg.nsteps} steps)")
    print(f"appended {len(harness.results)} entries to {ledger.history_path}")
    print(f"suite snapshot: {ledger.suite_path(SMOKE_SUITE)}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.perf.efficiency import app_efficiency, efficiency_table

    rows = []
    for backend in _smoke_backends():
        _, backend_rows = _run_driver(args.n, args.reps, backend)
        rows.extend(backend_rows)
    print(efficiency_table(
        rows, title="KERNEL DRIVER ROOFLINE EFFICIENCY "
                     f"(n={args.n}, reps={args.reps})",
    ))
    print()
    app_rows = []
    for backend in _smoke_backends():
        cfg, report = _run_app(args.nx, args.nsteps, backend)
        app_rows.extend(app_efficiency(
            [report], {0: cfg.nunknowns}, backend=backend,
        ))
    print(efficiency_table(
        app_rows, title="APPLICATION ROOFLINE EFFICIENCY "
                        f"({args.nx}x{args.nx}, {args.nsteps} steps)",
    ))

    ledger = Ledger(args.ledger)
    suites = ledger.suites()
    print()
    if suites:
        print(f"LEDGER {ledger.history_path}")
        for suite in suites:
            latest = ledger.latest(suite)
            total = len(ledger.entries(suite=suite))
            print(f"  {suite:<16} {total:>4} entries, "
                  f"{len(latest)} benchmarks")
        if ledger.skipped_lines:
            print(f"  ({ledger.skipped_lines} corrupt line(s) skipped)")
    else:
        print(f"LEDGER {ledger.history_path}: empty "
              "(run `repro perf run` or the pytest benchmarks)")

    # Process-wide service counters (cache traffic, serve activity):
    # nonzero only when this process actually touched those layers,
    # e.g. under `repro serve` or a campaign run in the same process.
    from repro.monitor.trace import get_metrics

    registry = {
        name: value
        for name, value in sorted(get_metrics().snapshot().items())
        if (name.startswith("repro.cache.") or name.startswith("repro.serve."))
        and value
    }
    if registry:
        print()
        print("PROCESS METRICS")
        for name, value in registry.items():
            print(f"  {name:<28} {value:>10g}")
        hits = registry.get("repro.cache.hits", 0)
        misses = registry.get("repro.cache.misses", 0)
        if hits + misses:
            print(f"  {'cache hit-rate':<28} {hits / (hits + misses):>10.1%}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.perf.regress import check

    ledger = Ledger(args.ledger)
    report = check(
        ledger,
        args.baselines,
        suites=args.suite or None,
        window=args.window,
        counts_only=args.counts_only,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_baseline(args: argparse.Namespace) -> int:
    from repro.perf.regress import write_baseline

    thresholds = {}
    for spec in args.threshold:
        try:
            metric, value = spec.split("=")
            thresholds[metric.strip()] = float(value)
        except ValueError:
            print(f"repro perf baseline: bad --threshold {spec!r}; "
                  "expected METRIC=REL", file=sys.stderr)
            return 2
    ledger = Ledger(args.ledger)
    written = write_baseline(
        ledger, args.baselines, suites=args.suite or None,
        thresholds=thresholds or None,
    )
    if not written:
        print("repro perf baseline: ledger has no entries to baseline "
              f"(looked in {ledger.history_path})", file=sys.stderr)
        return 1
    for path in written:
        print(f"wrote {path}")
    return 0


# ----------------------------------------------------------------------
def add_perf_parser(sub: argparse._SubParsersAction) -> None:
    """Wire the ``perf`` subcommand tree onto the main parser."""
    p = sub.add_parser(
        "perf",
        help="performance ledger: run, attribute, gate",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    verbs = p.add_subparsers(dest="verb", required=True)

    def common(vp: argparse.ArgumentParser) -> None:
        vp.add_argument(
            "--ledger", default=DEFAULT_LEDGER,
            help=f"ledger directory (default: {DEFAULT_LEDGER})",
        )

    def sizes(vp: argparse.ArgumentParser) -> None:
        vp.add_argument("--n", type=int, default=512,
                        help="driver system size (default: 512)")
        vp.add_argument("--reps", type=int, default=5,
                        help="driver repetitions (default: 5)")
        vp.add_argument("--nx", type=int, default=24,
                        help="app smoke grid edge (default: 24)")
        vp.add_argument("--nsteps", type=int, default=2,
                        help="app smoke steps (default: 2)")

    vp = verbs.add_parser(
        "run", help="run the smoke suite and append to the ledger"
    )
    sizes(vp)
    vp.add_argument("--no-app", action="store_true",
                    help="skip the application solve (driver only)")
    vp.add_argument("--time-scale", type=float, default=1.0,
                    help="multiply recorded time metrics (debug aid for "
                         "exercising the regression gate)")
    common(vp)
    vp.set_defaults(fn=cmd_run)

    vp = verbs.add_parser(
        "report",
        help="roofline-efficiency attribution, scalar vs vector (vs jit\n when numba is installed)",
    )
    sizes(vp)
    common(vp)
    vp.set_defaults(fn=cmd_report)

    vp = verbs.add_parser(
        "check", help="gate latest ledger entries against baselines"
    )
    vp.add_argument("--baselines", default=DEFAULT_BASELINES,
                    help=f"baseline directory (default: {DEFAULT_BASELINES})")
    vp.add_argument("--suite", action="append", default=[],
                    help="suite(s) to check (default: every baseline file)")
    vp.add_argument("--window", type=int, default=8,
                    help="history window for the MAD noise model")
    vp.add_argument("--counts-only", action="store_true",
                    help="gate only deterministic count metrics (for "
                         "cross-machine comparisons where timings don't "
                         "transfer)")
    common(vp)
    vp.set_defaults(fn=cmd_check)

    vp = verbs.add_parser(
        "baseline", help="write baselines from the ledger's latest entries"
    )
    vp.add_argument("--baselines", default=DEFAULT_BASELINES,
                    help=f"baseline directory (default: {DEFAULT_BASELINES})")
    vp.add_argument("--suite", action="append", default=[],
                    help="suite(s) to baseline (default: all in the ledger)")
    vp.add_argument("--threshold", action="append", default=[],
                    metavar="METRIC=REL",
                    help="pin a per-metric relative threshold into the "
                         "baseline file (repeatable)")
    common(vp)
    vp.set_defaults(fn=cmd_baseline)
