"""Unified benchmark runner: warmup, median-of-k repeats, ledger emit.

Every ``benchmarks/bench_*.py`` module and the ``repro perf run``
smoke suite measure through one :class:`Harness`, so every recorded
number shares the same discipline:

* a warmup pass outside the timed window (interpreter and cache
  warm-in, matching how the paper's driver discarded first touches);
* ``k`` timed repeats with the garbage collector disabled, summarized
  by **median** (robust location) and **MAD** (robust spread -- the
  regression gate's noise floor);
* both wall-clock and CPU seconds (process time shrugs off scheduler
  preemption on shared CI machines);
* one environment fingerprint per entry, so the ledger line is
  traceable to a commit, interpreter and backend.

Results become :class:`~repro.perf.schema.BenchResult` entries and --
when the harness is bound to a :class:`~repro.perf.ledger.Ledger` --
are appended to ``BENCH_history.jsonl`` and the suite snapshot
immediately.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Callable, Mapping

from repro.monitor.counters import Counters
from repro.perf.ledger import Ledger
from repro.perf.schema import (
    BenchResult,
    Metric,
    coerce_metric,
    environment_fingerprint,
)


def median(values: list[float]) -> float:
    """Median without pulling in statistics' interpolation subtleties."""
    if not values:
        raise ValueError("median of no values")
    s = sorted(values)
    mid = len(s) // 2
    if len(s) % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def mad(values: list[float]) -> float:
    """Median absolute deviation around the median."""
    if len(values) < 2:
        return 0.0
    m = median(values)
    return median([abs(v - m) for v in values])


class Harness:
    """Runs and records benchmarks for one suite.

    Parameters
    ----------
    suite:
        Ledger stream name; entries land in ``BENCH_<suite>.json``.
    ledger:
        Destination :class:`~repro.perf.ledger.Ledger`; ``None`` keeps
        results in memory only (callers append later or just inspect).
    backend:
        Backend tag folded into every entry's env fingerprint.
    """

    def __init__(
        self,
        suite: str,
        ledger: Ledger | None = None,
        backend: str | None = None,
    ) -> None:
        self.suite = suite
        self.ledger = ledger
        self.backend = backend
        self.results: list[BenchResult] = []

    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        metrics: Mapping[str, Any],
        *,
        config: Mapping[str, Any] | None = None,
        counters: Counters | Mapping[str, int] | None = None,
        backend: str | None = None,
    ) -> BenchResult:
        """Record already-measured metrics as one ledger entry.

        ``metrics`` values may be :class:`Metric` instances, plain
        numbers (kind ``value``), or ``(value, kind)`` tuples.
        """
        coerced: dict[str, Metric] = {}
        for mname, value in metrics.items():
            if isinstance(value, tuple) and len(value) == 2:
                coerced[mname] = coerce_metric(value[0], kind=value[1])
            else:
                coerced[mname] = coerce_metric(value)
        snap: dict[str, int] | None
        if isinstance(counters, Counters):
            snap = counters.snapshot()
        elif counters is not None:
            snap = dict(counters)
        else:
            snap = None
        result = BenchResult(
            suite=self.suite,
            name=name,
            metrics=coerced,
            config=dict(config or {}),
            counters=snap,
            env=environment_fingerprint(backend=backend or self.backend),
        )
        self.results.append(result)
        if self.ledger is not None:
            self.ledger.append(result)
        return result

    # ------------------------------------------------------------------
    def time(
        self,
        fn: Callable[[], Any],
        *,
        name: str,
        repeats: int = 5,
        warmup: int = 1,
        config: Mapping[str, Any] | None = None,
        counters: Counters | Mapping[str, int] | None = None,
        backend: str | None = None,
        metrics: Mapping[str, Any] | None = None,
        keep_samples: bool = True,
    ) -> BenchResult:
        """Warm up, time ``fn`` ``repeats`` times, record the medians.

        The entry carries ``wall_seconds`` and ``cpu_seconds`` (kind
        ``time``, median over repeats, MAD attached) plus any extra
        ``metrics`` the caller supplies (e.g. counter-derived counts
        from the timed body's last run).
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        # Compile-time exclusion policy (DESIGN section 15): at least
        # one warmup pass always runs, so first-call costs -- the jit
        # backend's numba compilation above all -- can never leak into
        # a timed sample whatever ``warmup`` a bench module asked for.
        for _ in range(max(1, warmup)):
            fn()
        walls: list[float] = []
        cpus: list[float] = []
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                t0 = time.perf_counter()
                c0 = time.process_time()
                fn()
                cpus.append(time.process_time() - c0)
                walls.append(time.perf_counter() - t0)
        finally:
            if gc_was_enabled:
                gc.enable()
        timed: dict[str, Any] = {
            "wall_seconds": Metric(
                value=median(walls), kind="time", unit="s", repeats=repeats,
                mad=mad(walls), samples=sorted(walls) if keep_samples else None,
            ),
            "cpu_seconds": Metric(
                value=median(cpus), kind="time", unit="s", repeats=repeats,
                mad=mad(cpus), samples=sorted(cpus) if keep_samples else None,
            ),
        }
        if metrics:
            timed.update(metrics)
        cfg = {"repeats": repeats, "warmup": warmup, **(config or {})}
        return self.record(
            name, timed, config=cfg, counters=counters, backend=backend
        )
