"""Append-only performance ledger: ``BENCH_history.jsonl`` + snapshots.

Two artifacts per ledger root:

* ``BENCH_history.jsonl`` -- one schema-validated JSON entry per line,
  append-only (each append is flushed and fsynced, so a crash can at
  worst truncate the final line -- readers tolerate and count such
  lines).  This is the longitudinal record the regression gate's
  median/MAD windows are computed over.
* ``BENCH_<suite>.json`` -- the *current* snapshot of one suite: the
  latest entry per benchmark name, rewritten atomically (via
  :mod:`repro.io.atomic`) after every append.  This is the file CI
  archives and the ``repro perf check`` baseline comparator reads as
  "the latest run".

Writes go through :func:`repro.perf.schema.validate_entry`; an invalid
entry raises :class:`LedgerError` before touching disk, so the ledger
can only ever contain schema-conformant lines (modulo torn tails).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable

from repro.io.atomic import atomic_write_bytes
from repro.perf.schema import BenchResult, validate_entry

#: File name of the append-only history inside a ledger root.
HISTORY_NAME = "BENCH_history.jsonl"

#: Schema tag of the per-suite snapshot files.
SUITE_SCHEMA = "repro.bench-suite/1"


class LedgerError(Exception):
    """An entry failed validation or the ledger is unusable."""


class Ledger:
    """One directory of performance history.

    Parameters
    ----------
    root:
        Directory holding ``BENCH_history.jsonl`` and the per-suite
        snapshots.  Created on first write.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._skipped_lines = 0

    # ------------------------------------------------------------------
    @property
    def history_path(self) -> Path:
        return self.root / HISTORY_NAME

    def suite_path(self, suite: str) -> Path:
        return self.root / f"BENCH_{suite}.json"

    @property
    def skipped_lines(self) -> int:
        """Corrupt/torn history lines skipped by the last read."""
        return self._skipped_lines

    # ------------------------------------------------------------------
    def append(self, result: BenchResult | dict[str, Any]) -> dict[str, Any]:
        """Validate, append to history, refresh the suite snapshot.

        Returns the entry as written.  Raises :class:`LedgerError` when
        the entry does not conform to the schema.
        """
        entry = result.to_dict() if isinstance(result, BenchResult) else dict(result)
        problems = validate_entry(entry)
        if problems:
            raise LedgerError(
                f"refusing to append invalid entry "
                f"{entry.get('suite')}/{entry.get('name')}: "
                + "; ".join(problems)
            )
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True) + "\n"
        with open(self.history_path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self._write_suite_snapshot(str(entry["suite"]))
        return entry

    def append_all(self, results: Iterable[BenchResult | dict[str, Any]]) -> int:
        n = 0
        for result in results:
            self.append(result)
            n += 1
        return n

    # ------------------------------------------------------------------
    def entries(
        self, suite: str | None = None, name: str | None = None
    ) -> list[dict[str, Any]]:
        """All history entries, oldest first, optionally filtered.

        Corrupt lines (torn tail after a crash, manual edits) are
        skipped and counted in :attr:`skipped_lines`.
        """
        self._skipped_lines = 0
        out: list[dict[str, Any]] = []
        try:
            with open(self.history_path, encoding="utf-8") as fh:
                for raw in fh:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        entry = json.loads(raw)
                    except json.JSONDecodeError:
                        self._skipped_lines += 1
                        continue
                    if validate_entry(entry):
                        self._skipped_lines += 1
                        continue
                    if suite is not None and entry.get("suite") != suite:
                        continue
                    if name is not None and entry.get("name") != name:
                        continue
                    out.append(entry)
        except FileNotFoundError:
            pass
        return out

    def suites(self) -> list[str]:
        return sorted({e["suite"] for e in self.entries()})

    def latest(self, suite: str) -> dict[str, dict[str, Any]]:
        """Latest entry per benchmark name within ``suite``."""
        out: dict[str, dict[str, Any]] = {}
        for entry in self.entries(suite=suite):
            out[entry["name"]] = entry
        return out

    def metric_series(
        self,
        suite: str,
        name: str,
        metric: str,
        window: int | None = None,
    ) -> list[float]:
        """The historical values of one metric, oldest first.

        ``window`` keeps only the most recent N values -- the
        median/MAD window the regression gate uses as its noise model.
        """
        values = [
            float(e["metrics"][metric]["value"])
            for e in self.entries(suite=suite, name=name)
            if metric in e.get("metrics", {})
        ]
        if window is not None and window > 0:
            values = values[-window:]
        return values

    # ------------------------------------------------------------------
    def _write_suite_snapshot(self, suite: str) -> Path:
        latest = self.latest(suite)
        payload = {
            "schema": SUITE_SCHEMA,
            "suite": suite,
            "entries": len(self.entries(suite=suite)),
            "benchmarks": latest,
        }
        body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        return atomic_write_bytes(self.suite_path(suite), body.encode())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ledger(root={str(self.root)!r})"


def load_suite_snapshot(path: str | Path) -> dict[str, Any]:
    """Read a ``BENCH_<suite>.json`` snapshot, validating its entries."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("schema") != SUITE_SCHEMA:
        raise LedgerError(f"{path}: not a {SUITE_SCHEMA} snapshot")
    for name, entry in data.get("benchmarks", {}).items():
        problems = validate_entry(entry)
        if problems:
            raise LedgerError(f"{path}: benchmark {name!r}: {problems[0]}")
    return data
