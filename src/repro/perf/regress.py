"""Statistical regression gating over the performance ledger.

``repro perf check`` compares the *latest* ledger entry of every
benchmark against a committed baseline using robust statistics:

* **time/ratio metrics** regress only when the latest median exceeds
  the baseline by more than a relative threshold *and* clears a noise
  floor built from MADs -- the larger of the baseline's recorded MAD
  and the MAD of a sliding window over the ledger history (machines
  drift; the window keeps the noise model current), scaled by
  ``mad_factor``, with an absolute floor under it so microsecond-scale
  benchmarks can't flap on scheduler jitter;
* **count metrics** are deterministic (flop counts, iterations,
  launches): any drift beyond a tiny relative tolerance is a real
  behaviour change and fails the gate regardless of timing noise;
* **value metrics** are informational and never gate.

Baselines are plain JSON under ``benchmarks/baselines/`` written by
``repro perf baseline`` -- updating them is a deliberate, reviewable
act, never a side effect of running the gate.  Per-metric thresholds
can be pinned inside the baseline file itself and win over the policy
defaults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.io.atomic import atomic_write_bytes
from repro.perf.harness import mad as _mad
from repro.perf.harness import median as _median
from repro.perf.ledger import Ledger

#: Schema tag of baseline files.
BASELINE_SCHEMA = "repro.bench-baseline/1"

#: History window (entries) over which the ledger-side MAD is taken.
DEFAULT_WINDOW = 8


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric kind is judged."""

    #: Relative increase over baseline tolerated before regression.
    rel_threshold: float
    #: Noise floor = ``mad_factor`` x max(baseline MAD, window MAD).
    mad_factor: float = 3.0
    #: Absolute floor under the noise model (units of the metric).
    abs_floor: float = 0.0
    #: Whether decreases also fail (deterministic counts: yes).
    two_sided: bool = False
    #: Whether this kind gates at all.
    gates: bool = True


#: Default judgement per metric kind.
DEFAULT_POLICIES: dict[str, MetricPolicy] = {
    "time": MetricPolicy(rel_threshold=0.25, mad_factor=3.0, abs_floor=1e-4),
    "ratio": MetricPolicy(rel_threshold=0.25, mad_factor=3.0, abs_floor=1e-3),
    "count": MetricPolicy(
        rel_threshold=0.0, mad_factor=0.0, abs_floor=1e-9, two_sided=True
    ),
    "value": MetricPolicy(rel_threshold=0.0, gates=False),
}

#: Finding statuses that fail the gate.
FAILING = ("regression", "changed", "missing-metric", "missing-benchmark")


@dataclass(frozen=True)
class Finding:
    """Outcome of judging one (benchmark, metric) pair."""

    suite: str
    name: str
    metric: str
    kind: str
    status: str                   # ok | improved | new | regression | changed | missing-*
    baseline: float | None = None
    latest: float | None = None
    threshold: float = 0.0        # the allowance actually applied
    noise: float = 0.0            # the noise floor actually applied

    @property
    def failed(self) -> bool:
        return self.status in FAILING

    def describe(self) -> str:
        loc = f"{self.suite}/{self.name}:{self.metric}"
        if self.baseline is None or self.latest is None:
            return f"{loc}: {self.status}"
        delta = self.latest - self.baseline
        rel = delta / self.baseline if self.baseline else float("inf")
        return (
            f"{loc}: {self.status} "
            f"({self.baseline:.6g} -> {self.latest:.6g}, "
            f"{rel:+.1%}; allowance {self.threshold:.3g} + noise {self.noise:.3g})"
        )


@dataclass
class GateReport:
    """Everything one ``repro perf check`` invocation concluded."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.failed for f in self.findings)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.failed]

    def render(self) -> str:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.status] = counts.get(f.status, 0) + 1
        lines = ["PERF GATE " + ("OK" if self.ok else "FAILED")]
        lines.append(
            "  " + ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
            if counts
            else "  (nothing compared)"
        )
        for f in self.findings:
            if f.failed:
                lines.append("  !! " + f.describe())
        for f in self.findings:
            if f.status == "improved":
                lines.append("  ++ " + f.describe())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Judging
# ----------------------------------------------------------------------
def judge_metric(
    *,
    suite: str,
    name: str,
    metric: str,
    kind: str,
    latest: float,
    baseline: float,
    baseline_mad: float,
    window_values: list[float],
    policy: MetricPolicy,
) -> Finding:
    """Apply one policy to one metric pair; the gate's core rule."""
    if not policy.gates:
        return Finding(suite, name, metric, kind, "ok", baseline, latest)
    window_mad = _mad(window_values) if len(window_values) >= 3 else 0.0
    noise = max(
        policy.mad_factor * max(baseline_mad, window_mad), policy.abs_floor
    )
    allowance = policy.rel_threshold * abs(baseline)
    delta = latest - baseline
    if delta > allowance + noise:
        status = "regression" if not policy.two_sided else "changed"
    elif policy.two_sided and -delta > allowance + noise:
        status = "changed"
    elif not policy.two_sided and -delta > allowance + noise:
        status = "improved"
    else:
        status = "ok"
    return Finding(
        suite, name, metric, kind, status, baseline, latest,
        threshold=allowance, noise=noise,
    )


def check_suite(
    ledger: Ledger,
    suite: str,
    baseline: Mapping[str, Any],
    *,
    policies: Mapping[str, MetricPolicy] | None = None,
    window: int = DEFAULT_WINDOW,
    counts_only: bool = False,
) -> list[Finding]:
    """Judge one suite's latest ledger entries against its baseline."""
    policies = dict(DEFAULT_POLICIES, **(policies or {}))
    latest = ledger.latest(suite)
    findings: list[Finding] = []
    base_benches: Mapping[str, Any] = baseline.get("benchmarks", {})
    for bench_name, base in base_benches.items():
        entry = latest.get(bench_name)
        if entry is None:
            findings.append(
                Finding(suite, bench_name, "-", "-", "missing-benchmark")
            )
            continue
        metrics = entry.get("metrics", {})
        for mname, bm in base.get("metrics", {}).items():
            kind = str(bm.get("kind", "value"))
            if counts_only and kind != "count":
                continue
            policy = policies.get(kind, DEFAULT_POLICIES["value"])
            if bm.get("threshold") is not None:
                policy = replace(policy, rel_threshold=float(bm["threshold"]))
            m = metrics.get(mname)
            if m is None:
                if policy.gates:
                    findings.append(
                        Finding(suite, bench_name, mname, kind, "missing-metric")
                    )
                continue
            findings.append(
                judge_metric(
                    suite=suite,
                    name=bench_name,
                    metric=mname,
                    kind=kind,
                    latest=float(m["value"]),
                    baseline=float(bm["value"]),
                    baseline_mad=float(bm.get("mad") or 0.0),
                    window_values=ledger.metric_series(
                        suite, bench_name, mname, window=window
                    ),
                    policy=policy,
                )
            )
        for mname, m in metrics.items():
            if mname not in base.get("metrics", {}):
                findings.append(
                    Finding(
                        suite, bench_name, mname, str(m.get("kind", "value")),
                        "new", None, float(m["value"]),
                    )
                )
    for bench_name in latest:
        if bench_name not in base_benches:
            findings.append(Finding(suite, bench_name, "-", "-", "new"))
    return findings


def check(
    ledger: Ledger,
    baseline_dir: str | Path,
    suites: list[str] | None = None,
    *,
    policies: Mapping[str, MetricPolicy] | None = None,
    window: int = DEFAULT_WINDOW,
    counts_only: bool = False,
) -> GateReport:
    """Gate the ledger's latest entries against committed baselines.

    ``suites=None`` checks every suite that has a baseline file.  A
    requested suite without a baseline file is itself a failure (the
    gate must not silently pass on absent history).
    """
    baseline_dir = Path(baseline_dir)
    report = GateReport()
    if suites is None:
        suites = sorted(
            p.stem for p in baseline_dir.glob("*.json")
        ) if baseline_dir.is_dir() else []
    if not suites:
        report.findings.append(
            Finding("-", "-", "-", "-", "missing-benchmark")
        )
        return report
    for suite in suites:
        path = baseline_dir / f"{suite}.json"
        try:
            baseline = load_baseline(path)
        except (OSError, json.JSONDecodeError, ValueError):
            report.findings.append(
                Finding(suite, "-", "-", "-", "missing-benchmark")
            )
            continue
        report.findings.extend(
            check_suite(
                ledger, suite, baseline,
                policies=policies, window=window, counts_only=counts_only,
            )
        )
    return report


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: not a {BASELINE_SCHEMA} baseline")
    return data


def baseline_from_latest(
    ledger: Ledger, suite: str, thresholds: Mapping[str, float] | None = None
) -> dict[str, Any]:
    """Build a baseline payload from the suite's latest ledger entries.

    The per-entry medians become baseline values; recorded MADs ride
    along as the noise anchors.  ``thresholds`` pins per-metric
    relative thresholds (``{"wall_seconds": 0.4}``) into the file.
    """
    benches: dict[str, Any] = {}
    for name, entry in sorted(ledger.latest(suite).items()):
        metrics: dict[str, Any] = {}
        for mname, m in entry.get("metrics", {}).items():
            rec: dict[str, Any] = {"value": m["value"], "kind": m.get("kind", "value")}
            if m.get("mad") is not None:
                rec["mad"] = m["mad"]
            if thresholds and mname in thresholds:
                rec["threshold"] = thresholds[mname]
            metrics[mname] = rec
        benches[name] = {
            "metrics": metrics,
            "env": {
                k: entry.get("env", {}).get(k)
                for k in ("git_sha", "git_dirty", "python", "numpy", "backend")
                if k in entry.get("env", {})
            },
        }
    return {"schema": BASELINE_SCHEMA, "suite": suite, "benchmarks": benches}


def write_baseline(
    ledger: Ledger,
    baseline_dir: str | Path,
    suites: list[str] | None = None,
    thresholds: Mapping[str, float] | None = None,
) -> list[Path]:
    """Write (atomically) one baseline file per suite; returns paths."""
    baseline_dir = Path(baseline_dir)
    written: list[Path] = []
    for suite in suites if suites is not None else ledger.suites():
        payload = baseline_from_latest(ledger, suite, thresholds=thresholds)
        if not payload["benchmarks"]:
            continue
        body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        written.append(
            atomic_write_bytes(baseline_dir / f"{suite}.json", body.encode())
        )
    return written


def window_stats(values: list[float]) -> tuple[float, float]:
    """(median, MAD) of a history window -- exposed for reports/tests."""
    if not values:
        return 0.0, 0.0
    return _median(values), _mad(values)
