"""Table II — the five solver kernels, No-SVE vs SVE.

Three layers of reproduction:

1. **Real execution**: the Sec. II-F driver program runs the actual
   V2D routines (banded MATVEC, DPROD, DAXPY, DSCAL, DDAXPY) on a
   1000-equation system under the scalar and vector backends;
   pytest-benchmark times each routine in both modes.  The measured
   vector/scalar ratios are this substrate's Table II column.
2. **Machine model**: the calibrated A64FX kernel model reproduces the
   paper's published seconds and ratios.
3. **Invariants** (T-II.a): every kernel's SVE ratio < 0.35 in the
   model; in the Python proxy the vector backend wins every routine,
   and MATVEC -- the richest kernel -- gains the most.
"""

import numpy as np
import pytest

from repro.backend import numba_available
from repro.kernels import KernelDriver, KernelSuite
from repro.kernels.driver import ROUTINES, format_table2
from repro.perfmodel import KernelTimeModel, table2_report
from repro.perfmodel.paper_data import PAPER_TABLE2_RATIOS
from repro.testing import banded_system

# n=1000 as in the paper; reps scaled from 100,000 to keep the scalar
# (pure-Python) column tractable; outlying bands at the paper's x1=200.
DRIVER = KernelDriver(n=1000, reps=20, band_offset=200)

#: The jit column rides along wherever numba is installed (the CI
#: jit-smoke job); the driver's untimed warm-up call keeps numba's
#: compile time out of every sample.
BACKENDS = ["scalar", "vector"] + (["jit"] if numba_available() else [])


def _ops(backend: str):
    """One instance of each routine's operands for micro-benchmarks."""
    offsets, bands, x = banded_system(n=1000, band_offset=25)
    suite = KernelSuite(backend)
    rng = np.random.default_rng(1)
    y, z, out = rng.standard_normal(1000), rng.standard_normal(1000), np.empty(1000)
    return suite, offsets, bands, x, y, z, out


@pytest.mark.parametrize("backend", BACKENDS)
class TestKernelMicrobenchmarks:
    def test_bench_matvec(self, benchmark, backend):
        suite, offsets, bands, x, y, z, out = _ops(backend)
        benchmark(suite.matvec_banded, offsets, bands, x, out)

    def test_bench_dprod(self, benchmark, backend):
        suite, offsets, bands, x, y, z, out = _ops(backend)
        benchmark(suite.dprod, x, y)

    def test_bench_daxpy(self, benchmark, backend):
        suite, offsets, bands, x, y, z, out = _ops(backend)
        benchmark(suite.daxpy, 1.1, x, y, out)

    def test_bench_dscal(self, benchmark, backend):
        suite, offsets, bands, x, y, z, out = _ops(backend)
        benchmark(suite.dscal, y, 0.9, x, out)

    def test_bench_ddaxpy(self, benchmark, backend):
        suite, offsets, bands, x, y, z, out = _ops(backend)
        benchmark(suite.ddaxpy, 1.1, x, -0.7, y, z, out)


class TestTable2:
    def test_regenerate_table2(self, benchmark, bench_record, write_report):
        no_sve, sve, ratios = benchmark.pedantic(
            DRIVER.compare, rounds=1, iterations=1
        )
        # Third column wherever numba is installed: the compiled tier
        # runs the same driver (its first call is the untimed warm-up,
        # so the samples never include compilation).
        jit = DRIVER.run("jit") if numba_available() else None
        jit_ratios = jit.ratio_to(no_sve) if jit is not None else None
        measured = format_table2(no_sve, sve)
        if jit is not None:
            measured += "\n" + "\n".join(
                ["", f"{'Routine':<8} {'jit':>10} {'jit/No-SVE':>12} {'jit/SVE':>10}"]
                + [
                    f"{r:<8} {jit.cpu_seconds[r]:>10.4f} "
                    f"{jit_ratios[r]:>12.3f} "
                    f"{jit.cpu_seconds[r] / sve.cpu_seconds[r]:>10.3f}"
                    for r in ROUTINES
                ]
            )
        modeled = table2_report()
        write_report("table2_kernels", measured + "\n\n" + modeled)
        for r in ROUTINES:
            metrics = {
                "cpu_seconds_scalar": (no_sve.cpu_seconds[r], "time"),
                "cpu_seconds_vector": (sve.cpu_seconds[r], "time"),
                "sve_ratio": (ratios[r], "ratio"),
                "flops": (float(sve.counters[r]["flops"]), "count"),
            }
            if jit is not None:
                metrics["cpu_seconds_jit"] = (jit.cpu_seconds[r], "time")
                metrics["jit_ratio"] = (jit_ratios[r], "ratio")
            bench_record.record(
                r,
                metrics,
                config={"n": DRIVER.n, "reps": DRIVER.reps},
                counters=sve.counters[r],
                backend="vector",
            )
        # Python proxy invariant: vectorized wins every routine, by a lot.
        for r in ROUTINES:
            assert ratios[r] < 0.35, f"{r}: ratio {ratios[r]:.3f}"
        if jit is not None:
            # T-II.b for the compiled tier: fused single-pass loops beat
            # whole-array numpy on most routines (4 of 5 allows one
            # bandwidth-bound routine to tie on noisy runners).
            wins = sum(jit.cpu_seconds[r] < sve.cpu_seconds[r] for r in ROUTINES)
            assert wins >= 4, f"jit beat vector on only {wins}/5 kernels"

    def test_model_matches_paper_ratios(self):
        km = KernelTimeModel()
        for k, (_t0, _t1, ratio) in km.table2().items():
            assert ratio == pytest.approx(PAPER_TABLE2_RATIOS[k], abs=0.01)
            assert ratio < 0.35  # T-II.a

    def test_matvec_and_dprod_gain_most(self):
        km = KernelTimeModel()
        ratios = {k: r for k, (_a, _b, r) in km.table2().items()}
        assert ratios["MATVEC"] <= 0.20 and ratios["DPROD"] <= 0.20
        assert max(ratios, key=ratios.get) == "DSCAL"

    def test_event_counts_backend_invariant(self):
        # PAPI flop counts must not depend on how the code was compiled.
        r_s = KernelDriver(n=128, reps=2, band_offset=16).run("scalar")
        r_v = KernelDriver(n=128, reps=2, band_offset=16).run("vector")
        for routine in ROUTINES:
            assert r_s.counters[routine]["flops"] == r_v.counters[routine]["flops"]
        # ... but the SIMD op mix is the whole difference:
        assert r_v.counters["DPROD"]["vector_ops"] > 0
        assert r_s.counters["DPROD"]["vector_ops"] == 0
