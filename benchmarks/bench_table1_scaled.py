"""Table I, real-execution counterpart: scaled V2D runs.

The paper's table varies (a) code generation (SVE on/off via
compilers) and (b) the process topology.  The machine model carries
the absolute A64FX seconds; this benchmark runs the *actual* simulator
on a scaled-down Gaussian-pulse problem and measures the same two
effects directly in Python:

* vector (SVE-analogue) vs scalar (no-SVE-analogue) execution of the
  identical run -- the scalar column must be much slower;
* topology sweep at fixed problem size -- the decomposed runs must
  agree with the serial physics bit-for-bit while their communication
  counters scale with the topology's halo perimeter.
"""

import numpy as np
import pytest

from repro.problems import GaussianPulseProblem
from repro.v2d import Simulation, V2DConfig, run_parallel

#: scaled problem: 25 x 10 zones, 2 steps (6 solves), tight tolerance.
SCALE_KW = dict(
    nx1=25, nx2=10, extent1=(0.0, 2.0), extent2=(0.0, 1.0),
    nsteps=2, dt=1e-3, precond="jacobi", solver_tol=1e-9,
)


def run_once(backend: str, nprx1: int = 1, nprx2: int = 1):
    cfg = V2DConfig(backend=backend, nprx1=nprx1, nprx2=nprx2, **SCALE_KW)
    reports = run_parallel(cfg, GaussianPulseProblem())
    return reports


class TestScaledRuns:
    def test_bench_vector_backend(self, benchmark):
        reports = benchmark(run_once, "vector")
        assert reports[0].all_converged

    def test_bench_scalar_backend(self, benchmark):
        reports = benchmark(run_once, "scalar")
        assert reports[0].all_converged

    def test_sve_analogue_speedup(self, bench_record, write_report):
        # Vectorized execution must beat element-loop execution by a
        # wide margin (the Python analogue of the SVE columns).
        tv = min(run_once("vector")[0].wall_seconds for _ in range(2))
        ts = min(run_once("scalar")[0].wall_seconds for _ in range(2))
        ratio = tv / ts
        bench_record.record(
            "backend_comparison",
            {
                "wall_vector": (tv, "time"),
                "wall_scalar": (ts, "time"),
                "vector_scalar_ratio": (ratio, "ratio"),
            },
            config=SCALE_KW,
            backend="vector",
        )
        report = "\n".join(
            [
                "TABLE I (scaled, real execution) — backend comparison",
                f"  problem: {SCALE_KW['nx1']}x{SCALE_KW['nx2']}x2, "
                f"{SCALE_KW['nsteps']} steps",
                f"  scalar (no-SVE analogue): {ts:.3f} s",
                f"  vector (SVE analogue)   : {tv:.3f} s",
                f"  vector/scalar ratio     : {ratio:.3f} "
                "(paper's whole-app Cray ratio: 0.69; Python's interpreter",
                "   overhead makes the gap far larger here)",
            ]
        )
        write_report("table1_scaled_backends", report)
        assert ratio < 0.7, f"vector backend not faster: ratio {ratio:.2f}"

    @pytest.mark.parametrize("nprx1,nprx2", [(5, 1), (5, 2), (1, 2)])
    def test_topology_invariance_of_physics(self, nprx1, nprx2):
        serial = run_once("vector")[0]
        par = run_parallel(
            V2DConfig(backend="vector", nprx1=nprx1, nprx2=nprx2, **SCALE_KW),
            GaussianPulseProblem(),
        )
        assert par[0].final_energy == pytest.approx(serial.final_energy, rel=1e-9)

    def test_halo_traffic_scales_with_perimeter(self, bench_record, write_report):
        rows = []
        for nprx1, nprx2 in [(5, 1), (5, 2)]:
            cfg = V2DConfig(backend="vector", nprx1=nprx1, nprx2=nprx2, **SCALE_KW)
            reports = run_parallel(cfg, GaussianPulseProblem())
            merged_msgs = sum(r.counters.messages_sent for r in reports)
            merged_bytes = sum(r.counters.bytes_sent for r in reports)
            rows.append((nprx1, nprx2, merged_msgs, merged_bytes))
            bench_record.record(
                f"halo_traffic_{nprx1}x{nprx2}",
                {
                    "messages": (float(merged_msgs), "count"),
                    "bytes_sent": (float(merged_bytes), "count"),
                },
                config={**SCALE_KW, "nprx1": nprx1, "nprx2": nprx2},
                backend="vector",
            )
        report_lines = ["Topology sweep (real runs): messages / bytes per run"]
        for n1, n2, msgs, nbytes in rows:
            report_lines.append(f"  {n1}x{n2}: {msgs:6d} msgs  {nbytes:10,d} bytes")
        write_report("table1_scaled_topology", "\n".join(report_lines))
        # more tiles -> more messages
        assert rows[1][2] > rows[0][2]

    def test_serial_solver_iterations_stable_across_backends(self):
        rv = run_once("vector")[0]
        rs = run_once("scalar")[0]
        assert rv.total_iterations == rs.total_iterations
