"""Ablation — process-topology sweep at fixed Np.

Table I shows that at fixed processor count, flatter NX1 x NX2
arrangements beat 1-D strips (e.g. 20 processors: 20x1 = 16.78 s,
10x2 = 15.73 s, 5x4 = 15.39 s with Cray opt).  The driver is halo
perimeter: a strip tile of 10x100 zones exposes twice the boundary of
a 40x25 tile.  This ablation sweeps every factorization of the paper's
Np values through the decomposition metrics and the cost model, and
verifies the perimeter effect on real decomposed runs.
"""

import pytest

from repro.grid import TileDecomposition
from repro.perfmodel import CostModel
from repro.perfmodel.paper_data import CRAY_OPT, PAPER_NX1, PAPER_NX2
from repro.problems import GaussianPulseProblem
from repro.v2d import V2DConfig, run_parallel

MODEL = CostModel()


def factorizations(np_: int):
    return [
        (n1, np_ // n1)
        for n1 in range(1, np_ + 1)
        if np_ % n1 == 0 and n1 <= PAPER_NX1 and np_ // n1 <= PAPER_NX2
    ]


class TestTopologyAblation:
    def test_bench_model_sweep(self, benchmark):
        def sweep():
            return {
                np_: {t: MODEL.predict(CRAY_OPT, *t).total for t in factorizations(np_)}
                for np_ in (10, 20, 25, 40, 50)
            }

        results = benchmark(sweep)
        assert all(results.values())

    def test_halo_monotone_in_perimeter(self, bench_record, write_report):
        lines = ["ABLATION — topology sweep at fixed Np (Cray opt model)"]
        metrics = {}
        for np_ in (20, 40, 50):
            rows = []
            for t in factorizations(np_):
                d = TileDecomposition(PAPER_NX1, PAPER_NX2, *t)
                pred = MODEL.predict(CRAY_OPT, *t)
                rows.append((t, d.max_halo_zones(), d.max_tile_zones(), pred.total))
            rows.sort(key=lambda r: r[1])
            lines.append(f"  Np={np_}:")
            for (n1, n2), halo, zones, total in rows:
                lines.append(
                    f"    {n1:3d}x{n2:<3d} halo={halo:4d} zones={zones:5d}  "
                    f"T={total:6.2f} s"
                )
                metrics[f"halo_{np_}_{n1}x{n2}"] = (float(halo), "count")
                metrics[f"model_total_{np_}_{n1}x{n2}"] = (total, "value")
            # Among equally load-balanced factorizations, model time is
            # non-decreasing in halo perimeter (imbalanced ones pay a
            # separate max-tile penalty, e.g. 5x8 on the 100-zone axis).
            balanced = [r for r in rows if r[2] == min(q[2] for q in rows)]
            totals = [r[3] for r in balanced]
            assert totals == sorted(totals), f"Np={np_}"
        write_report("ablation_topology", "\n".join(lines))
        bench_record.record(
            "topology_sweep",
            metrics,
            config={"nx1": PAPER_NX1, "nx2": PAPER_NX2},
        )

    def test_best_topology_is_flattish(self):
        for np_ in (20, 40, 50):
            best = MODEL.best_topology(CRAY_OPT, np_)
            strip = (np_, 1)
            assert MODEL.predict(CRAY_OPT, *best).total <= MODEL.predict(
                CRAY_OPT, *strip
            ).total
            assert best != strip

    def test_real_runs_message_volume_follows_perimeter(self):
        # Scaled real runs: 4 ranks as 4x1 strip vs 2x2 square.
        kw = dict(
            nx1=20, nx2=20, nsteps=1, dt=1e-3, precond="jacobi", solver_tol=1e-8
        )
        traffic = {}
        for topo in [(4, 1), (2, 2)]:
            cfg = V2DConfig(nprx1=topo[0], nprx2=topo[1], **kw)
            reports = run_parallel(cfg, GaussianPulseProblem())
            traffic[topo] = sum(r.counters.bytes_sent for r in reports)
        assert traffic[(2, 2)] < traffic[(4, 1)]
