"""Ablation — the solver/preconditioner trade space of ref. [7].

The paper's solver stack (SPAI-preconditioned ganged BiCGSTAB) was
chosen by an earlier comparison study (Swesty, Smolarski & Saylor
2004).  This ablation re-runs that comparison on the reproduced
radiation systems:

* Krylov method: BiCGSTAB vs GMRES(30) vs GMRES(5);
* preconditioner: SPAI vs ILU(0) vs Jacobi vs none -- including the
  SIMD angle: ILU(0) saves the most iterations but its sequential
  triangular solves cannot vectorize, so under the *vector* backend
  SPAI wins on wall time while losing on iterations.
"""

import numpy as np
import pytest

from repro.kernels import KernelSuite
from repro.linalg import (
    ILU0Preconditioner,
    JacobiPreconditioner,
    SPAIPreconditioner,
    StencilOperator,
    bicgstab,
    gmres,
)
from repro.testing import diffusion_coeffs

COEFFS = diffusion_coeffs(ns=2, n1=24, n2=20, seed=13)
RHS = np.random.default_rng(13).standard_normal((2, 24, 20))
TOL = 1e-10


def run_solver(method: str, precond: str = "none"):
    suite = KernelSuite("vector")
    op = StencilOperator(COEFFS, suite=suite)
    M = {
        "none": None,
        "jacobi": JacobiPreconditioner.from_stencil(COEFFS, suite=suite),
        "spai": SPAIPreconditioner.from_stencil(COEFFS, suite=suite),
        "ilu0": ILU0Preconditioner.from_stencil(COEFFS),
    }[precond]
    if method == "bicgstab":
        return bicgstab(op, RHS, tol=TOL, M=M, suite=suite)
    if method == "gmres30":
        return gmres(op, RHS, tol=TOL, restart=30, M=M, suite=suite)
    return gmres(op, RHS, tol=TOL, restart=5, M=M, suite=suite)


class TestSolverComparison:
    @pytest.mark.parametrize("method", ["bicgstab", "gmres30", "gmres5"])
    def test_bench_methods_unpreconditioned(self, benchmark, method):
        res = benchmark(run_solver, method)
        assert res.converged

    @pytest.mark.parametrize("precond", ["spai", "ilu0"])
    def test_bench_bicgstab_preconditioned(self, benchmark, precond):
        res = benchmark(run_solver, "bicgstab", precond)
        assert res.converged

    def test_comparison_report(self, bench_record, write_report):
        import time

        rows = []
        for method in ("bicgstab", "gmres30", "gmres5"):
            for precond in ("none", "jacobi", "spai", "ilu0"):
                t0 = time.perf_counter()
                res = run_solver(method, precond)
                dt = time.perf_counter() - t0
                rows.append((method, precond, res.iterations, res.matvecs, dt,
                             res.converged))
        lines = [
            "ABLATION — solver x preconditioner (ref. [7] reprise, "
            f"{COEFFS.nunknowns} unknowns, vector backend)",
            f"{'method':<10} {'precond':<8} {'iters':>6} {'matvecs':>8} "
            f"{'wall(s)':>9} {'ok':>4}",
        ]
        for m, p, it, mv, dt, ok in rows:
            lines.append(f"{m:<10} {p:<8} {it:>6} {mv:>8} {dt:>9.4f} {str(ok):>4}")
        write_report("ablation_solvers", "\n".join(lines))
        bench_record.record(
            "solver_grid",
            {
                f"iters_{m}_{p}": (float(it), "count")
                for m, p, it, mv, dt, ok in rows
            },
            config={"nunknowns": COEFFS.nunknowns, "tol": TOL},
            backend="vector",
        )
        assert all(r[5] for r in rows)

        by = {(m, p): (it, dt) for m, p, it, mv, dt, ok in rows}
        # every answer converged; the 2004-paper orderings hold:
        assert by[("bicgstab", "spai")][0] < by[("bicgstab", "none")][0]
        assert by[("bicgstab", "ilu0")][0] <= by[("bicgstab", "spai")][0]
        # short-restart GMRES needs the most iterations
        assert by[("gmres5", "none")][0] >= by[("gmres30", "none")][0]

    def test_simd_angle_spai_apply_vectorizes_ilu_does_not(
        self, bench_record, write_report
    ):
        """Wall-time per preconditioner apply: SPAI (stencil matvec)
        drops hugely from scalar to vector backend; ILU(0) barely moves
        (sequential triangular solves)."""
        import time

        x = RHS
        timings = {}
        for name, make in (
            ("spai", lambda s: SPAIPreconditioner.from_stencil(COEFFS, suite=s)),
            ("ilu0", lambda s: ILU0Preconditioner.from_stencil(COEFFS)),
        ):
            for backend in ("scalar", "vector"):
                suite = KernelSuite(backend)
                M = make(suite)
                M.apply(x)  # warm
                t0 = time.perf_counter()
                for _ in range(5):
                    M.apply(x)
                timings[(name, backend)] = (time.perf_counter() - t0) / 5

        spai_gain = timings[("spai", "scalar")] / timings[("spai", "vector")]
        ilu_gain = timings[("ilu0", "scalar")] / timings[("ilu0", "vector")]
        bench_record.record(
            "precond_simd",
            {
                "spai_gain": (spai_gain, "ratio"),
                "ilu_gain": (ilu_gain, "ratio"),
                "spai_apply_vector_seconds": (
                    timings[("spai", "vector")], "time",
                ),
                "ilu_apply_vector_seconds": (
                    timings[("ilu0", "vector")], "time",
                ),
            },
            backend="vector",
        )
        lines = [
            "SIMD angle — preconditioner apply time, scalar vs vector backend",
            f"  SPAI : {1e3 * timings[('spai', 'scalar')]:8.3f} ms -> "
            f"{1e3 * timings[('spai', 'vector')]:8.3f} ms "
            f"({spai_gain:.1f}x from vectorization)",
            f"  ILU0 : {1e3 * timings[('ilu0', 'scalar')]:8.3f} ms -> "
            f"{1e3 * timings[('ilu0', 'vector')]:8.3f} ms "
            f"({ilu_gain:.1f}x — sequential, backend-independent)",
            "  => why a SIMD-targeted code picks SPAI despite ILU's iteration edge",
        ]
        write_report("ablation_solvers_simd", "\n".join(lines))
        assert spai_gain > 3.0
        assert ilu_gain < 2.0
