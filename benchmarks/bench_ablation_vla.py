"""Ablation — vector-length-agnostic (VLA) sweep, 128-2048 bits.

The Armv8.2-A SVE ISA "allows for vector lengths anywhere from
128-2048 bits and enables vector length agnostic (VLA) programming";
the A64FX implements 512.  This ablation sweeps the model's vector
width through the architectural range (kernel-time ratios and SIMD
instruction counts) and checks the substrate's VLA accounting: results
are identical at every width, only the packed-op count changes.
"""

import numpy as np
import pytest

from repro.backend import VectorBackend
from repro.kernels import KernelSuite
from repro.monitor import Counters
from repro.perfmodel import A64FX, KernelTimeModel

WIDTHS = (128, 256, 512, 1024, 2048)


class TestVLAAblation:
    def test_bench_model_sweep(self, benchmark):
        km = KernelTimeModel()

        def sweep():
            return {k: km.vla_sweep(k, WIDTHS) for k in km.scalar_cpe}

        results = benchmark(sweep)
        assert set(results) == {"MATVEC", "DPROD", "DAXPY", "DSCAL", "DDAXPY"}

    def test_ratio_improves_with_width(self, bench_record, write_report):
        km = KernelTimeModel()
        lines = ["ABLATION — VLA width sweep (modeled SVE/no-SVE ratio)"]
        header = "  kernel  " + "".join(f"{b:>8}" for b in WIDTHS)
        lines.append(header)
        metrics = {}
        for k in km.scalar_cpe:
            sweep = km.vla_sweep(k, WIDTHS)
            lines.append("  " + f"{k:<8}" + "".join(f"{sweep[b]:>8.3f}" for b in WIDTHS))
            vals = [sweep[b] for b in WIDTHS]
            assert all(a >= b for a, b in zip(vals, vals[1:]))
            # the A64FX point reproduces Table II
            metrics[f"ratio_{k}_512"] = (sweep[512], "value")
        write_report("ablation_vla", "\n".join(lines))
        bench_record.record(
            "vla_sweep", metrics, config={"widths": list(WIDTHS)},
        )

    def test_a64fx_point_matches_table2(self):
        km = KernelTimeModel()
        assert km.vla_sweep("MATVEC")[512] == pytest.approx(0.16, abs=0.01)

    def test_substrate_results_width_invariant(self):
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal(1000), rng.standard_normal(1000)
        base = VectorBackend(512).dot(x, y)
        for bits in WIDTHS:
            assert VectorBackend(bits).dot(x, y) == base

    def test_simd_op_accounting_scales_with_lanes(self):
        x, y = np.ones(1024), np.ones(1024)
        ops = {}
        for bits in WIDTHS:
            c = Counters()
            KernelSuite(VectorBackend(bits), counters=c).dprod(x, y)
            ops[bits] = c.vector_ops
        assert ops[128] == 512 and ops[512] == 128 and ops[2048] == 32
        # flop counts identical regardless of width
        c1, c2 = Counters(), Counters()
        KernelSuite(VectorBackend(128), counters=c1).dprod(x, y)
        KernelSuite(VectorBackend(2048), counters=c2).dprod(x, y)
        assert c1.flops == c2.flops

    def test_peak_flops_scale_with_width(self):
        narrow = A64FX(sve_bits=128)
        wide = A64FX(sve_bits=2048)
        assert wide.peak_flops(1, True) == 16 * narrow.peak_flops(1, True)
