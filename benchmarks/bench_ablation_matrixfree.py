"""Ablation — matrix-free vs assembled-matrix Matvec.

V2D never stores the matrix: "This strategy also avoids the costly
packing/unpacking of data into some form of sparse matrix storage each
time a linear system must be solved."  This ablation quantifies that
choice on this substrate: per-apply cost of the stencil Matvec vs a
SciPy CSR multiply, *plus* the assembly cost the matrix-free form
avoids on every one of the run's 300 systems.
"""

import numpy as np
import pytest

from repro.linalg import StencilOperator, assemble_csr
from repro.testing import diffusion_coeffs

COEFFS = diffusion_coeffs(ns=2, n1=200, n2=100, coupled=False, seed=5)
OP = StencilOperator(COEFFS)
X = np.random.default_rng(5).standard_normal(OP.operand_shape)
CSR = assemble_csr(COEFFS)
XFLAT = X.transpose(0, 2, 1).reshape(-1)


class TestMatrixFreeAblation:
    def test_bench_matrix_free_apply(self, benchmark):
        out = np.empty(OP.operand_shape)
        benchmark(OP.apply, X, out)

    def test_bench_csr_apply(self, benchmark):
        benchmark(CSR.dot, XFLAT)

    def test_bench_assembly_cost(self, benchmark):
        # the cost paid per solve if the matrix were stored
        benchmark(assemble_csr, COEFFS)

    def test_equivalence_and_report(self, bench_record, write_report):
        import time

        y_mf = OP.apply(X).transpose(0, 2, 1).reshape(-1)
        y_csr = CSR @ XFLAT
        np.testing.assert_allclose(y_mf, y_csr, rtol=1e-12, atol=1e-12)

        def t(fn, reps=20):
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        t_mf = t(lambda: OP.apply(X))
        t_csr = t(lambda: CSR.dot(XFLAT))
        t_asm = t(lambda: assemble_csr(COEFFS), reps=5)
        bench_record.record(
            "matvec_variants",
            {
                "matrix_free_apply_seconds": (t_mf, "time"),
                "csr_apply_seconds": (t_csr, "time"),
                "csr_assembly_seconds": (t_asm, "time"),
                "assembly_per_apply": (t_asm / max(t_csr, 1e-12), "ratio"),
            },
            config={"nunknowns": OP.size},
        )
        report = "\n".join(
            [
                "ABLATION — matrix-free vs assembled Matvec "
                f"({OP.size:,} unknowns, paper-size grid)",
                f"  matrix-free stencil apply : {1e3 * t_mf:8.3f} ms",
                f"  CSR apply                 : {1e3 * t_csr:8.3f} ms",
                f"  CSR assembly (per system) : {1e3 * t_asm:8.3f} ms",
                f"  assembly ~ {t_asm / max(t_csr, 1e-12):.1f}x one CSR apply; 300 systems/run "
                "would pay it 300 times",
            ]
        )
        write_report("ablation_matrixfree", report)
        # The avoided cost is real: assembling costs several applies.
        assert t_asm > 2 * t_csr
