"""Telemetry overhead — what the observability layer costs when armed.

The pipeline's contract is asymmetric: **disabled costs nothing**
(a module-level boolean check; the bitwise-identity test in
``tests/test_telemetry.py`` locks the stronger claim that outputs are
unchanged), while **enabled cost is measured here** so a regression in
the hot-path guards shows up in ``repro perf check`` instead of in
production runs.

Three measurements:

* primitive rates — ``Histogram.observe`` and ``flight.record`` calls
  per second, plus one full OpenMetrics render of a realistic registry;
* end-to-end — the same small solve with telemetry off vs on, where
  the per-step instrumentation (iteration histogram, step gauge,
  flight ring) is the only difference;
* the shape invariant: enabled overhead stays under a generous cap
  (instrumentation is per *step*, not per kernel call, so it must be
  lost in solver noise).
"""

from __future__ import annotations

import time

from repro.monitor import flight, telemetry
from repro.monitor.telemetry import (
    ITERATION_BUCKETS,
    Histogram,
    render_openmetrics,
)
from repro.monitor.trace import MetricsRegistry
from repro.perf.schema import Metric
from repro.problems import GaussianPulseProblem
from repro.v2d import Simulation, V2DConfig

CFG = dict(nx1=32, nx2=16, nsteps=4, dt=1e-3, precond="jacobi",
           profile=False)
OBSERVE_OPS = 200_000
FLIGHT_OPS = 50_000
#: Enabled-path cap: per-step instrumentation against a real solve.
MAX_OVERHEAD_FRACTION = 0.25


def _run_once() -> float:
    t0 = time.perf_counter()
    Simulation(V2DConfig(**CFG), GaussianPulseProblem()).run()
    return time.perf_counter() - t0


def _best_of(n: int, fn) -> float:
    return min(fn() for _ in range(n))


class TestTelemetryOverhead:
    def test_primitive_rates_and_run_overhead(self, bench_record,
                                              write_report):
        # --- primitive rates ---------------------------------------
        hist = Histogram(ITERATION_BUCKETS)
        t0 = time.perf_counter()
        for i in range(OBSERVE_OPS):
            hist.observe(float(i % 997))
        observe_rate = OBSERVE_OPS / (time.perf_counter() - t0)

        prev = telemetry.set_enabled(True)
        try:
            flight.reset()
            t0 = time.perf_counter()
            for i in range(FLIGHT_OPS):
                flight.record(0, "step", "step", step=i, dt=1e-3)
            flight_rate = FLIGHT_OPS / (time.perf_counter() - t0)

            registry = MetricsRegistry()
            for r in range(8):
                registry.set(f"repro.rank.{r}.heartbeat_age_seconds", 0.1)
            for i in range(1000):
                registry.observe("repro.serve.latency_seconds", 0.01 * i)
                registry.observe("repro.solver.iterations_per_step",
                                 float(i % 40), buckets=ITERATION_BUCKETS)
            t0 = time.perf_counter()
            text = render_openmetrics(registry)
            render_seconds = time.perf_counter() - t0
            assert text.endswith("# EOF\n")

            # --- end-to-end: same solve, gate off vs on ------------
            telemetry.set_enabled(False)
            off_seconds = _best_of(3, _run_once)
            telemetry.set_enabled(True)
            flight.reset()
            on_seconds = _best_of(3, _run_once)
        finally:
            telemetry.set_enabled(prev)
            flight.reset()

        overhead = max(0.0, on_seconds / off_seconds - 1.0)
        assert overhead <= MAX_OVERHEAD_FRACTION, (
            f"telemetry-on run {overhead:.1%} slower than off "
            f"(cap {MAX_OVERHEAD_FRACTION:.0%}); the per-step guards "
            f"have grown into the hot path"
        )

        bench_record.record(
            "overhead",
            {
                "observe_ops_per_s": (observe_rate, "value"),
                "flight_record_ops_per_s": (flight_rate, "value"),
                "render_openmetrics_seconds": Metric(
                    value=render_seconds, kind="time", unit="s",
                ),
                "run_off_seconds": Metric(
                    value=off_seconds, kind="time", unit="s", repeats=3,
                ),
                "run_on_seconds": Metric(
                    value=on_seconds, kind="time", unit="s", repeats=3,
                ),
                "enabled_overhead_fraction": Metric(
                    value=overhead, kind="ratio",
                ),
            },
            config={**CFG, "observe_ops": OBSERVE_OPS,
                    "flight_ops": FLIGHT_OPS},
        )

        write_report("telemetry_overhead", "\n".join([
            "TELEMETRY OVERHEAD (armed vs disarmed)",
            f"  Histogram.observe      {observe_rate:>12.0f} ops/s",
            f"  flight.record          {flight_rate:>12.0f} ops/s",
            f"  OpenMetrics render     {render_seconds * 1e3:>12.3f} ms",
            f"  run, telemetry off     {off_seconds:>12.4f} s",
            f"  run, telemetry on      {on_seconds:>12.4f} s",
            f"  enabled overhead       {overhead:>12.1%}"
            f"   (cap {MAX_OVERHEAD_FRACTION:.0%})",
        ]))
