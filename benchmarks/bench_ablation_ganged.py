"""Ablation — ganged vs textbook BiCGSTAB reductions.

V2D "gangs inner products to reduce the number of parallel global
reduction operations required per iteration".  This ablation measures
what the restructuring buys: reduction counts per iteration (6 -> 2),
identical convergence, and the modeled time impact at scale (the
reduction term is what bends Table I's large-Np rows upward).
"""

import numpy as np
import pytest

from repro.linalg import (
    REDUCTIONS_PER_ITER_CLASSIC,
    REDUCTIONS_PER_ITER_GANGED,
    StencilOperator,
    bicgstab,
)
from repro.monitor import Counters
from repro.parallel import run_spmd, CartComm
from repro.testing import diffusion_coeffs

COEFFS = diffusion_coeffs(ns=2, n1=24, n2=16, seed=11)
RHS = np.random.default_rng(11).standard_normal((2, 24, 16))


def solve(ganged: bool):
    op = StencilOperator(COEFFS)
    return bicgstab(op, RHS, tol=1e-10, ganged=ganged)


class TestGangedAblation:
    def test_bench_classic(self, benchmark):
        res = benchmark(solve, False)
        assert res.converged

    def test_bench_ganged(self, benchmark):
        res = benchmark(solve, True)
        assert res.converged

    def test_reduction_counts(self, bench_record, write_report):
        classic = solve(False)
        ganged = solve(True)
        per_c = classic.reductions / classic.iterations
        per_g = ganged.reductions / ganged.iterations
        bench_record.record(
            "reductions",
            {
                "classic_iterations": (float(classic.iterations), "count"),
                "ganged_iterations": (float(ganged.iterations), "count"),
                "classic_reductions": (float(classic.reductions), "count"),
                "ganged_reductions": (float(ganged.reductions), "count"),
            },
            backend="vector",
        )
        report = "\n".join(
            [
                "ABLATION — ganged vs textbook BiCGSTAB reductions",
                f"  classic: {classic.iterations} iters, "
                f"{classic.reductions} reductions ({per_c:.1f}/iter)",
                f"  ganged : {ganged.iterations} iters, "
                f"{ganged.reductions} reductions ({per_g:.1f}/iter)",
                f"  nominal per-iteration counts: classic "
                f"{REDUCTIONS_PER_ITER_CLASSIC}, ganged {REDUCTIONS_PER_ITER_GANGED}",
            ]
        )
        write_report("ablation_ganged", report)
        assert per_g < 0.55 * per_c
        np.testing.assert_allclose(classic.x, ganged.x, rtol=1e-6, atol=1e-8)

    def test_allreduce_traffic_in_decomposed_solve(self):
        # In a real decomposed solve, the ganged variant must issue
        # fewer allreduce operations on every rank.
        def prog(comm, ganged):
            cart = CartComm.create(comm, nx1=24, nx2=16, nprx1=2, nprx2=1)
            tile = cart.tile
            local = diffusion_coeffs(ns=2, n1=tile.nx1, n2=tile.nx2, seed=11)
            op = StencilOperator(local, cart=cart)
            b = RHS[:, tile.slice1, tile.slice2]
            res = bicgstab(op, b, tol=1e-10, ganged=ganged, comm=comm)
            return (res.converged, comm.counters.reductions, res.iterations)

        out_c = run_spmd(2, prog, False, timeout=60.0)
        out_g = run_spmd(2, prog, True, timeout=60.0)
        assert all(o[0] for o in out_c + out_g)
        red_c = out_c[0][1] / out_c[0][2]
        red_g = out_g[0][1] / out_g[0][2]
        assert red_g < 0.55 * red_c
