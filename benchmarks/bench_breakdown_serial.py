"""Sec. II-E, serial breakdown — where the single-processor time goes.

Paper: "When using a single processor, the majority of time was spent
in the matrix-vector multiplications, approximately 141 seconds out of
181, with preconditioning taking about 14 additional seconds"; Arm MAP
showed "the three calls to the BiCGSTAB routine each took
approximately 31-33% of the total time".

Reproduced two ways:

* the calibrated model's attribution (absolute seconds), and
* a real scaled run under the TAU-style profiler, asserting the same
  *structure*: Matvec dominates the solver time, three BiCGSTAB call
  sites per step at roughly equal share.
"""

import pytest

from repro.perfmodel import CostModel, breakdown_report
from repro.perfmodel.paper_data import CRAY_OPT, PAPER_BREAKDOWN_SERIAL
from repro.problems import GaussianPulseProblem
from repro.v2d import Simulation, V2DConfig

from repro.transport import FluxLimiter

# LP limiter + matter coupling make all three solve sites iterate (the
# full nonlinear structure of a V2D run, not just the linear limit).
CFG = V2DConfig(
    nx1=50, nx2=25, extent1=(0.0, 2.0), extent2=(0.0, 1.0),
    nsteps=3, dt=1e-3, precond="spai", solver_tol=1e-9, backend="vector",
    limiter=FluxLimiter.LEVERMORE_POMRANING, emission=True, couple_matter=True,
)


def run_profiled() -> Simulation:
    sim = Simulation(CFG, GaussianPulseProblem())
    sim.run()
    return sim


class TestSerialBreakdown:
    def test_regenerate_breakdown(self, benchmark, bench_record, write_report):
        sim = benchmark.pedantic(run_profiled, rounds=1, iterations=1)
        prof = sim.profiler
        flat = prof.flat()
        total = prof.total_time()
        bench_record.record(
            "serial_profile",
            {
                "total_seconds": (total, "time"),
                "bicgstab_fraction": (
                    prof.inclusive_fraction("BiCGSTAB"), "ratio",
                ),
                "bicgstab_calls": (float(flat["BiCGSTAB"][2]), "count"),
                "matvec_calls": (float(flat["MATVEC"][2]), "count"),
            },
            counters=sim.counters,
            backend="vector",
        )

        lines = [breakdown_report(CostModel()), "", "Real scaled run (this substrate):"]
        for name in ("BiCGSTAB", "MATVEC", "PRECOND", "build_system"):
            if name in flat:
                incl, _excl, calls = flat[name]
                lines.append(
                    f"  {name:<12} {incl:8.3f} s incl "
                    f"({100 * incl / total:5.1f}%), {calls} calls"
                )
        write_report("breakdown_serial", "\n".join(lines))

        # Structure invariants on the real run:
        # three BiCGSTAB call sites per step
        assert flat["BiCGSTAB"][2] == 3 * CFG.nsteps
        # the solver dominates the run
        assert prof.inclusive_fraction("BiCGSTAB") > 0.5
        # Matvec is called at least as often as the preconditioner
        # (2 per iteration + residual checks vs exactly 2).  In V2D the
        # Matvec also dominates preconditioning in *time* (141 s vs
        # 14 s) because Fortran SPAI applies are cheap; here both are
        # the same NumPy stencil kernel, so only the count invariant is
        # timing-robust.
        assert flat["MATVEC"][2] >= flat.get("PRECOND", (0, 0, 0))[2]

    def test_map_three_call_sites_roughly_equal(self, write_report):
        """Arm MAP's observation: "the three calls to the BiCGSTAB
        routine each took approximately 31-33% of the total time".
        With the full nonlinear structure (LP limiter + matter
        coupling) every site iterates and the shares come out ~1/3
        each on this substrate too."""
        sim = run_profiled()
        flat = sim.profiler.flat()
        shares = [
            flat.get(f"solve_site_{k}", (0.0, 0.0, 0))[0] for k in (1, 2, 3)
        ]
        total = sum(shares)
        assert total > 0
        fractions = [s / total for s in shares]
        lines = ["MAP view — BiCGSTAB call-site shares of solver time:"]
        for k, f in enumerate(fractions, 1):
            lines.append(f"  solve site {k}: {100 * f:5.1f}%")
        write_report("breakdown_call_sites", "\n".join(lines))
        assert all(0.2 < f < 0.5 for f in fractions), fractions
        assert flat["solve_site_1"][2] == CFG.nsteps

    def test_model_attribution_matches_paper(self):
        p = CostModel().predict(CRAY_OPT, 1, 1)
        assert p.matvec == pytest.approx(PAPER_BREAKDOWN_SERIAL["matvec"], rel=0.1)
        assert p.precond == pytest.approx(PAPER_BREAKDOWN_SERIAL["precond"], rel=0.1)
        lo, hi = PAPER_BREAKDOWN_SERIAL["bicgstab_site_fraction"]
        # three equal solve sites -> each carries ~1/3 of solver time
        assert lo <= (1.0 / 3.0) <= hi + 0.01

    def test_matvec_fraction_majority_in_model(self):
        p = CostModel().predict(CRAY_OPT, 1, 1)
        assert p.matvec / p.total > 0.5
