"""Measured vs predicted Table-I scaling under the mp transport.

Table I's scaling rows were, until now, reproduced only through the
calibrated cost model: the threaded transport serializes pure-Python
work on the GIL, so a "20-processor" run used 20 threads of one core
and measured speedup was unobtainable.  The multiprocessing transport
removes that ceiling -- ranks are OS processes on real cores -- so this
suite records a *measured* strong-scaling curve of the Sec. II-F
kernel driver (scalar backend: pure-Python, CPU-bound) next to the
perfmodel's predicted curve for the same rank counts.

On boxes with fewer cores than ranks the measured curve degenerates
(that is itself recorded -- the ledger keeps the core count), so the
speedup acceptance gates on ``len(os.sched_getaffinity(0))``.
"""

import os

import pytest

from repro.kernels import run_driver_spmd
from repro.perfmodel import CostModel
from repro.perfmodel.paper_data import CRAY_OPT

#: Strong-scaling rank counts (the 1-D strip topologies of Table I,
#: truncated to what a CI box can host).
RANK_COUNTS = (1, 2, 4)

#: Driver workload: ~0.7 s of pure-Python work per rank on one core.
N, REPS = 1000, 300

CORES = len(os.sched_getaffinity(0))


@pytest.fixture(scope="module")
def curves():
    """Measured wall times per transport and the predicted model curve."""
    measured = {}
    for transport in ("threads", "mp"):
        for ranks in RANK_COUNTS:
            result = run_driver_spmd(
                ranks, n=N, reps=REPS, backend="scalar", transport=transport
            )
            measured[(transport, ranks)] = result
    model = CostModel()
    serial = model.predict(CRAY_OPT, 1, 1).total
    predicted = {
        ranks: serial / model.predict(CRAY_OPT, ranks, 1).total
        for ranks in RANK_COUNTS
    }
    return measured, predicted


class TestScalingMP:
    def test_record_measured_vs_predicted(self, curves, bench_record, write_report):
        measured, predicted = curves
        metrics = {"cores": (float(CORES), "count")}
        lines = [
            f"Strong scaling, kernel driver (scalar backend, n={N}, "
            f"reps={REPS}), {CORES} core(s)",
            f"{'ranks':>5} {'threads(s)':>11} {'mp(s)':>8} "
            f"{'mp speedup':>11} {'predicted':>10}",
        ]
        for ranks in RANK_COUNTS:
            t_thr = measured[("threads", ranks)].wall_seconds
            t_mp = measured[("mp", ranks)].wall_seconds
            speedup = t_thr / t_mp
            lines.append(
                f"{ranks:>5} {t_thr:>11.3f} {t_mp:>8.3f} "
                f"{speedup:>11.2f} {predicted[ranks]:>10.2f}"
            )
            metrics[f"threads_{ranks}r_wall"] = (t_thr, "time")
            metrics[f"mp_{ranks}r_wall"] = (t_mp, "time")
            metrics[f"mp_speedup_{ranks}r"] = (speedup, "ratio")
            metrics[f"predicted_speedup_{ranks}r"] = (predicted[ranks], "ratio")
        bench_record.record("scaling_mp", metrics, backend="scalar")
        write_report("scaling_mp", "\n".join(lines))

    def test_transports_measure_identical_work(self, curves):
        measured, _ = curves
        for ranks in RANK_COUNTS:
            thr = measured[("threads", ranks)]
            mp = measured[("mp", ranks)]
            assert thr.total_flops == mp.total_flops
            assert thr.ranks == mp.ranks == ranks
        # Work scales linearly with ranks (each rank runs the full driver).
        base = measured[("mp", 1)].total_flops
        for ranks in RANK_COUNTS:
            assert measured[("mp", ranks)].total_flops == base * ranks

    def test_predicted_curve_has_table1_shape(self, curves):
        _, predicted = curves
        # Speedup grows with ranks but sublinearly (efficiency decays).
        assert predicted[1] == pytest.approx(1.0)
        assert 1.0 < predicted[2] < 2.0
        assert predicted[2] < predicted[4] < 4.0

    @pytest.mark.skipif(
        CORES < 4,
        reason=f"need >= 4 cores for the measured-speedup gate (have {CORES})",
    )
    def test_mp_beats_threads_on_cpu_bound_work(self, curves):
        # The acceptance criterion: with the cores to back it, 4
        # CPU-bound ranks run > 1.5x faster as processes than as
        # GIL-serialized threads.
        measured, _ = curves
        t_thr = measured[("threads", 4)].wall_seconds
        t_mp = measured[("mp", 4)].wall_seconds
        assert t_thr / t_mp > 1.5

    @pytest.mark.skipif(
        CORES < 2,
        reason=f"need >= 2 cores for any measured speedup (have {CORES})",
    )
    def test_mp_no_slower_than_threads_with_spare_cores(self, curves):
        measured, _ = curves
        t_thr = measured[("threads", 2)].wall_seconds
        t_mp = measured[("mp", 2)].wall_seconds
        assert t_mp < t_thr * 1.10  # fork overhead must not swamp the gain
