"""Table I — times by compiler x process topology.

Absolute A64FX seconds come from the calibrated machine/compiler model
(:mod:`repro.perfmodel`); this benchmark regenerates the full 12 x 4
table, checks every published cell against the model (<= 15 % per
cell), and asserts the paper's qualitative findings as invariants:

* T-I.a  GNU slowest at every topology; Cray(opt) fastest for
  Np <= 25; Fujitsu fastest for Np >= 40.
* T-I.b  strong-scaling efficiency decays; GNU/Cray turn upward past
  their knee while Fujitsu still improves at 50.
* T-I.c  flatter topologies (NX2 > 1) are no slower than 1-D strips
  at fixed Np.
"""

import numpy as np
import pytest

from repro.perfmodel import CostModel, PAPER_TABLE1, table1_report
from repro.perfmodel.paper_data import CRAY_OPT, FUJITSU, GNU
from repro.perfmodel.tables import table1_model

MODEL = CostModel()


class TestTable1:
    def test_regenerate_table1(self, benchmark, bench_record, write_report):
        rows = benchmark(table1_model, MODEL)
        assert len(rows) == 12
        errs = [
            abs(pred - paper) / paper
            for r in rows
            for paper, pred in r["cells"].values()
            if paper is not None
        ]
        assert max(errs) < 0.15
        assert float(np.mean(errs)) < 0.04
        bench_record.record(
            "table1_model_fit",
            {
                "rows": (float(len(rows)), "count"),
                "cells": (float(len(errs)), "count"),
                "max_rel_err": (max(errs), "value"),
                "mean_rel_err": (float(np.mean(errs)), "value"),
            },
        )
        write_report("table1_compilers", table1_report(MODEL))

    def test_invariant_a_compiler_ordering(self):
        for row in PAPER_TABLE1:
            t = {
                k: MODEL.predict(k, row.nx1, row.nx2).total
                for k in (GNU, FUJITSU, CRAY_OPT)
            }
            assert t[GNU] == max(t.values())
            if row.np_ <= 25:
                assert t[CRAY_OPT] == min(t.values())
            if row.np_ >= 40:
                assert t[FUJITSU] == min(t.values())

    def test_invariant_b_scaling_knee(self):
        series = {
            k: [MODEL.predict(k, r.nx1, r.nx2).total for r in PAPER_TABLE1]
            for k in (GNU, FUJITSU, CRAY_OPT)
        }
        # Efficiency at Np=50 well below 100 %:
        for k, ts in series.items():
            eff50 = ts[0] / (50 * ts[-1])
            assert eff50 < 0.8, f"{k} unrealistically efficient at Np=50"
        # Knee: GNU/Cray worse at 50x1 than at their minimum; Fujitsu
        # monotone down to 50.
        assert MODEL.predict(GNU, 50, 1).total > MODEL.predict(GNU, 40, 1).total
        assert MODEL.predict(CRAY_OPT, 50, 1).total > MODEL.predict(CRAY_OPT, 25, 1).total
        assert MODEL.predict(FUJITSU, 50, 1).total < MODEL.predict(FUJITSU, 40, 1).total

    def test_invariant_c_topology(self):
        for k in (GNU, FUJITSU, CRAY_OPT):
            for strip, flat in [((20, 1), (5, 4)), ((40, 1), (10, 4)), ((50, 1), (10, 5))]:
                assert (
                    MODEL.predict(k, *flat).total
                    <= MODEL.predict(k, *strip).total + 1e-9
                )

    def test_paper_cells_tracked(self):
        # Row-by-row agreement on the published Cray(no-opt) cells too.
        from repro.perfmodel.paper_data import CRAY_NOOPT

        for row in PAPER_TABLE1:
            paper = row.time(CRAY_NOOPT)
            if paper is None:
                continue
            pred = MODEL.predict(CRAY_NOOPT, row.nx1, row.nx2).total
            assert pred == pytest.approx(paper, rel=0.05)
