"""Fig. 1 — the sparsity pattern of the V2D system matrix.

The paper shows the upper-left 400 x 400 block of the would-be
40,000 x 40,000 matrix: a main diagonal, two adjacent diagonals, and
two outlying diagonals at distance x1 = 200.  This benchmark
regenerates the pattern (never forming the matrix), asserts the exact
band structure, renders a coarse ASCII view, and times both the
analytic pattern construction and a real sparse assembly.
"""

import numpy as np
import pytest

from repro.linalg import assemble_csr, band_offsets, pattern_report, sparsity_block
from repro.linalg.banded import stencil_to_bands
from repro.perfmodel.paper_data import PAPER_NCOMP, PAPER_NX1, PAPER_NX2
from repro.testing import diffusion_coeffs


def render_ascii(pat: np.ndarray, cells: int = 40) -> str:
    """Coarse ASCII rendering of a boolean pattern (Fig. 1 style)."""
    n = pat.shape[0]
    step = max(n // cells, 1)
    lines = []
    for i in range(0, n - step + 1, step):
        row = "".join(
            "#" if pat[i : i + step, j : j + step].any() else "."
            for j in range(0, n - step + 1, step)
        )
        lines.append(row)
    return "\n".join(lines)


class TestFig1:
    def test_paper_band_structure(self):
        offs = band_offsets(PAPER_NCOMP, PAPER_NX1, PAPER_NX2)
        assert offs == [-200, -1, 0, 1, 200], (
            "five bands: diagonal, two adjacent, two outlying at distance x1"
        )

    def test_block_matches_paper_view(self, benchmark, bench_record, write_report):
        pat = benchmark(sparsity_block, PAPER_NX1, PAPER_NX2, PAPER_NCOMP, 400)
        # Five bands visible in the 400x400 corner.
        assert pat[0, 0] and pat[50, 51] and pat[50, 49]
        assert pat[0, 200] and pat[250, 50]
        # Nothing between the adjacent and outlying diagonals.
        assert not pat[0, 100]
        nnz_per_row = pat.sum(axis=1)
        assert nnz_per_row.max() <= 5
        bench_record.record(
            "paper_block",
            {
                "nnz": (float(pat.sum()), "count"),
                "max_nnz_per_row": (float(nnz_per_row.max()), "count"),
                "bands": (
                    float(len(band_offsets(PAPER_NCOMP, PAPER_NX1, PAPER_NX2))),
                    "count",
                ),
            },
            config={"nx1": PAPER_NX1, "nx2": PAPER_NX2, "ncomp": PAPER_NCOMP,
                    "block": 400},
        )
        report = "\n".join(
            [
                "FIG. 1 — sparsity pattern, upper-left 400x400 of 40,000x40,000",
                pattern_report(PAPER_NX1, PAPER_NX2, PAPER_NCOMP),
                "",
                render_ascii(pat),
            ]
        )
        write_report("fig1_sparsity", report)

    def test_pattern_agrees_with_real_assembly(self):
        # The analytic pattern must equal the nonzero pattern of an
        # actually assembled diffusion system (small instance).
        coeffs = diffusion_coeffs(ns=2, n1=10, n2=6, coupled=False)
        A = assemble_csr(coeffs)
        pat = sparsity_block(10, 6, 2, block=A.shape[0])
        np.testing.assert_array_equal(pat, A.toarray() != 0.0)

    def test_full_size_band_count(self):
        # Full paper-size banded form: exactly 5 bands, 40,000 rows.
        coeffs = diffusion_coeffs(ns=2, n1=PAPER_NX1, n2=PAPER_NX2, coupled=False)
        offsets, bands = stencil_to_bands(coeffs)
        assert len(offsets) == 5
        assert bands[0].shape == (40_000,)

    def test_bench_full_assembly(self, benchmark):
        coeffs = diffusion_coeffs(ns=2, n1=PAPER_NX1, n2=PAPER_NX2, coupled=False)
        result = benchmark(assemble_csr, coeffs)
        assert result.shape == (40_000, 40_000)
        assert result.nnz == pytest.approx(5 * 40_000, rel=0.02)
