"""Extension — weak-scaling projection (constant work per rank).

The paper ran strong scaling only (fixed 200 x 100 problem, more
ranks).  The complementary weak-scaling view — every rank keeps the
serial run's 20,000 zones — isolates the communication terms: ideal
weak scaling is a flat line, and the distance from flat is pure
reduction/halo cost.  The calibrated model says that cost is modest in
absolute terms when each rank carries real work (83-97% weak
efficiency at 64 ranks), with the same ordering as Table I's upturn:
Fujitsu's collectives cost least, Cray's quadratic term most.  Strong
scaling only looked dramatic because the per-rank work had shrunk to
seconds — a classic strong-vs-weak lesson the model makes explicit.
"""

import pytest

from repro.perfmodel import CostModel
from repro.perfmodel.paper_data import CRAY_OPT, FUJITSU, GNU

RANKS = (1, 4, 16, 64)
MODEL = CostModel()


class TestWeakScaling:
    def test_regenerate_weak_scaling(self, benchmark, bench_record, write_report):
        def sweep():
            return {
                key: MODEL.weak_scaling_study(key, ranks=RANKS)
                for key in (GNU, FUJITSU, CRAY_OPT)
            }

        results = benchmark(sweep)
        lines = [
            "WEAK SCALING (model, 20,000 zones/rank, 100 steps)",
            f"{'Np':>4} " + "".join(f"{k:>12}" for k in results),
        ]
        for i, np_ in enumerate(RANKS):
            row = f"{np_:>4} "
            for key in results:
                row += f"{results[key][i].total:>12.2f}"
            lines.append(row)
        for key in results:
            eff = results[key][0].total / results[key][-1].total
            lines.append(f"  {key}: weak efficiency at {RANKS[-1]} ranks = {eff:.2f}")
        write_report("weak_scaling", "\n".join(lines))
        bench_record.record(
            "weak_efficiency_model",
            {
                f"eff_{key}": (
                    results[key][0].total / results[key][-1].total, "value",
                )
                for key in results
            },
            config={"ranks": list(RANKS)},
        )

        # invariants: compute flat, communication-only growth,
        # Fujitsu the best weak-scaler.
        for key in results:
            comp = [p.compute for p in results[key]]
            assert max(comp) / min(comp) < 1.05
        eff = {
            key: results[key][0].total / results[key][-1].total for key in results
        }
        assert eff[FUJITSU] == max(eff.values())
        assert eff[CRAY_OPT] == min(eff.values())  # quadratic reductions
        assert all(0.5 < e <= 1.0 for e in eff.values())
        assert eff[FUJITSU] > 0.9

    def test_weak_vs_strong_consistency(self):
        # At Np=1 weak and strong scaling coincide by construction.
        for key in (GNU, FUJITSU, CRAY_OPT):
            weak1 = MODEL.weak_scaling_study(key, ranks=(1,))[0].total
            strong1 = MODEL.predict(key, 1, 1).total
            assert weak1 == pytest.approx(strong1)
