"""Sec. II-E, 20-processor breakdown — compute shrinks, MPI appears.

Paper: "When using 20 processors, in a 5x4 configuration,
approximately 7.5 seconds out of 15 were spent in the matrix-vector
multiplications at maximum per processor, with preconditioning taking
about 0.8 seconds at maximum.  As to be expected with multiple
processors, a significant amount of time was taken by MPI calls."

Reproduced with the model at the paper's exact 5x4 topology, and with
a real decomposed run (scaled grid, 5x2 = 10 rank threads) whose
per-rank profiler and MPI counters must show the same structure:
per-rank Matvec time shrinking with the tile, nonzero halo/reduction
traffic on every rank.
"""

import pytest

from repro.monitor import Counters
from repro.perfmodel import CostModel, breakdown_report
from repro.perfmodel.paper_data import CRAY_OPT, PAPER_BREAKDOWN_20PROC
from repro.problems import GaussianPulseProblem
from repro.v2d import V2DConfig, run_parallel

CFG = V2DConfig(
    nx1=50, nx2=20, extent1=(0.0, 2.0), extent2=(0.0, 1.0),
    nsteps=2, dt=1e-3, precond="jacobi", solver_tol=1e-9,
    nprx1=5, nprx2=2,
)


def run_decomposed():
    return run_parallel(CFG, GaussianPulseProblem())


class TestParallelBreakdown:
    def test_regenerate_breakdown(self, benchmark, bench_record, write_report):
        reports = benchmark.pedantic(run_decomposed, rounds=1, iterations=1)
        assert len(reports) == 10

        merged = Counters()
        for r in reports:
            merged.merge(r.counters)
        bench_record.record(
            "decomposed_5x2",
            {
                "max_rank_wall": (
                    max(r.wall_seconds for r in reports), "time",
                ),
                "messages": (float(merged.messages_sent), "count"),
                "bytes_sent": (float(merged.bytes_sent), "count"),
                "reductions": (float(merged.reductions), "count"),
                "halo_exchanges": (float(merged.halo_exchanges), "count"),
            },
            counters=merged,
            backend="vector",
        )
        lines = [
            breakdown_report(CostModel()),
            "",
            f"Real decomposed run ({CFG.nprx1}x{CFG.nprx2} = {CFG.nranks} ranks):",
            f"  messages: {merged.messages_sent}, bytes: {merged.bytes_sent:,}, "
            f"reductions: {merged.reductions}, halo exchanges: {merged.halo_exchanges}",
        ]
        for r in reports[:3]:
            mv = r.matvec_fraction()
            lines.append(
                f"  rank {r.rank}: wall {r.wall_seconds:6.3f} s, "
                f"Matvec {100 * (mv or 0):4.1f}% of rank time"
            )
        write_report("breakdown_parallel", "\n".join(lines))

        # every rank communicated and converged
        assert all(r.all_converged for r in reports)
        assert merged.halo_exchanges > 0
        assert merged.reductions > 0
        assert all(r.counters.messages_sent > 0 for r in reports)

    def test_model_20proc_numbers(self):
        p = CostModel().predict(CRAY_OPT, 5, 4)
        assert p.total == pytest.approx(PAPER_BREAKDOWN_20PROC["total"], rel=0.1)
        assert p.matvec == pytest.approx(PAPER_BREAKDOWN_20PROC["matvec"], rel=0.15)
        assert p.precond == pytest.approx(PAPER_BREAKDOWN_20PROC["precond"], rel=0.2)

    def test_mpi_share_grows_with_ranks(self):
        model = CostModel()
        shares = []
        for topo in [(5, 2), (5, 4), (10, 4)]:
            p = model.predict(CRAY_OPT, *topo)
            shares.append(p.mpi / p.total)
        assert shares == sorted(shares), "MPI share must grow with rank count"

    def test_per_rank_matvec_time_shrinks(self):
        model = CostModel()
        serial = model.predict(CRAY_OPT, 1, 1)
        par = model.predict(CRAY_OPT, 5, 4)
        assert par.matvec < serial.matvec / 15  # ~1/20 with balanced tiles
