"""Fused-kernel hot path — whole-application timing, fused vs unfused.

The fused execution layer collapses the BiCGSTAB inner loop's
back-to-back kernel launches (Matvec then ganged dots, DAXPY then
DAXPY) into single launches and draws all scratch vectors from a
reusable workspace.  This benchmark runs the scaled Gaussian-pulse
problem both ways on the vector (SVE-proxy) backend and records:

* whole-app time, measured as back-to-back (fused, unfused) pairs
  with the garbage collector off.  The accepted statistic is the
  median of the per-pair CPU-time ratios: pairing cancels machine
  drift, the median shrugs off outliers, and process time excludes
  scheduler preemption, which dominates wall-clock noise on shared
  CI machines.  Wall seconds are recorded alongside for reference;
* kernel launches, fused-op count and reduction rounds;
* bitwise agreement of the final radiation field (the fused vector
  path is exactly the unfused computation, re-batched).

Besides the rendered text report it records ledger entries through the
:mod:`repro.perf` harness; the suite snapshot ``BENCH_fused.json`` is
the machine-readable artifact CI archives for trend tracking, and
``repro perf check`` gates the recorded launch/reduction counts and
the paired speedup against ``benchmarks/baselines/fused.json``.
"""

import gc
import time

import numpy as np

from repro.problems import GaussianPulseProblem
from repro.v2d import Simulation, V2DConfig

PAIRS = 9
#: A deliberately solver-dominant configuration: the large timestep
#: needs ~13 BiCGSTAB iterations per solve, so >80% of the wall time
#: sits in the loop the fused layer restructures (at the default
#: timestep the system build dilutes the fused win below timing noise
#: -- the same Amdahl dilution the paper reports for whole-app SVE
#: speedup).
CFG = dict(
    scale=1,
    nx1=120,
    nx2=90,
    nsteps=3,
    dt=2e-2,
    precond="jacobi",
    solver_tol=1e-8,
    profile=False,
)


def make_sim(fused: bool, backend: str = "vector") -> Simulation:
    cfg = V2DConfig.scaled_test_problem(fused=fused, backend=backend, **CFG)
    return Simulation(cfg, GaussianPulseProblem())


def run_once(fused: bool):
    sim = make_sim(fused)
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    c0 = time.process_time()
    sim.run()
    cpu = time.process_time() - c0
    wall = time.perf_counter() - t0
    gc.enable()
    solves = [s for rep in sim.step_reports for s in rep.solves]
    return {
        "wall": wall,
        "cpu": cpu,
        "E": sim.integrator.E.interior.copy(),
        "kernel_calls": sim.counters.kernel_calls,
        "fused_ops": sim.counters.fused_ops,
        "iterations": sum(s.iterations for s in solves),
        "reduction_rounds": sum(s.reductions for s in solves),
        "converged": all(s.converged for s in solves),
    }


class TestFusedBenchmark:
    # NOTE: the comparison must run before the single-shot app
    # benchmarks.  The ``benchmark`` fixture keeps its target
    # simulations alive for the session report, and that retained
    # memory measurably skews the paired timing if it is already
    # resident (pytest runs tests in definition order).
    def test_fused_vs_unfused(self, bench_record, write_report):
        run_once(True), run_once(False)          # warm-up
        fused, unfused = run_once(True), run_once(False)
        walls = {"fused": [fused["wall"]], "unfused": [unfused["wall"]]}
        cpus = {"fused": [fused["cpu"]], "unfused": [unfused["cpu"]]}
        for k in range(PAIRS - 1):               # back-to-back timed pairs
            # Alternate within-pair order so linear machine drift biases
            # neither side.
            order = (True, False) if k % 2 else (False, True)
            for f in order:
                r = run_once(f)
                walls["fused" if f else "unfused"].append(r["wall"])
                cpus["fused" if f else "unfused"].append(r["cpu"])
        t_fused, t_unfused = min(walls["fused"]), min(walls["unfused"])
        pair_ratios = sorted(
            f / u for f, u in zip(cpus["fused"], cpus["unfused"])
        )
        ratio = pair_ratios[len(pair_ratios) // 2]

        # Correctness before speed: same bits, strictly fewer launches,
        # one reduction round saved in setup per solve.
        assert fused["converged"] and unfused["converged"]
        np.testing.assert_array_equal(fused["E"], unfused["E"])
        assert fused["iterations"] == unfused["iterations"]
        assert fused["fused_ops"] > 0 and unfused["fused_ops"] == 0
        assert fused["kernel_calls"] < unfused["kernel_calls"]
        assert fused["reduction_rounds"] < unfused["reduction_rounds"]

        # Ledger entries: one per variant (times + structural counts)
        # plus the paired comparison.  The suite snapshot
        # BENCH_fused.json is the CI trend artifact.
        from repro.perf import Metric, mad, median

        config = {**CFG, "backend": "vector", "pairs": PAIRS}
        for variant, last, w, c in (
            ("fused", fused, walls["fused"], cpus["fused"]),
            ("unfused", unfused, walls["unfused"], cpus["unfused"]),
        ):
            bench_record.record(
                f"{variant}_app",
                {
                    "wall_seconds": Metric(
                        value=median(w), kind="time", unit="s",
                        repeats=len(w), mad=mad(w), samples=sorted(w),
                    ),
                    "cpu_seconds": Metric(
                        value=median(c), kind="time", unit="s",
                        repeats=len(c), mad=mad(c), samples=sorted(c),
                    ),
                    "kernel_launches": (float(last["kernel_calls"]), "count"),
                    "fused_ops": (float(last["fused_ops"]), "count"),
                    "reduction_rounds": (
                        float(last["reduction_rounds"]), "count",
                    ),
                    "solver_iterations": (float(last["iterations"]), "count"),
                },
                config=config,
                backend="vector",
            )
        bench_record.record(
            "fused_vs_unfused",
            {
                "cpu_ratio": Metric(
                    value=ratio, kind="ratio", repeats=len(pair_ratios),
                    mad=mad(pair_ratios), samples=pair_ratios,
                ),
                "speedup": (1.0 / ratio, "value"),
                "bitwise_equal": (1.0, "count"),
                "launches_saved": (
                    float(unfused["kernel_calls"] - fused["kernel_calls"]),
                    "count",
                ),
                "reductions_saved": (
                    float(unfused["reduction_rounds"]
                          - fused["reduction_rounds"]),
                    "count",
                ),
            },
            config=config,
            backend="vector",
        )
        json_path = bench_record.ledger.suite_path(bench_record.suite)

        write_report(
            "fused",
            "\n".join(
                [
                    "FUSED KERNELS — whole-app wall time, vector backend",
                    f"  fused  : {t_fused:.4f} s  "
                    f"({fused['kernel_calls']} launches, "
                    f"{fused['reduction_rounds']} reduction rounds)",
                    f"  unfused: {t_unfused:.4f} s  "
                    f"({unfused['kernel_calls']} launches, "
                    f"{unfused['reduction_rounds']} reduction rounds)",
                    f"  ratio  : {ratio:.3f} "
                    f"(median fused/unfused CPU-time over {PAIRS} "
                    f"pairs), results bitwise identical",
                    f"[json written to {json_path}]",
                ]
            ),
        )

        # The fused path must not be slower: it strictly reduces
        # launches and allocations, and on an idle machine the median
        # paired ratio sits at or below one (solver-only, the fused
        # loop runs ~20% faster).  The structural wins above are
        # asserted exactly; the timing gate carries enough slack to
        # absorb the noise floor of loaded single-core CI runners
        # while still tripping on a real fused-path regression.
        assert ratio < 1.10

    def test_bench_fused_app(self, benchmark):
        sim = make_sim(True)
        benchmark.pedantic(sim.run, rounds=1, iterations=1)

    def test_bench_unfused_app(self, benchmark):
        sim = make_sim(False)
        benchmark.pedantic(sim.run, rounds=1, iterations=1)

    def test_bench_fused_app_jit(self, benchmark, bench_record):
        # The jit row: the same solver-dominant fused run on the
        # compiled tier, recorded beside the vector rows so the ledger
        # carries the three-way comparison wherever numba is installed.
        # A full warm-up run (not just one call) precedes the timed
        # round so every kernel the app touches is compiled up front.
        import pytest

        pytest.importorskip("numba")
        make_sim(True, backend="jit").run()
        sim = make_sim(True, backend="jit")
        benchmark.pedantic(sim.run, rounds=1, iterations=1)
        solves = [s for rep in sim.step_reports for s in rep.solves]
        assert all(s.converged for s in solves)
        assert sim.counters.fused_ops > 0  # the capability gate held
        bench_record.record(
            "fused_app_jit",
            {
                "kernel_launches": (float(sim.counters.kernel_calls), "count"),
                "fused_ops": (float(sim.counters.fused_ops), "count"),
                "solver_iterations": (
                    float(sum(s.iterations for s in solves)), "count",
                ),
            },
            config={**CFG, "backend": "jit"},
            backend="jit",
        )
