"""Ablation — SPAI vs Jacobi vs no preconditioner.

V2D preconditions with a sparse approximate inverse (ref. [7] compared
solver/preconditioner combinations for exactly these systems).  This
ablation measures iteration counts and wall time on a representative
radiation system for the three preconditioning choices, asserting the
quality ordering SPAI <= Jacobi <= none (iterations).
"""

import numpy as np
import pytest

from repro.grid import Mesh2D
from repro.linalg import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    SPAIPreconditioner,
    StencilOperator,
    bicgstab,
)
from repro.transport import ConstantOpacity, RadiationBasis, build_radiation_system

# A stiff radiation step (large dt * D / dx^2) where preconditioning
# actually matters.
MESH = Mesh2D.uniform(32, 24, extent1=(0, 1), extent2=(0, 1))
BASIS = RadiationBasis()
_rng = np.random.default_rng(2)
_EPAD = np.abs(_rng.standard_normal((2, 34, 26))) + 0.1
SYSTEM = build_radiation_system(
    MESH, _EPAD, np.ones(MESH.shape), np.ones(MESH.shape),
    dt=0.5, basis=BASIS, opacity=ConstantOpacity(kappa_a=0.01, kappa_s=0.05),
)


def make_preconditioner(kind: str):
    if kind == "spai":
        return SPAIPreconditioner.from_stencil(SYSTEM.coeffs)
    if kind == "jacobi":
        return JacobiPreconditioner.from_stencil(SYSTEM.coeffs)
    return IdentityPreconditioner()


def solve(kind: str):
    op = StencilOperator(SYSTEM.coeffs)
    return bicgstab(op, SYSTEM.rhs, tol=1e-10, M=make_preconditioner(kind))


class TestPrecondAblation:
    @pytest.mark.parametrize("kind", ["none", "jacobi", "spai"])
    def test_bench_solve(self, benchmark, kind):
        res = benchmark(solve, kind)
        assert res.converged

    def test_bench_spai_setup(self, benchmark):
        M = benchmark(SPAIPreconditioner.from_stencil, SYSTEM.coeffs)
        assert M.mcoeffs.shape == MESH.shape

    def test_iteration_ordering(self, bench_record, write_report):
        iters = {k: solve(k).iterations for k in ("none", "jacobi", "spai")}
        bench_record.record(
            "iterations",
            {f"iters_{k}": (float(v), "count") for k, v in iters.items()},
            config={"nunknowns": SYSTEM.nunknowns, "tol": 1e-10},
        )
        report = "\n".join(
            [
                "ABLATION — preconditioner quality (BiCGSTAB iterations)",
                f"  system: {SYSTEM.nunknowns} unknowns, stiff dt",
                *(f"  {k:<8}: {v} iterations" for k, v in iters.items()),
            ]
        )
        write_report("ablation_precond", report)
        assert iters["spai"] <= iters["jacobi"] <= iters["none"]
        assert iters["spai"] < iters["none"]

    def test_all_reach_same_answer(self):
        xs = {k: solve(k).x for k in ("none", "jacobi", "spai")}
        np.testing.assert_allclose(xs["spai"], xs["none"], rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(xs["jacobi"], xs["none"], rtol=1e-6, atol=1e-9)
