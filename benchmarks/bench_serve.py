"""Serving latency/throughput — the `repro.serve` front door under load.

Drives a real :class:`~repro.serve.server.JobServer` (asyncio TCP,
newline-delimited JSON) on an ephemeral port through the blocking
:class:`~repro.serve.client.ServeClient`, with a mixed workload shaped
like campaign traffic:

* **cold** submissions — distinct physics, each one solver execution;
* **duplicate** submissions — identical physics racing in flight, which
  must fan in onto one execution (in-flight dedup);
* **hot** resubmissions — the same physics after completion, which must
  short-circuit at submit time from the content-addressed cache.

Recorded through the :mod:`repro.perf` harness into ``BENCH_serve.json``:
client-observed submit-to-result p50/p99 latency for cold and hot
traffic, sustained throughput, the cache hit-rate, the dedup fraction,
and the executed-solve count.  The shape invariants asserted are the
service's contract, not absolute seconds: N duplicates execute exactly
once, hot traffic never reaches a worker, and a budget-stopped job
resumes from its checkpoint instead of recomputing finished steps.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time

from repro.monitor.telemetry import LATENCY_BUCKETS, Histogram
from repro.perf.schema import Metric
from repro.serve import JobServer, ServeClient, ServeConfig

#: Distinct cold jobs; each is also submitted DUPLICATES extra times.
COLD_JOBS = 6
DUPLICATES = 3
BASE = {"nx1": 16, "nx2": 8, "nsteps": 2, "profile": False}


def _config(i: int) -> dict:
    # Vary a physics field so each cold job owns a distinct content key.
    return {**BASE, "dt": 1e-4 * (i + 1)}


def _histogram(samples: list[float]) -> Histogram:
    """Fold raw latencies into the same fixed-bucket histogram the
    telemetry pipeline uses, so the bench and the live ``metrics`` op
    report quantiles from one estimator."""
    hist = Histogram(LATENCY_BUCKETS)
    for sample in samples:
        hist.observe(sample)
    return hist


class _Server:
    """A serve instance on a background thread, torn down via the wire."""

    def __init__(self, tmpdir: str):
        self.cfg = ServeConfig(
            port=0, workers=2,
            cache_dir=f"{tmpdir}/cache", workdir=f"{tmpdir}/work",
        )
        self.server = JobServer(self.cfg)
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            await self.server.start()
            self._ready.set()
            await self.server.serve_until_shutdown()

        asyncio.run(main())

    def __enter__(self) -> "_Server":
        self.thread.start()
        assert self._ready.wait(15), "serve instance failed to start"
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def __exit__(self, *exc):
        if self.thread.is_alive():
            try:
                with ServeClient(port=self.port, timeout=10) as client:
                    client.shutdown()
            except OSError:
                pass
            self.thread.join(30)
        assert not self.thread.is_alive(), "serve instance failed to stop"


def _timed_round_trip(client: ServeClient, **submit_kwargs):
    """One submit + result, returning (result, latency, submit-ack)."""
    t0 = time.perf_counter()
    sub = client.submit(**submit_kwargs)
    out = client.result(sub["id"])
    return out, time.perf_counter() - t0, sub


class TestServeBenchmark:
    def test_latency_throughput_dedup(self, bench_record, write_report):
        with tempfile.TemporaryDirectory() as tmpdir, \
                _Server(tmpdir) as srv, \
                ServeClient(port=srv.port) as client:
            assert client.ping()["pong"]

            # --- cold + duplicate phase --------------------------------
            t_start = time.perf_counter()
            cold_lat, acks = [], []
            for i in range(COLD_JOBS):
                cfg = _config(i)
                # Fire the duplicates while the primary is in flight:
                # submit acks only, then collect one result.
                first = client.submit(config=cfg)
                for _ in range(DUPLICATES):
                    acks.append(client.submit(config=cfg))
                t0 = time.perf_counter()
                out = client.result(first["id"])
                cold_lat.append(time.perf_counter() - t0)
                assert out["state"] == "done"
                assert out["result"]["steps"] == BASE["nsteps"]
            dedup_acks = [a for a in acks if a["deduped"] or a["cached"]]
            wall_cold = time.perf_counter() - t_start

            # The service contract: duplicates never bought a solve.
            stats = client.stats()
            assert stats["executed"] == COLD_JOBS, (
                f"{COLD_JOBS * (1 + DUPLICATES)} submissions must execute "
                f"exactly {COLD_JOBS} solves, saw {stats['executed']}"
            )
            assert len(dedup_acks) == COLD_JOBS * DUPLICATES

            # --- hot phase: every key now lives in .repro-cache --------
            hot_lat = []
            for i in range(COLD_JOBS):
                out, lat, sub = _timed_round_trip(client, config=_config(i))
                hot_lat.append(lat)
                assert sub["cached"], "hot resubmission missed the cache"
                assert out["result"]["steps"] == BASE["nsteps"]
            stats = client.stats()
            assert stats["executed"] == COLD_JOBS  # hot traffic: no solves

            cache = stats["cache"]
            hit_rate = cache["hits"] / max(1, cache["hits"] + cache["misses"])
            submissions = COLD_JOBS * (1 + DUPLICATES) + COLD_JOBS
            dedup_fraction = len(dedup_acks) / submissions
            throughput = COLD_JOBS * (1 + DUPLICATES) / wall_cold
            cold_hist, hot_hist = _histogram(cold_lat), _histogram(hot_lat)
            cold_p50, cold_p99 = cold_hist.quantile(.5), cold_hist.quantile(.99)
            hot_p50, hot_p99 = hot_hist.quantile(.5), hot_hist.quantile(.99)
            speedup = cold_p50 / max(hot_p50, 1e-9)

            # Hot traffic answers from the content cache: orders of
            # magnitude faster than a solve, but assert only the sign.
            assert hot_p50 < cold_p50
            assert hit_rate >= 0.5  # 6 misses (cold), >= 6 hits (hot)

            bench_record.record(
                "mixed_workload",
                {
                    "cold_p50_seconds": Metric(
                        value=cold_p50, kind="time",
                        unit="s", repeats=len(cold_lat),
                        samples=sorted(cold_lat),
                    ),
                    "cold_p99_seconds": Metric(
                        value=cold_p99, kind="time",
                        unit="s", repeats=len(cold_lat),
                    ),
                    "hot_p50_seconds": Metric(
                        value=hot_p50, kind="time",
                        unit="s", repeats=len(hot_lat),
                        samples=sorted(hot_lat),
                    ),
                    "hot_p99_seconds": Metric(
                        value=hot_p99, kind="time",
                        unit="s", repeats=len(hot_lat),
                    ),
                    "throughput_jobs_per_s": (throughput, "value"),
                    "cache_hit_rate": Metric(value=hit_rate, kind="ratio"),
                    "dedup_fraction": Metric(
                        value=dedup_fraction, kind="ratio",
                    ),
                    "hot_speedup": (speedup, "value"),
                    "submissions": (float(submissions), "count"),
                    "executed_solves": (float(stats["executed"]), "count"),
                },
                config={
                    "cold_jobs": COLD_JOBS, "duplicates": DUPLICATES,
                    "workers": 2, **BASE,
                },
            )

            lines = [
                "SERVE MIXED WORKLOAD "
                f"({COLD_JOBS} cold x {1 + DUPLICATES} submits + "
                f"{COLD_JOBS} hot, 2 workers)",
                f"  executed solves      {stats['executed']:>8d}"
                f"   (of {submissions} submissions)",
                f"  dedup fraction       {dedup_fraction:>8.1%}",
                f"  cache hit-rate       {hit_rate:>8.1%}",
                f"  cold p50 / p99       {cold_p50:>8.4f}"
                f" / {cold_p99:.4f} s",
                f"  hot  p50 / p99       {hot_p50:>8.4f}"
                f" / {hot_p99:.4f} s",
                f"  hot speedup          {speedup:>8.1f}x",
                f"  throughput           {throughput:>8.1f} jobs/s",
            ]
            write_report("serve_mixed_workload", "\n".join(lines))

    def test_budget_stop_resume_accounting(self, bench_record):
        """A budget-stopped job resumes from its checkpoint: the resumed
        run computes only the remaining steps, and neither partial run
        pollutes the content cache."""
        nsteps, stop_at = 8, 3
        cfg = {**BASE, "nsteps": nsteps, "dt": 9.5e-5}
        with tempfile.TemporaryDirectory() as tmpdir, \
                _Server(tmpdir) as srv, \
                ServeClient(port=srv.port) as client:
            out, lat_stop, sub = _timed_round_trip(
                client, config=cfg, budget={"max_steps": stop_at},
            )
            assert out["stopped_by"] == f"MaxIter({stop_at})"
            assert out["partial"] and out["result"]["steps"] == stop_at
            assert out["checkpoint"]["step"] == stop_at

            t0 = time.perf_counter()
            resumed = client.submit(config=cfg, resume=sub["id"])
            rout = client.result(resumed["id"])
            lat_resume = time.perf_counter() - t0
            assert rout["state"] == "done"
            assert rout["resumed_from_step"] == stop_at
            assert rout["result"]["steps"] == nsteps - stop_at

            # Partial provenance stays out of the cache: a fresh submit
            # of the same physics is a cold execution, not a hit.
            fresh = client.submit(config=cfg)
            assert not fresh["cached"] and not fresh["deduped"]
            client.result(fresh["id"])

            bench_record.record(
                "budget_stop_resume",
                {
                    "stop_latency_seconds": Metric(
                        value=lat_stop, kind="time", unit="s",
                    ),
                    "resume_latency_seconds": Metric(
                        value=lat_resume, kind="time", unit="s",
                    ),
                    "steps_before_stop": (float(stop_at), "count"),
                    "steps_after_resume": (
                        float(nsteps - stop_at), "count",
                    ),
                    "recomputed_steps": (0.0, "count"),
                },
                config={"nsteps": nsteps, "max_steps": stop_at, **BASE},
            )
