"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one artifact of the paper (a table,
a figure, or a Sec. II-E breakdown) and asserts its *shape invariants*
-- who wins, by roughly what factor, where crossovers fall -- rather
than absolute seconds (our substrate is a Python simulator, not the
authors' A64FX testbed; the calibrated machine model carries the
absolute-seconds side).

Reports are printed with ``-s`` (or captured in the pytest summary);
each module also writes its rendered report under
``benchmarks/_reports/`` so a run leaves the regenerated tables on
disk.  Alongside the text artifacts, every module records its headline
numbers through the :mod:`repro.perf` harness into the same directory:
``BENCH_history.jsonl`` (append-only ledger) plus one
``BENCH_<suite>.json`` snapshot per module -- the inputs of
``repro perf check``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.io.atomic import atomic_write_bytes
from repro.perf.harness import Harness
from repro.perf.ledger import Ledger

REPORT_DIR = Path(__file__).parent / "_reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture(scope="session")
def write_report(report_dir):
    """``write_report(name, text)``: persist + echo a rendered artifact."""

    def _write(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        atomic_write_bytes(path, (text + "\n").encode())
        print(f"\n{text}\n[report written to {path}]")
        return path

    return _write


@pytest.fixture(scope="session")
def perf_ledger(report_dir) -> Ledger:
    """The session's performance ledger, rooted at the report dir."""
    return Ledger(report_dir)


@pytest.fixture()
def bench_record(request, perf_ledger) -> Harness:
    """A :class:`repro.perf.Harness` bound to the session ledger.

    The suite name is the benchmark module's name minus the ``bench_``
    prefix, so ``bench_fused.py`` entries land in ``BENCH_fused.json``
    and gate against ``benchmarks/baselines/fused.json``.
    """
    module = request.module.__name__.rpartition(".")[2]
    suite = module.removeprefix("bench_")
    return Harness(suite, ledger=perf_ledger)
