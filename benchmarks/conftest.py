"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one artifact of the paper (a table,
a figure, or a Sec. II-E breakdown) and asserts its *shape invariants*
-- who wins, by roughly what factor, where crossovers fall -- rather
than absolute seconds (our substrate is a Python simulator, not the
authors' A64FX testbed; the calibrated machine model carries the
absolute-seconds side).

Reports are printed with ``-s`` (or captured in the pytest summary);
each module also writes its rendered report under
``benchmarks/_reports/`` so a run leaves the regenerated tables on
disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "_reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture(scope="session")
def write_report(report_dir):
    """``write_report(name, text)``: persist + echo a rendered artifact."""

    def _write(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report written to {path}]")
        return path

    return _write
