"""The headline finding — kernel speedup >> whole-application speedup.

Paper conclusion: "a complex multi-physics code, even though it is
dominated by memory bandwidth-limited sparse linear algebra
computations, will not necessarily demonstrate the speedup expected
with the use of SVE optimization.  However, testing just the ...
routines did reveal that they were able to undergo significant
speedup."

Invariant D.a: whole-app speedup < min kernel speedup, in *both*:

* the calibrated model (paper numbers: kernels 3.2-6.2x, app 1.45x);
* real execution on this substrate (vector vs scalar backends), where
  the same Amdahl structure holds -- the solver kernels vectorize
  fully while ghost fills, system builds, solver control flow and the
  SPAI batched setup vectorize less.
"""

import pytest

from repro.kernels import KernelDriver
from repro.kernels.driver import ROUTINES
from repro.perfmodel import CostModel, KernelTimeModel, dilution_report
from repro.problems import GaussianPulseProblem
from repro.v2d import Simulation, V2DConfig

APP_CFG = dict(
    nx1=20, nx2=10, extent1=(0.0, 2.0), extent2=(0.0, 1.0),
    nsteps=2, dt=1e-3, precond="jacobi", solver_tol=1e-8,
)


def app_seconds(backend: str) -> float:
    cfg = V2DConfig(backend=backend, **APP_CFG)
    sim = Simulation(cfg, GaussianPulseProblem())
    return sim.run().wall_seconds


def kernel_ratios() -> dict[str, float]:
    driver = KernelDriver(n=1000, reps=10, band_offset=200)
    _no_sve, _sve, ratios = driver.compare()
    return ratios


class TestDilution:
    def test_regenerate_dilution(self, benchmark, bench_record, write_report):
        ratios = benchmark.pedantic(kernel_ratios, rounds=1, iterations=1)
        t_vec = min(app_seconds("vector") for _ in range(2))
        t_scl = min(app_seconds("scalar") for _ in range(2))
        app_ratio = t_vec / t_scl
        kernel_min_ratio = min(ratios.values())
        bench_record.record(
            "dilution",
            {
                "app_wall_vector": (t_vec, "time"),
                "app_wall_scalar": (t_scl, "time"),
                "app_ratio": (app_ratio, "ratio"),
                "kernel_min_ratio": (kernel_min_ratio, "ratio"),
            },
            config=APP_CFG,
            backend="vector",
        )

        lines = [
            dilution_report(),
            "",
            "Real execution (this substrate, vector vs scalar backend):",
            "  kernel ratios: "
            + ", ".join(f"{k}={ratios[k]:.3f}" for k in ROUTINES),
            f"  app ratio    : {app_ratio:.3f} "
            f"(app speedup {1 / app_ratio:.1f}x vs best kernel "
            f"{1 / kernel_min_ratio:.1f}x)",
        ]
        write_report("dilution", "\n".join(lines))

        # D.a on the real substrate: the app cannot beat its best kernel.
        assert app_ratio > kernel_min_ratio
        assert app_ratio < 1.0  # but vectorization still wins overall

    def test_model_dilution_invariant(self):
        model = CostModel()
        km = KernelTimeModel()
        app_speedup = 1.0 / model.app_sve_ratio()
        kernel_speedups = [1.0 / r for _k, (_a, _b, r) in km.table2().items()]
        assert app_speedup < min(kernel_speedups)
        assert app_speedup == pytest.approx(262.57 / 181.26, rel=0.1)

    def test_paper_app_ratio(self):
        # Cray serial opt/no-opt from Table I row 1.
        assert 181.26 / 262.57 == pytest.approx(0.69, abs=0.01)
