"""Integration tests for the V2D driver, problems, and checkpointing."""

import numpy as np
import pytest

from repro.grid import Mesh2D
from repro.problems import (
    GaussianPulseProblem,
    RadiativeShockProblem,
    SedovBlastProblem,
)
from repro.transport import RadiationBasis
from repro.v2d import RunReport, Simulation, V2DConfig, run_parallel


def small_config(**kw):
    args = dict(
        nx1=24, nx2=16, extent1=(0.0, 1.0), extent2=(0.0, 1.0),
        nsteps=3, dt=2e-4, solver_tol=1e-9, precond="jacobi",
    )
    args.update(kw)
    return V2DConfig(**args)


class TestConfig:
    def test_paper_configuration(self):
        cfg = V2DConfig.paper_test_problem()
        assert (cfg.nx1, cfg.nx2) == (200, 100)
        assert cfg.ncomp == 2
        assert cfg.nunknowns == 40_000
        assert cfg.nsteps == 100
        assert cfg.total_solves == 300

    def test_paper_topologies_all_valid(self):
        for np_, n1, n2 in [(10, 10, 1), (20, 5, 4), (50, 10, 5)]:
            cfg = V2DConfig.paper_test_problem(nprx1=n1, nprx2=n2)
            assert cfg.nranks == np_
            assert cfg.decomposition().nranks == np_

    def test_scaled_configuration(self):
        cfg = V2DConfig.scaled_test_problem(scale=4)
        assert (cfg.nx1, cfg.nx2) == (50, 25)
        with pytest.raises(ValueError):
            V2DConfig.scaled_test_problem(scale=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            V2DConfig(nx1=0)
        with pytest.raises(ValueError):
            V2DConfig(dt=0)
        with pytest.raises(ValueError):
            V2DConfig(nx1=4, nprx1=8)  # over-decomposed
        with pytest.raises(ValueError):
            V2DConfig(checkpoint_interval=2)  # no path
        with pytest.raises(ValueError):
            V2DConfig(species=())


class TestGaussianPulseSerial:
    def test_run_produces_report(self):
        sim = Simulation(small_config(), GaussianPulseProblem())
        report = sim.run()
        assert isinstance(report, RunReport)
        assert report.nsteps == 3
        assert report.total_solves == 9
        assert report.all_converged
        assert report.wall_seconds > 0
        assert "V2D run" in report.summary()

    def test_matches_analytic_solution(self):
        # Resolve the pulse decently and integrate a short time.
        cfg = small_config(nx1=48, nx2=48, nsteps=5, dt=2e-4, solver_tol=1e-10)
        problem = GaussianPulseProblem(t0=0.02, kappa=10.0)
        sim = Simulation(cfg, problem)
        report = sim.run()
        assert report.solution_error is not None
        assert report.solution_error < 0.02, (
            f"L2 error vs Green's function: {report.solution_error:.4f}"
        )

    def test_error_decreases_with_resolution(self):
        # Small dt so spatial error dominates; 4x the resolution must
        # cut the L2 error substantially (sampling aliasing makes the
        # sequence non-monotone in between, so compare the endpoints).
        errs = {}
        for n in (12, 48):
            cfg = small_config(nx1=n, nx2=n, nsteps=4, dt=5e-5, solver_tol=1e-11)
            sim = Simulation(cfg, GaussianPulseProblem(t0=0.02))
            errs[n] = sim.run().solution_error
        assert errs[48] < 0.25 * errs[12]

    def test_energy_decays_through_vacuum_boundaries(self):
        # DIRICHLET0 walls let the pulse leak; total energy must fall
        # monotonically (diffusion is dissipative here).
        sim = Simulation(small_config(nsteps=4, dt=1e-3), GaussianPulseProblem())
        report = sim.run()
        energies = [s.total_energy for s in report.steps]
        assert all(b < a for a, b in zip(energies, energies[1:]))

    def test_scalar_and_vector_backends_agree(self):
        results = {}
        for backend in ("vector", "scalar"):
            cfg = small_config(nx1=10, nx2=8, nsteps=2, backend=backend)
            sim = Simulation(cfg, GaussianPulseProblem())
            sim.run()
            results[backend] = sim.integrator.E.interior.copy()
        np.testing.assert_allclose(
            results["scalar"], results["vector"], rtol=1e-9, atol=1e-12
        )

    def test_profiler_breakdown_available(self):
        sim = Simulation(small_config(), GaussianPulseProblem())
        report = sim.run()
        assert report.matvec_fraction() > 0.0
        assert report.bicgstab_fraction() > 0.0
        assert report.bicgstab_fraction() >= report.matvec_fraction()
        assert "MATVEC" in report.flat_profile()

    def test_counters_track_workload(self):
        sim = Simulation(small_config(), GaussianPulseProblem())
        report = sim.run()
        assert report.counters.linear_solves == 9
        assert report.counters.matvecs > 0
        assert report.counters.flops > 0


class TestParallelRuns:
    @pytest.mark.parametrize("nprx1,nprx2", [(2, 1), (1, 2), (2, 2)])
    def test_decomposed_matches_serial(self, nprx1, nprx2):
        problem = GaussianPulseProblem()
        serial_cfg = small_config(nsteps=2)
        serial = Simulation(serial_cfg, problem)
        serial.run()
        want = serial.integrator.E.interior

        par_cfg = small_config(nsteps=2, nprx1=nprx1, nprx2=nprx2)
        reports = run_parallel(par_cfg, problem)
        assert len(reports) == nprx1 * nprx2
        assert all(r.all_converged for r in reports)
        # Rebuild the global field from the per-rank integrators is not
        # exposed; compare the scalar diagnostics instead (they are
        # global reductions, identical on every rank).
        for r in reports:
            assert r.final_energy == pytest.approx(
                sum(
                    s.total_energy
                    for s in [serial.step_reports[-1]]
                ),
                rel=1e-10,
            )

    def test_topology_changes_not_the_physics(self):
        problem = GaussianPulseProblem()
        energies = []
        for n1, n2 in [(1, 1), (2, 2), (4, 1)]:
            cfg = small_config(nsteps=2, nprx1=n1, nprx2=n2)
            reports = run_parallel(cfg, problem)
            energies.append(reports[0].final_energy)
        assert energies[0] == pytest.approx(energies[1], rel=1e-10)
        assert energies[0] == pytest.approx(energies[2], rel=1e-10)

    def test_parallel_reports_mpi_traffic(self):
        cfg = small_config(nsteps=2, nprx1=2, nprx2=2)
        reports = run_parallel(cfg, GaussianPulseProblem())
        assert reports[0].counters.messages_sent > 0
        assert reports[0].counters.reductions > 0

    def test_serial_config_with_parallel_entry(self):
        reports = run_parallel(small_config(nsteps=1), GaussianPulseProblem())
        assert len(reports) == 1

    def test_mismatched_topology_rejected(self):
        with pytest.raises(ValueError):
            Simulation(small_config(nprx1=2), GaussianPulseProblem())


class TestHydroProblems:
    def test_sedov_blast_runs_and_expands(self):
        problem = SedovBlastProblem(e_blast=1.0, r_init=0.1, p0=1e-4)
        cfg = small_config(nx1=32, nx2=32, nsteps=2, dt=2e-3)
        sim = Simulation(cfg, problem)
        assert sim.hydro is not None
        mesh = sim.mesh
        sim.run()
        w = sim.hydro.primitive()
        r1 = SedovBlastProblem.shock_radius(mesh, w[0], problem.center)
        assert r1 > problem.r_init * 0.8
        # blast pushed gas outward: radial velocity positive at the rim
        assert w[0].max() > problem.rho0

    def test_sedov_mass_conserved(self):
        problem = SedovBlastProblem()
        cfg = small_config(nx1=24, nx2=24, nsteps=2, dt=1e-3)
        sim = Simulation(cfg, problem)
        m0 = sim.hydro.conserved_totals()[0]
        sim.run()
        assert sim.hydro.conserved_totals()[0] == pytest.approx(m0, rel=1e-12)

    def test_radiative_shock_preheats_upstream(self):
        problem = RadiativeShockProblem()
        cfg = small_config(
            nx1=32, nx2=8, nsteps=3, dt=2e-3,
            couple_matter=True, emission=True, precond="jacobi",
        )
        sim = Simulation(cfg, problem)
        sim.run()
        # Radiation diffusing out of the hot driver must warm the
        # ambient zones just ahead of the interface above their
        # hydro-consistent initial temperature p/rho.
        mesh = sim.mesh
        strip = (mesh.x1c > problem.interface + 0.02) & (
            mesh.x1c < problem.interface + 0.2
        )
        t_strip = sim.integrator.temp[strip, :].mean()
        assert t_strip > problem.t_ambient * 1.001, (
            f"no radiative preheat: {t_strip} vs {problem.t_ambient}"
        )

    def test_radiative_shock_initial_equilibrium(self):
        problem = RadiativeShockProblem()
        mesh = Mesh2D.uniform(16, 4)
        basis = RadiationBasis()
        state = problem.initial_state(mesh, basis)
        # E ~ a T^4 in each region, T = p/rho
        driver = np.isclose(state.temp, problem.t_driver)
        assert driver.any()
        np.testing.assert_allclose(
            state.E[0][driver], problem.t_driver**4, rtol=0.05
        )

    def test_problem_validation(self):
        with pytest.raises(ValueError):
            GaussianPulseProblem(t0=-1.0)
        with pytest.raises(ValueError):
            SedovBlastProblem(e_blast=0.0)
        with pytest.raises(ValueError):
            RadiativeShockProblem(interface=1.5)


class TestCheckpointing:
    def test_checkpoint_roundtrip_serial(self, tmp_path):
        from repro.io import load_checkpoint

        path = tmp_path / "ck"
        cfg = small_config(
            nsteps=2, checkpoint_path=str(path), checkpoint_interval=1
        )
        sim = Simulation(cfg, GaussianPulseProblem())
        sim.run()
        ck = load_checkpoint(f"{path}.step00002.npz")
        assert ck.step == 2
        assert ck.time == pytest.approx(sim.time)
        np.testing.assert_allclose(ck.E, sim.integrator.E.interior)
        assert ck.meta["problem"] == "gaussian-pulse"

    def test_checkpoint_gather_parallel(self, tmp_path):
        from repro.io import load_checkpoint

        path = tmp_path / "pck"
        cfg = small_config(
            nsteps=1, nprx1=2, nprx2=1,
            checkpoint_path=str(path), checkpoint_interval=1,
        )
        run_parallel(cfg, GaussianPulseProblem())
        ck = load_checkpoint(f"{path}.step00001.npz")
        assert ck.shape == (cfg.nx1, cfg.nx2)

        # And it must equal the serial run's state.
        serial = Simulation(small_config(nsteps=1), GaussianPulseProblem())
        serial.run()
        np.testing.assert_allclose(ck.E, serial.integrator.E.interior, rtol=1e-12)
