"""The jit (Numba) backend tier: parity, fusion, fallback, policy.

Most of this file runs **without numba**: ``JitBackend(force_python=True)``
executes the exact loop bodies numba would compile, so the numerical
contracts -- reductions bitwise-equal to the scalar backend, elementwise
and matrix-free kernels bitwise-equal to *both* builtin backends, fused
primitives bitwise-equal to their unfused composition -- are pinned on
every machine.  The compiled-mode class then asserts that compilation
changes nothing: with ``fastmath=False`` numba may not reassociate, so
compiled output must match the interpreted bodies bit for bit.  Those
tests ``importorskip("numba")`` (the CI jit-smoke job installs it).
"""

import numpy as np
import pytest

from repro.backend import (
    JitBackend,
    ScalarBackend,
    VectorBackend,
    get_backend,
    numba_available,
)
from repro.backend.dispatch import FUSED_PRIMITIVES, native_fused_ops
from repro.backend.jit import NUMBA_HINT
from repro.kernels.stencil import MultiSpeciesStencil, StencilCoefficients
from repro.kernels.suite import KernelSuite
from repro.monitor.counters import Counters
from repro.v2d.config import V2DConfig

SCALAR = ScalarBackend()
VECTOR = VectorBackend()
JIT = JitBackend(force_python=True)


def rng():
    return np.random.default_rng(7)


def vecs(n=257):
    r = rng()
    return r.standard_normal(n), r.standard_normal(n), r.standard_normal(n)


def stencil_operands(n1=6, n2=5):
    r = rng()
    coeff = [r.standard_normal((n1, n2)) for _ in range(5)]
    coeff[0] += 5.0  # diagonal dominance, as the solvers see it
    xpad = r.standard_normal((n1 + 2, n2 + 2))
    return coeff, xpad


# ======================================================================
# Numerical contracts (force_python: no numba required)
# ======================================================================
class TestNumericalContracts:
    def test_reductions_bitwise_match_scalar(self):
        # jit accumulates left-to-right like the scalar backend; the
        # vector backend's np.dot pairwise sums agree only to rounding.
        x, y, z = vecs()
        assert JIT.dot(x, y) == SCALAR.dot(x, y)
        assert JIT.norm2(x) == SCALAR.norm2(x)
        np.testing.assert_array_equal(
            JIT.multi_dot([(x, y), (y, z), (x, x)]),
            SCALAR.multi_dot([(x, y), (y, z), (x, x)]),
        )

    @pytest.mark.parametrize("other", [SCALAR, VECTOR], ids=["scalar", "vector"])
    def test_elementwise_bitwise_match_both_backends(self, other):
        # Per-element association is identical across all three tiers,
        # so elementwise kernels must agree bit for bit with both.
        x, y, z = vecs()
        np.testing.assert_array_equal(JIT.axpy(1.7, x, y), other.axpy(1.7, x, y))
        np.testing.assert_array_equal(
            JIT.dscal(x, 0.3, y), other.dscal(x, 0.3, y)
        )
        np.testing.assert_array_equal(
            JIT.ddaxpy(1.1, x, -0.4, y, z), other.ddaxpy(1.1, x, -0.4, y, z)
        )
        np.testing.assert_array_equal(JIT.scale(2.5, x), other.scale(2.5, x))
        np.testing.assert_array_equal(JIT.add(x, y), other.add(x, y))
        np.testing.assert_array_equal(JIT.sub(x, y), other.sub(x, y))
        np.testing.assert_array_equal(JIT.mul(x, y), other.mul(x, y))

    @pytest.mark.parametrize("other", [SCALAR, VECTOR], ids=["scalar", "vector"])
    def test_stencil_bitwise_matches_both_backends(self, other):
        coeff, xpad = stencil_operands()
        np.testing.assert_array_equal(
            JIT.stencil_apply(*coeff, xpad), other.stencil_apply(*coeff, xpad)
        )

    @pytest.mark.parametrize("other", [SCALAR, VECTOR], ids=["scalar", "vector"])
    def test_banded_matvec_bitwise_matches_both_backends(self, other):
        r = rng()
        n, offsets = 64, (-8, -1, 0, 1, 8)
        bands = [r.standard_normal(n) for _ in offsets]
        x = r.standard_normal(n)
        np.testing.assert_array_equal(
            JIT.banded_matvec(offsets, bands, x),
            other.banded_matvec(offsets, bands, x),
        )

    def test_fused_equals_unfused_within_jit(self):
        # float64 stored value == register value and the sequential
        # order is shared, so fusion changes nothing bitwise.
        x, y, w = vecs()
        out, acc = JIT.axpy_dot(1.3, x, y)
        ref = JIT.axpy(1.3, x, y)
        np.testing.assert_array_equal(out, ref)
        assert acc == JIT.dot(ref, ref)
        out, acc = JIT.axpy_dot(1.3, x, y, w=w)
        assert acc == JIT.dot(ref, w)
        out, acc = JIT.dscal_dot(x, 0.6, y, w=w)
        ref = JIT.dscal(x, 0.6, y)
        np.testing.assert_array_equal(out, ref)
        assert acc == JIT.dot(ref, w)

    def test_fused_stencil_dots_equal_unfused_within_jit(self):
        coeff, xpad = stencil_operands()
        r = rng()
        w = r.standard_normal(coeff[0].shape)
        a, b = r.standard_normal(coeff[0].shape), r.standard_normal(coeff[0].shape)
        out, vals = JIT.stencil_apply_dots(*coeff, xpad, [None, w, (a, b)])
        ref = JIT.stencil_apply(*coeff, xpad)
        np.testing.assert_array_equal(out, ref)
        np.testing.assert_array_equal(
            vals, JIT.multi_dot([(ref, ref), (ref, w), (a, b)])
        )


# ======================================================================
# Registry, selection surfaces, graceful fallback
# ======================================================================
class TestRegistryAndPolicy:
    def test_jit_reports_all_three_fused_primitives(self):
        assert native_fused_ops(JIT) == FUSED_PRIMITIVES

    def test_vector_bits_validation(self):
        assert JitBackend(vector_bits=512, force_python=True).vector_bits == 512
        for bad in (0, 64, 100, 4096):
            with pytest.raises(ValueError):
                JitBackend(vector_bits=bad, force_python=True)

    @pytest.mark.skipif(
        numba_available(), reason="fallback message only fires without numba"
    )
    def test_missing_numba_raises_keyerror_with_hint(self):
        with pytest.raises(KeyError) as excinfo:
            get_backend("jit")
        msg = str(excinfo.value)
        assert NUMBA_HINT in msg
        assert "vector" in msg  # the hint names a working substitute

    def test_config_validates_backend_by_name_only(self):
        # Config construction must not require numba: whether the jit
        # tier can run is a property of the executing machine, decided
        # when the Simulation builds its backend.
        assert V2DConfig(backend="jit").backend == "jit"
        with pytest.raises(ValueError, match="unknown backend"):
            V2DConfig(backend="cuda")


# ======================================================================
# The kernel suite routes single-species systems through the fused sweep
# ======================================================================
class TestFusedRouting:
    def test_apply_dots_uses_jit_fused_kernel(self):
        r = rng()
        n1, n2 = 6, 5
        c = StencilCoefficients(
            diag=r.standard_normal((1, n1, n2)) + 5.0,
            west=r.standard_normal((1, n1, n2)),
            east=r.standard_normal((1, n1, n2)),
            south=r.standard_normal((1, n1, n2)),
            north=r.standard_normal((1, n1, n2)),
        )
        xpad = r.standard_normal((1, n1 + 2, n2 + 2))
        w = r.standard_normal((1, n1, n2))

        fused_suite = KernelSuite(JIT, counters=Counters())
        fused = MultiSpeciesStencil(c, suite=fused_suite)
        out_f, vals_f = fused.apply_dots(xpad, [None, w])
        # The capability gate (not bk.vectorized checks) must route the
        # jit tier through its native single-pass kernel.
        assert fused_suite.counters.fused_ops == 1

        unfused = MultiSpeciesStencil(c.copy(), suite=KernelSuite(JIT))
        out_u = unfused.apply(xpad)
        vals_u = JIT.multi_dot([(out_u, out_u), (out_u, w)])
        np.testing.assert_array_equal(out_f, out_u)
        np.testing.assert_array_equal(vals_f, vals_u)


# ======================================================================
# Compiled mode: numba must change nothing
# ======================================================================
class TestCompiledParity:
    @pytest.fixture(autouse=True)
    def _need_numba(self):
        pytest.importorskip("numba")

    @pytest.fixture()
    def compiled(self):
        return JitBackend()

    def test_compiled_matches_interpreted_bodies_bitwise(self, compiled):
        # fastmath=False forbids reassociation, so compilation is
        # numerically invisible: every kernel must agree bit for bit
        # with the same body run by the interpreter.
        x, y, z = vecs()
        assert compiled.dot(x, y) == JIT.dot(x, y)
        np.testing.assert_array_equal(
            compiled.axpy(1.7, x, y), JIT.axpy(1.7, x, y)
        )
        np.testing.assert_array_equal(
            compiled.dscal(x, 0.3, y), JIT.dscal(x, 0.3, y)
        )
        np.testing.assert_array_equal(
            compiled.ddaxpy(1.1, x, -0.4, y, z), JIT.ddaxpy(1.1, x, -0.4, y, z)
        )
        coeff, xpad = stencil_operands()
        np.testing.assert_array_equal(
            compiled.stencil_apply(*coeff, xpad), JIT.stencil_apply(*coeff, xpad)
        )
        out_c, acc_c = compiled.axpy_dot(1.3, x, y)
        out_p, acc_p = JIT.axpy_dot(1.3, x, y)
        np.testing.assert_array_equal(out_c, out_p)
        assert acc_c == acc_p
        w = rng().standard_normal(coeff[0].shape)
        out_c, vals_c = compiled.stencil_apply_dots(*coeff, xpad, [None, w])
        out_p, vals_p = JIT.stencil_apply_dots(*coeff, xpad, [None, w])
        np.testing.assert_array_equal(out_c, out_p)
        np.testing.assert_array_equal(vals_c, vals_p)

    def test_small_simulation_matches_vector_tier(self):
        # Whole-solver parity is *tight tolerance*, not bitwise: the
        # vector tier's pairwise dot reductions round differently.
        from repro.v2d.problems import GaussianPulseProblem
        from repro.v2d.simulation import Simulation

        def report(backend):
            cfg = V2DConfig(nx1=16, nx2=8, nsteps=3, backend=backend)
            return Simulation(cfg, GaussianPulseProblem()).run()

        jit_report, vec_report = report("jit"), report("vector")
        np.testing.assert_allclose(
            jit_report.total_energy, vec_report.total_energy, rtol=1e-12
        )


# ======================================================================
# Compile-time exclusion in the measurement harness
# ======================================================================
class TestHarnessWarmup:
    def test_time_always_runs_at_least_one_warmup(self):
        from repro.perf.harness import Harness

        calls = []
        h = Harness("jit-warmup-test")
        h.time(lambda: calls.append(1), name="noop", repeats=2, warmup=0)
        # One clamped warm-up pass (never timed) plus the two repeats:
        # first-call compilation can never leak into a sample.
        assert len(calls) == 3
